//! Drive the PIUMA simulator through the paper's sensitivity studies on a
//! scaled `products` twin: strong scaling, DRAM latency tolerance, and the
//! threads-per-MTP sweep.
//!
//! ```text
//! cargo run --release --example piuma_scaling
//! ```

use piuma_gcn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = OgbDataset::Products
        .materialize_scaled(1 << 12, 1)
        .into_adjacency();
    println!(
        "scaled products twin: {} vertices, {} edges",
        a.nrows(),
        a.nnz()
    );

    println!("\n-- strong scaling (K = 64), DMA vs loop-unrolled vs model --");
    for cores in [1usize, 2, 4, 8, 16, 32] {
        let cfg = MachineConfig::node(cores);
        let dma = SpmmSimulation::new(cfg.clone(), SpmmVariant::Dma).run(&a, 64)?;
        let unrolled = SpmmSimulation::new(cfg, SpmmVariant::LoopUnrolled).run(&a, 64)?;
        println!(
            "{cores:>2} cores: dma {:>7.2} GF ({:>3.0}% of model) | unrolled {:>7.2} GF ({:>3.0}%)",
            dma.gflops,
            dma.model_fraction() * 100.0,
            unrolled.gflops,
            unrolled.model_fraction() * 100.0
        );
    }

    println!("\n-- DRAM latency sweep on 8 cores (16 threads/MTP) --");
    for k in [8usize, 256] {
        for lat in [45.0f64, 90.0, 180.0, 360.0, 720.0] {
            let cfg = MachineConfig::node(8).with_dram_latency_ns(lat);
            let run = SpmmSimulation::new(cfg, SpmmVariant::Dma).run(&a, k)?;
            println!(
                "K={k:>3} latency {lat:>4.0} ns: {:>7.2} GFLOP/s",
                run.gflops
            );
        }
    }

    println!("\n-- threads/MTP sweep on 8 cores at 360 ns latency --");
    for k in [8usize, 256] {
        for tpm in [1usize, 4, 16] {
            let cfg = MachineConfig::node(8)
                .with_threads_per_mtp(tpm)
                .with_dram_latency_ns(360.0);
            let run = SpmmSimulation::new(cfg, SpmmVariant::Dma).run(&a, k)?;
            println!(
                "K={k:>3} {tpm:>2} threads/MTP: {:>7.2} GFLOP/s (dram util {:>3.0}%)",
                run.gflops,
                run.sim.dram_utilization * 100.0
            );
        }
    }
    Ok(())
}
