//! The paper's core characterization, end to end: for each OGB dataset,
//! where does GCN time go on CPU, GPU and PIUMA, and who wins?
//!
//! ```text
//! cargo run --release --example ogb_characterization [dataset ...]
//! ```
//!
//! With no arguments, all Table-I datasets are characterized.

use piuma_gcn::prelude::*;

fn characterize(d: OgbDataset) {
    let s = d.stats();
    println!(
        "\n=== {} (|V| = {}, |E| = {}, density {:.1e}) ===",
        s.name,
        s.vertices,
        s.edges,
        s.density()
    );

    let cpu = XeonModel::default();
    let gpu = GpuModel::default();
    let piuma = PiumaModel::default();

    println!(
        "{:>5} {:>28} {:>10} {:>10} {:>10} {:>10}",
        "K", "cpu spmm/dense/glue", "cpu ms", "gpu ms", "piuma ms", "piuma x"
    );
    for k in [8usize, 32, 128, 256] {
        let w = GcnWorkload::paper_model(s.vertices, s.edges, s.input_dim, k, s.output_dim);
        let tc = cpu.gcn_times_full(&w);
        let tg = gpu.gcn_times(&w);
        let tp = piuma.gcn_times(&w);
        println!(
            "{:>5} {:>9.0}%/{:>4.0}%/{:>4.0}% {:>13.2} {:>10.2} {:>10.2} {:>9.2}x",
            k,
            tc.fraction(Phase::Spmm) * 100.0,
            tc.fraction(Phase::Dense) * 100.0,
            tc.fraction(Phase::Glue) * 100.0,
            tc.total_ns() / 1e6,
            tg.total_ns() / 1e6,
            tp.total_ns() / 1e6,
            tp.speedup_over(&tc)
        );
    }

    if !GpuModel::default().fits(&GcnWorkload::paper_model(
        s.vertices,
        s.edges,
        s.input_dim,
        256,
        s.output_dim,
    )) {
        println!("note: does not fit in 40 GB GPU memory -> host sampling path");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets: Vec<OgbDataset> = if args.is_empty() {
        OgbDataset::TABLE1.to_vec()
    } else {
        args.iter()
            .filter_map(|name| {
                let d = OgbDataset::from_name(name);
                if d.is_none() {
                    eprintln!("unknown dataset '{name}' (see Table I names)");
                }
                d
            })
            .collect()
    };
    for d in datasets {
        characterize(d);
    }
}
