//! Quickstart: run the async inference service against a Cora-scale
//! graph and drive it with a small open-loop load.
//!
//! Cora itself (2708 vertices, 1433 features, 7 classes) is not in the
//! Table-I catalog, so this builds an RMAT twin at Cora's shape and runs
//! a 2-layer GCN service over it: single-vertex requests from two
//! tenants with different deficit-round-robin weights, coalesced by a
//! 1 ms batching window into single planned SpMM+GEMM calls.
//!
//! ```sh
//! cargo run --release --example serve_cora
//! ```

use piuma_gcn::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cora-scale twin: exactly 2708 vertices with power-law degrees
    // (an RMAT scale-12 edge set restricted to the first 2708 vertices).
    let seed_graph = Graph::rmat(&RmatConfig::power_law(12, 4), 42);
    let adj = seed_graph.adjacency();
    let mut edges = Vec::new();
    for r in 0..2708.min(adj.nrows()) {
        for &c in adj.row_cols(r) {
            if (c as usize) < 2708 && (c as usize) > r {
                edges.push((r, c as usize));
            }
        }
    }
    let g = Graph::from_undirected_edges(2708, &edges);
    let a_hat = g.normalized_adjacency()?;
    let n = a_hat.nrows();
    let x = g.random_features(1433, 9);
    let model = GcnModel::new(&GcnConfig::paper_model(1433, 16, 2), 7);

    // Two tenants: tenant 0 gets 3x the dispatch weight of tenant 1, and
    // both are capped at 512 in-flight output rows.
    let cfg = ServiceConfig {
        max_batch: 64,
        max_batch_rows: 4096,
        batch_window: Duration::from_millis(1),
        queue_limit: 512,
        latency_budget: Duration::from_secs(3),
        lanes: 2,
        tenants: vec![
            TenantSpec {
                weight: 3,
                quota_rows: 512,
            },
            TenantSpec {
                weight: 1,
                quota_rows: 512,
            },
        ],
        ..ServiceConfig::single_tenant()
    };
    let svc = GcnService::planned(model, a_hat, x, cfg)?;

    // Open-loop burst: 200 requests, alternating tenants, ~2k req/s —
    // fast enough that the 1 ms window coalesces real batches, slow
    // enough that a 1433-feature Cora model keeps up within budget.
    let mut handles = Vec::new();
    let mut shed = 0u64;
    for i in 0..200usize {
        std::thread::sleep(Duration::from_micros(500));
        match svc.submit_vertex((i % 2) as u32, (i * 131) % n) {
            Ok(h) => handles.push(h),
            Err(Rejection::QueueFull { .. } | Rejection::TenantOverLimit { .. }) => shed += 1,
            Err(other) => return Err(other.into()),
        }
    }
    let mut served = 0u64;
    for h in handles {
        match h.wait() {
            Ok(_) => served += 1,
            Err(Rejection::DeadlineExceeded { .. }) => {}
            Err(other) => return Err(other.into()),
        }
    }
    let m = svc.shutdown();
    println!("served {served} of 200 requests ({shed} shed at the door)");
    println!(
        "batches: {} (mean batch {:.1}), shed rate {:.1}%",
        m.batches,
        m.mean_batch_size(),
        m.shed_rate * 100.0
    );
    println!(
        "latency: p50 {:?}, p99 {:?} (queue wait p99 {:?})",
        m.p50, m.p99, m.queue_p99
    );

    // --- Degraded-mode quickstart -------------------------------------
    // Under sustained overload the service degrades precision before it
    // sheds: a zero high-water mark marks every batch overloaded, so each
    // response comes back annotated with the brownout (which precision
    // served it, and why) instead of silently at lower fidelity.
    let g2 = Graph::from_undirected_edges(2708, &edges);
    let a_hat2 = g2.normalized_adjacency()?;
    let x2 = g2.random_features(1433, 9);
    let model2 = GcnModel::new(&GcnConfig::paper_model(1433, 16, 2), 7);
    let mut brown_cfg = ServiceConfig::single_tenant();
    brown_cfg.brownout.queue_high_water = 0;
    let svc = GcnService::planned(model2, a_hat2, x2, brown_cfg)?;
    let resp = svc.submit_vertex(0, 0)?.wait()?;
    match &resp.degraded {
        Some(b) => println!(
            "degraded mode: served at {:?} because {:?} (served_by {:?})",
            b.precision, b.cause, resp.served_by
        ),
        None => println!("degraded mode: response unexpectedly full-precision"),
    }
    let m = svc.shutdown();
    println!(
        "brownout batches: {} (metrics export: ServiceMetrics::snapshot_json)",
        m.brownout_batches
    );
    Ok(())
}
