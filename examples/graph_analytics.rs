//! Graph analytics beyond GCN: PageRank on the host, and the latency-bound
//! random walks of Section VI on the simulated PIUMA machine.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use piuma_gcn::piuma_kernels::walk_sim::{cpu_walk_msteps_per_second, simulate_random_walks};
use piuma_gcn::prelude::*;
use piuma_gcn::sparse::ops::pagerank;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = OgbDataset::Products.materialize_scaled(1 << 12, 9);
    println!(
        "scaled products twin: {} vertices, {} edges",
        g.vertices(),
        g.edges()
    );

    // --- PageRank on the host (SpMV power iteration). ---
    let ranks = pagerank(g.adjacency(), 0.85, 30)?;
    let mut indexed: Vec<(usize, f32)> = ranks.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 PageRank vertices:");
    for (v, r) in indexed.iter().take(5) {
        println!(
            "  vertex {v:>5}: {:.5} (in-degree {})",
            r,
            g.adjacency().in_degrees()[*v]
        );
    }
    let total: f32 = ranks.iter().sum();
    println!("rank mass: {total:.4} (should be ~1)");

    // --- Random walks on PIUMA: throughput scales with walkers. ---
    println!("\nrandom walks on an 8-core PIUMA die (64 steps each):");
    let cfg = MachineConfig::node(8);
    for walkers in [16usize, 128, 512] {
        let r = simulate_random_walks(&cfg, g.adjacency(), walkers, 64)?;
        println!(
            "{walkers:>4} walkers: {:>8.1} Msteps/s (dram util {:>2.0}%)",
            r.msteps_per_second,
            r.sim.dram_utilization * 100.0
        );
    }
    println!(
        "xeon socket model: {:>8.1} Msteps/s (40 cores, 8 chains/core, 120 ns)",
        cpu_walk_msteps_per_second(40, 8.0, 120.0)
    );
    println!("\nPer-walk latency cannot be hidden (each step is a dependent load);");
    println!("PIUMA wins on walk *throughput* via raw hardware thread count.");
    Ok(())
}
