//! Explore the paper's Discussion-section design space: multi-node PIUMA
//! scaling over optical links, the heterogeneous SoC (PIUMA dies + dense
//! tiles), and distributed CPU clusters as the alternative.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use piuma_gcn::platform_models::{DistributedXeonModel, HeterogeneousSoc};
use piuma_gcn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Multi-node PIUMA: the DGAS scales bandwidth with node count. ---
    println!("-- multi-node PIUMA, DMA SpMM on a products twin (K = 64) --");
    let a = OgbDataset::Products
        .materialize_scaled(1 << 12, 1)
        .into_adjacency();
    let mut base = 0.0;
    for nodes in [1usize, 2, 4, 8] {
        let cfg = MachineConfig::multi_node(nodes, 8);
        let run = SpmmSimulation::new(cfg, SpmmVariant::Dma).run(&a, 64)?;
        if nodes == 1 {
            base = run.gflops;
        }
        println!(
            "{nodes} node(s) x 8 cores: {:8.2} GFLOP/s (efficiency {:.0}%)",
            run.gflops,
            run.gflops / (base * nodes as f64) * 100.0
        );
    }

    // --- Heterogeneous SoC: how many tiles to spend on dense compute? ---
    println!("\n-- heterogeneous SoC (4 tiles): best dense-tile count per workload --");
    let soc = HeterogeneousSoc::all_piuma(4);
    for d in [OgbDataset::Ddi, OgbDataset::Products, OgbDataset::Mag] {
        for k in [8usize, 256] {
            let s = d.stats();
            let w = GcnWorkload::paper_model(s.vertices, s.edges, s.input_dim, k, s.output_dim);
            let (best, t) = soc.best_split(&w);
            println!(
                "{:>9} K={k:>3}: {best} dense tile(s) -> {:.2} ms ({})",
                s.name,
                t.total_ns() / 1e6,
                t
            );
        }
    }

    // --- Distributed CPU: why the paper prefers a DGAS to MPI. ---
    println!("\n-- scaling papers/K=64: MPI Xeon cluster vs PIUMA DGAS --");
    let s = OgbDataset::Papers.stats();
    let w = GcnWorkload::paper_model(s.vertices, s.edges, s.input_dim, 64, s.output_dim);
    for n in [1usize, 4, 16] {
        let mpi = DistributedXeonModel::cluster(n);
        let piuma = PiumaModel::with_cores(8 * n);
        println!(
            "{n:>2} node(s): xeon+mpi {:>9.1} ms (eff {:>3.0}%) | piuma-dgas {:>9.1} ms",
            mpi.gcn_times(&w).total_ns() / 1e6,
            mpi.parallel_efficiency(&w) * 100.0,
            piuma.gcn_times(&w).total_ns() / 1e6,
        );
    }
    Ok(())
}
