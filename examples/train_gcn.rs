//! Train a GCN end to end on a synthetic two-community graph — the
//! semi-supervised node-classification setup of Kipf & Welling, and the
//! training workload the paper's Discussion section targets for PIUMA.
//!
//! ```text
//! cargo run --release --example train_gcn
//! ```

use piuma_gcn::gcn::{GcnConfig, GcnModel, NodeClassification, Trainer};
use piuma_gcn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two dense communities of 64 vertices, sparsely bridged.
    let n = 128usize;
    let half = n / 2;
    let mut rng = StdRng::seed_from_u64(42);
    let mut edges = Vec::new();
    for _ in 0..n * 4 {
        let (a, b) = (rng.gen_range(0..half), rng.gen_range(0..half));
        edges.push((a, b));
        edges.push((a + half, b + half));
    }
    for _ in 0..4 {
        edges.push((rng.gen_range(0..half), half + rng.gen_range(0..half)));
    }
    let g = Graph::from_undirected_edges(n, &edges);

    // Noisy 8-dimensional features; the community signal is weak on purpose
    // so the model must use the graph structure.
    let mut x = DenseMatrix::zeros(n, 8);
    for v in 0..n {
        let sign = if v < half { 1.0 } else { -1.0 };
        for j in 0..8 {
            x[(v, j)] = sign * 0.04 + rng.gen_range(-0.8..0.8);
        }
    }
    let labels: Vec<usize> = (0..n).map(|v| usize::from(v >= half)).collect();

    // Semi-supervised: only 10% of vertices are labelled for training.
    let mut task = NodeClassification::fully_labelled(labels.clone());
    for v in 0..n {
        task.train_mask[v] = v % 10 == 0;
    }

    let mut model = GcnModel::new(&GcnConfig::paper_model(8, 16, 2), 7);
    let mut trainer = Trainer::new(0.15, SpmmStrategy::VertexParallel { threads: 4 });

    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "epoch", "loss", "train_acc", "full_acc"
    );
    let a_hat = g.normalized_adjacency()?;
    for epoch in 0..80 {
        let stats = trainer.step_normalized(&mut model, &a_hat, &x, &task)?;
        if epoch % 10 == 0 || epoch == 79 {
            // Evaluate on every vertex (including unlabelled ones).
            let out = model.infer_normalized(&a_hat, &x, trainer.strategy)?;
            let correct = (0..n)
                .filter(|&v| {
                    let row = out.row(v);
                    let pred = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map_or(0, |(i, _)| i);
                    pred == labels[v]
                })
                .count();
            println!(
                "{epoch:>6} {:>10.4} {:>9.0}% {:>9.0}%",
                stats.loss,
                stats.train_accuracy * 100.0,
                correct as f64 / n as f64 * 100.0
            );
        }
    }
    println!("\nThe unlabelled 90% are classified through the graph structure —");
    println!("the aggregation (SpMM) the paper characterizes is what spreads the labels.");
    Ok(())
}
