//! Quickstart: build a graph, run GCN inference with every host kernel,
//! then simulate the aggregation on a PIUMA machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use piuma_gcn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A power-law graph: 2^10 vertices, ~8 edges per vertex.
    let g = Graph::rmat(&RmatConfig::power_law(10, 8), 42);
    let stats = g.degree_stats();
    println!(
        "graph: {} vertices, {} edges, avg degree {:.1}, max degree {}",
        g.vertices(),
        g.edges(),
        stats.mean,
        stats.max
    );

    // 2. A 3-layer GCN (the paper's model): input 32, hidden 64, output 8.
    let model = GcnModel::new(&GcnConfig::paper_model(32, 64, 8), 7);
    let x = g.random_features(32, 9);

    // 3. Inference with each SpMM strategy; all must agree. The parallel
    //    strategies share the persistent `kernels::pool` thread pool.
    let reference = model.infer(&g, &x, SpmmStrategy::Sequential)?;
    for strategy in [
        SpmmStrategy::VertexParallel { threads: 4 },
        SpmmStrategy::EdgeParallel { threads: 4 },
        SpmmStrategy::FeatureParallel { threads: 4 },
        SpmmStrategy::Hybrid { threads: 4 },
        SpmmStrategy::Auto,
    ] {
        let out = model.infer(&g, &x, strategy)?;
        println!(
            "{strategy}: output {}x{}, max diff vs sequential {:.2e}",
            out.rows(),
            out.cols(),
            reference.max_abs_diff(&out)
        );
    }
    println!(
        "auto resolves to `{}` for this graph at K=32 (pool width {})",
        SpmmStrategy::select(&g.normalized_adjacency()?, 32),
        kernels::pool::global().width()
    );

    // 4. Simulate the aggregation kernel on PIUMA: DMA vs loop-unrolled.
    for cores in [1usize, 4, 8] {
        let config = MachineConfig::node(cores);
        for variant in [SpmmVariant::Dma, SpmmVariant::LoopUnrolled] {
            let run = SpmmSimulation::new(config.clone(), variant).run(g.adjacency(), 64)?;
            println!(
                "piuma {cores:2} cores, {variant:>13}: {:7.2} GFLOP/s ({:.0}% of bandwidth model)",
                run.gflops,
                run.model_fraction() * 100.0
            );
        }
    }

    // 5. Where would this workload land on the paper's platforms?
    let w = GcnWorkload::paper_model(g.vertices(), g.edges(), 32, 64, 8);
    let cpu = XeonModel::default().gcn_times_full(&w);
    let gpu = GpuModel::default().gcn_times(&w);
    let piuma = PiumaModel::default().gcn_times(&w);
    println!("cpu   model: {cpu}");
    println!("gpu   model: {gpu}");
    println!("piuma model: {piuma}");
    println!(
        "piuma speedup over cpu: {:.2}x, gpu over cpu: {:.2}x",
        piuma.speedup_over(&cpu),
        gpu.speedup_over(&cpu)
    );
    Ok(())
}
