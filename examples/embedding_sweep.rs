//! Measure (on this host) how the hidden embedding dimension shifts real
//! GCN inference time between aggregation and update — the architectural
//! knob the paper sweeps throughout.
//!
//! ```text
//! cargo run --release --example embedding_sweep
//! ```

use kernels::fused::gcn_layer_fused;
use piuma_gcn::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = OgbDataset::Products.materialize_scaled(1 << 13, 3);
    let a_hat = g.normalized_adjacency()?;
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    println!(
        "scaled products twin: {} vertices, {} edges, {threads} host threads",
        g.vertices(),
        g.edges()
    );

    println!(
        "\n{:>5} {:>14} {:>14} {:>14} {:>10}",
        "K", "spmm ms", "dense ms", "total ms", "spmm %"
    );
    for k in [8usize, 16, 32, 64, 128, 256] {
        let x = g.random_features(k, 5);
        let w = WeightInit::Glorot.build(k, k, &mut rand::rngs::mock::StepRng::new(1, 7));

        // Time the two phases separately...
        let t0 = Instant::now();
        let agg = SpmmStrategy::VertexParallel { threads }.run(&a_hat, &x)?;
        let spmm_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let upd = matrix::gemm::matmul_parallel(&agg, &w, threads)?;
        let dense_ms = t1.elapsed().as_secs_f64() * 1e3;

        // ...and the fused layer end to end.
        let t2 = Instant::now();
        let (fused, _) = gcn_layer_fused(
            &a_hat,
            &x,
            &w,
            None,
            Activation::Relu,
            SpmmStrategy::VertexParallel { threads },
        )?;
        let total_ms = t2.elapsed().as_secs_f64() * 1e3;
        assert_eq!(fused.shape(), upd.shape());

        println!(
            "{k:>5} {spmm_ms:>14.2} {dense_ms:>14.2} {total_ms:>14.2} {:>9.0}%",
            spmm_ms / (spmm_ms + dense_ms) * 100.0
        );
    }
    println!("\nAs on the paper's CPU baseline, aggregation (SpMM) dominates and");
    println!("its share grows with K once the feature matrix outgrows the caches.");
    Ok(())
}
