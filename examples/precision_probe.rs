//! Quick wall-clock probe for the narrow-precision SpMM paths.
//!
//! Mirrors the `microkernel` bench's F=256 SpMM measurement without the
//! criterion harness, so kernel tuning can iterate in seconds:
//!
//! ```text
//! cargo run --release --example precision_probe
//! ```

use piuma_gcn::graph::rmat::RmatConfig;
use piuma_gcn::graph::Graph;
use piuma_gcn::kernels::spmm::{spmm_sequential_into, spmm_sequential_quant_into};
use piuma_gcn::matrix::{DenseMatrix, Precision, QuantMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const REPS: usize = 5;

fn median_secs(mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.total_cmp(y));
    times[REPS / 2]
}

fn main() {
    let graph = Graph::rmat(&RmatConfig::power_law(14, 8), 3);
    let a = graph.normalized_adjacency().unwrap();
    let mut rng = StdRng::seed_from_u64(12483601);
    let f = 256usize;
    let data = (0..a.ncols() * f)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let h = DenseMatrix::from_vec(a.ncols(), f, data).unwrap();
    let mut out = DenseMatrix::default();
    let mut q = QuantMatrix::new();

    let f32_s = median_secs(|| spmm_sequential_into(&a, &h, &mut out).unwrap());
    println!("f32   {:8.3} ms", f32_s * 1e3);
    for p in [Precision::Bf16, Precision::F16, Precision::Int8] {
        q.encode(&h, p).unwrap();
        let s = median_secs(|| spmm_sequential_quant_into(&a, &q, &mut out).unwrap());
        println!(
            "{:5} {:8.3} ms  speedup {:.3}x",
            p.name(),
            s * 1e3,
            f32_s / s
        );
    }
}
