//! # piuma-gcn
//!
//! A full reproduction of *"Characterizing the Scalability of Graph
//! Convolutional Networks on Intel PIUMA"* (ISPASS 2023) as a Rust
//! workspace: executable GCN/SpMM kernels, a discrete-event PIUMA
//! architecture simulator, calibrated Xeon/A100 platform models, and a
//! harness that regenerates every table and figure in the paper's
//! evaluation.
//!
//! This crate is a facade: it re-exports each subsystem crate under one
//! namespace so examples and downstream users need a single dependency.
//!
//! ## Quick start
//!
//! ```
//! use piuma_gcn::prelude::*;
//!
//! // Build a graph, a 3-layer GCN, and run inference on the host.
//! let g = Graph::rmat(&RmatConfig::power_law(8, 8), 42);
//! let model = GcnModel::new(&GcnConfig::paper_model(16, 32, 4), 7);
//! let x = g.random_features(16, 9);
//! let out = model.infer(&g, &x, SpmmStrategy::default()).unwrap();
//! assert_eq!(out.shape(), (g.vertices(), 4));
//!
//! // Simulate the same aggregation on a 4-core PIUMA machine.
//! let sim = SpmmSimulation::new(MachineConfig::node(4), SpmmVariant::Dma);
//! let run = sim.run(g.adjacency(), 32).unwrap();
//! assert!(run.gflops > 0.0);
//! ```
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`matrix`] | dense matrices, GEMM, activations |
//! | [`sparse`] | COO/CSR, GCN normalization, degree stats |
//! | [`graph`] | graph type, RMAT/ER generators, OGB catalog |
//! | [`kernels`] | host SpMM (sequential / vertex- / edge-parallel) |
//! | [`gcn`] | the GCN model and inference |
//! | [`analytic`] | the paper's Eq. 1–5 bandwidth-bound model |
//! | [`piuma_sim`] | the discrete-event PIUMA simulator |
//! | [`piuma_kernels`] | SpMM lowered onto the simulator |
//! | [`platform_models`] | Xeon 8380 / A100 / PIUMA GCN timing models |
//! | [`report`] | experiment harness and the `repro` binary |
//! | [`serving`] | async inference service: batching + admission control |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analytic;
pub use gcn;
pub use graph;
pub use kernels;
pub use matrix;
pub use piuma_kernels;
pub use piuma_sim;
pub use platform_models;
pub use report;
pub use serving;
pub use sparse;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use analytic::workload::GcnWorkload;
    pub use analytic::{ElementSizes, SpmmTraffic};
    pub use gcn::{
        GcnConfig, GcnModel, InferenceWorkspace, NodeClassification, SamplingScheme, Trainer,
    };
    pub use graph::{Graph, OgbDataset, ReorderKind, ReorderedGraph, RmatConfig};
    pub use kernels::{SpmmPlan, SpmmStrategy};
    pub use matrix::{Activation, DenseMatrix, Precision, WeightInit};
    pub use piuma_kernels::{SpmmSimResult, SpmmSimulation, SpmmVariant};
    pub use piuma_sim::{MachineConfig, SimResult, Simulator};
    pub use platform_models::{GcnPhaseTimes, GpuModel, Phase, PiumaModel, XeonModel};
    pub use serving::{GcnService, Rejection, Request, ServiceConfig, TenantSpec};
    pub use sparse::{Coo, Csr, Permutation};
}
