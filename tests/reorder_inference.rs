//! End-to-end checks that reordered and planned inference paths are
//! semantically transparent: relabeling vertices, running the GCN on the
//! reordered graph, and un-permuting the output must reproduce the native
//! result (modulo float summation order), and the cached-plan path must
//! agree with the per-call `Auto` strategy.

use piuma_gcn::prelude::*;

const TOL: f32 = 1e-3;

fn setup(scale: u32, k: usize, classes: usize) -> (Graph, GcnModel, DenseMatrix) {
    let graph = Graph::rmat(&RmatConfig::power_law(scale, 6), 31);
    let model = GcnModel::new(&GcnConfig::paper_model(k, 2 * k, classes), 13);
    let features = graph.random_features(k, 5);
    (graph, model, features)
}

#[test]
fn reordered_inference_matches_native_after_restore() {
    let (graph, model, features) = setup(9, 16, 4);
    let native = model.infer(&graph, &features, SpmmStrategy::Auto).unwrap();
    for kind in [
        ReorderKind::DegreeDescending,
        ReorderKind::Bfs,
        ReorderKind::Rcm,
    ] {
        let reordered = ReorderedGraph::new(&graph, kind);
        let x_perm = reordered.permute_features(&features);
        let out_perm = model
            .infer(reordered.graph(), &x_perm, SpmmStrategy::Auto)
            .unwrap();
        let restored = reordered.restore_rows(&out_perm);
        assert_eq!(restored.shape(), native.shape());
        assert!(
            native.max_abs_diff(&restored) < TOL,
            "{kind} ordering diverged by {}",
            native.max_abs_diff(&restored)
        );
    }
}

#[test]
fn reordered_planned_inference_matches_native() {
    // The full pipeline the bench sells: RCM reorder + cached plan.
    let (graph, model, features) = setup(8, 12, 3);
    let native = model.infer(&graph, &features, SpmmStrategy::Auto).unwrap();
    let reordered = ReorderedGraph::new(&graph, ReorderKind::Rcm);
    let a_hat = reordered.graph().normalized_adjacency().unwrap();
    let x_perm = reordered.permute_features(&features);
    let mut ws = InferenceWorkspace::new();
    let out_perm = model.infer_planned_with(&a_hat, &x_perm, &mut ws).unwrap();
    let restored = reordered.restore_rows(out_perm);
    assert!(
        native.max_abs_diff(&restored) < TOL,
        "planned+reordered diverged by {}",
        native.max_abs_diff(&restored)
    );
    assert!(ws.plan().is_some_and(|p| p.matches(&a_hat)));
}

#[test]
fn planned_inference_matches_auto_across_widths() {
    let graph = Graph::rmat(&RmatConfig::power_law(8, 8), 77);
    let a_hat = graph.normalized_adjacency().unwrap();
    // Layer widths straddling the wide-K threshold exercise per-layer
    // strategy re-resolution from the cached statistics.
    for k in [8usize, 64] {
        let model = GcnModel::new(&GcnConfig::paper_model(k, 4 * k, 4), 3);
        let x = graph.random_features(k, 9);
        let auto = model
            .infer_normalized(&a_hat, &x, SpmmStrategy::Auto)
            .unwrap();
        let planned = model.infer_planned(&a_hat, &x).unwrap();
        assert!(
            auto.max_abs_diff(&planned) < TOL,
            "k={k} diverged by {}",
            auto.max_abs_diff(&planned)
        );
    }
}

#[test]
fn restore_rows_is_exact_inverse_of_permute_features() {
    let (graph, _, features) = setup(7, 10, 2);
    for kind in [
        ReorderKind::DegreeDescending,
        ReorderKind::Bfs,
        ReorderKind::Rcm,
    ] {
        let reordered = ReorderedGraph::new(&graph, kind);
        let round_trip = reordered.restore_rows(&reordered.permute_features(&features));
        assert_eq!(round_trip, features, "{kind}");
    }
}
