//! Property tests for the dense micro-kernel engine: every dispatch
//! backend (scalar, portable, and AVX2+FMA when the host supports it)
//! must compute the same product as the naive reference GEMM on random
//! shapes — including degenerate ones the register tiling has to pad
//! (k == 0, single-column outputs, widths that are not multiples of the
//! 8-lane tile).

use piuma_gcn::matrix::gemm::matmul_naive;
use piuma_gcn::matrix::microkernel::{avx2_available, matmul_packed_with, Backend, KernelDispatch};
use piuma_gcn::matrix::DenseMatrix;
use proptest::prelude::*;

/// Every backend the host can run. AVX2+FMA is included only when the
/// CPU reports it; `KernelDispatch::with_backend` would silently
/// downgrade it otherwise and the test would compare portable twice.
fn backends() -> Vec<KernelDispatch> {
    let mut v = vec![
        KernelDispatch::with_backend(Backend::Scalar),
        KernelDispatch::with_backend(Backend::Portable),
    ];
    if avx2_available() {
        v.push(KernelDispatch::with_backend(Backend::Avx2Fma));
    }
    v
}

/// Maps a raw selector to an interesting row/column dimension: the fixed
/// boundary cases (1 = pure tile padding, 8 = exactly one register tile,
/// 64 = one full MC row block) each get dedicated mass, the rest spreads
/// over 2..80 to cover ragged non-multiple-of-8 widths.
fn dim_from(sel: usize) -> usize {
    match sel {
        0..=2 => 1,
        3..=5 => 8,
        6..=8 => 64,
        s => 2 + s % 78,
    }
}

/// Maps a raw selector to a reduction depth, with dedicated mass on the
/// empty reduction (k == 0) and a depth past the first panel boundary.
fn k_from(sel: usize) -> usize {
    match sel {
        0..=2 => 0,
        3..=5 => 33,
        s => 1 + s % 23,
    }
}

/// Strategy: a GEMM problem (A: m x k, B: k x n) with shapes chosen to
/// straddle the MR=NR=8 register tile, plus the degenerate edges the
/// packing code has to handle: empty reduction (k == 0) and one-column
/// feature panels (n == 1).
fn gemm_strategy() -> impl Strategy<Value = (DenseMatrix, DenseMatrix)> {
    (0usize..120, 0usize..120, 0usize..120).prop_flat_map(|(ms, ks, ns)| {
        let (m, k, n) = (dim_from(ms), k_from(ks), dim_from(ns));
        // The vendored proptest stub sizes vectors by range; `x..x + 1`
        // pins the length exactly.
        (
            proptest::collection::vec(-2.0f32..2.0, m * k..m * k + 1),
            proptest::collection::vec(-2.0f32..2.0, k * n..k * n + 1),
        )
            .prop_map(move |(av, bv)| {
                (
                    DenseMatrix::from_vec(m, k, av).unwrap(),
                    DenseMatrix::from_vec(k, n, bv).unwrap(),
                )
            })
    })
}

/// Max |x - y| / max(1, |x|) over two matrices of identical shape.
fn max_rel_diff(x: &DenseMatrix, y: &DenseMatrix) -> f32 {
    x.as_slice()
        .iter()
        .zip(y.as_slice())
        .map(|(a, b)| (a - b).abs() / a.abs().max(1.0))
        .fold(0.0, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All backends agree with the naive triple loop within 1e-4
    /// relative error (FMA contracts rounding differently than separate
    /// mul+add, so bit-exactness is not expected).
    #[test]
    fn packed_backends_match_naive((a, b) in gemm_strategy()) {
        let reference = matmul_naive(&a, &b).unwrap();
        let mut c = DenseMatrix::default();
        for kd in backends() {
            // Exercise both the single-executor path and the row-chunked
            // broadcast path; results must be identical either way.
            for threads in [1usize, 4] {
                matmul_packed_with(kd, &a, &b, threads, &mut c).unwrap();
                prop_assert_eq!(c.shape(), reference.shape());
                let diff = max_rel_diff(&reference, &c);
                prop_assert!(
                    diff < 1e-4,
                    "backend {} threads {} diverged by {}",
                    kd.backend().name(), threads, diff
                );
            }
        }
    }

    /// The widened-AXPY SpMM primitive agrees across backends for every
    /// feature width, including F == 1 and ragged (non-multiple-of-8)
    /// tails where the vector loop hands off to the scalar remainder.
    #[test]
    fn axpy_backends_agree(
        alpha in -4.0f32..4.0,
        x in proptest::collection::vec(-2.0f32..2.0, 1..70),
        y0 in proptest::collection::vec(-2.0f32..2.0, 1..70),
    ) {
        let mut expect = y0.clone();
        for (yj, xj) in expect.iter_mut().zip(&x) {
            *yj += alpha * *xj;
        }
        for kd in backends() {
            let mut y = y0.clone();
            kd.axpy(&mut y, alpha, &x);
            for (j, (got, want)) in y.iter().zip(&expect).enumerate() {
                prop_assert!(
                    (got - want).abs() < 1e-5,
                    "backend {} lane {} got {} want {}",
                    kd.backend().name(), j, got, want
                );
            }
        }
    }
}
