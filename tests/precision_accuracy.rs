//! End-to-end accuracy acceptance for narrow-precision inference: on a
//! scaled synthetic twin of every Table-I dataset, the three-layer paper
//! model run at bf16 / f16 / int8 must stay within the documented
//! end-to-end error bound of the f32 reference ([`gcn::accuracy`]), and
//! the precision-guarded resilient entry must accept each precision
//! without degrading.

use piuma_gcn::gcn::accuracy::{accuracy_bound, evaluate};
use piuma_gcn::gcn::{GcnConfig, GcnModel, InferenceWorkspace};
use piuma_gcn::graph::OgbDataset;
use piuma_gcn::matrix::Precision;

/// Hidden width for the sweep — small keeps the 9-dataset sweep fast
/// while still exercising ragged (non-multiple-of-8) output panels.
const HIDDEN: usize = 20;

#[test]
fn every_precision_is_within_bound_on_every_table1_dataset() {
    for dataset in OgbDataset::TABLE1 {
        let stats = dataset.stats();
        let g = dataset.materialize_scaled(1 << 9, 0xACC);
        let model = GcnModel::new(
            &GcnConfig::paper_model(stats.input_dim, HIDDEN, stats.output_dim.min(HIDDEN)),
            7,
        );
        let x = g.random_features(stats.input_dim, 3);
        let a_hat = g.normalized_adjacency().unwrap();
        for precision in [Precision::Bf16, Precision::F16, Precision::Int8] {
            let report = evaluate(&model, &a_hat, &x, precision, stats.name).unwrap();
            assert!(
                report.within_bound(),
                "{} at {}: rel_frobenius {:.3e} over bound {:.1e} (max_abs {:.3e})",
                stats.name,
                precision,
                report.rel_frobenius,
                accuracy_bound(report.used),
                report.max_abs,
            );
            assert!(
                report.max_abs.is_finite(),
                "{} at {}: non-finite output delta",
                stats.name,
                precision
            );
        }
    }
}

#[test]
fn precision_guard_accepts_narrow_runs_on_a_table1_twin() {
    let dataset = OgbDataset::Arxiv;
    let stats = dataset.stats();
    let g = dataset.materialize_scaled(1 << 9, 11);
    let model = GcnModel::new(
        &GcnConfig::paper_model(stats.input_dim, HIDDEN, stats.output_dim.min(HIDDEN)),
        5,
    );
    let x = g.random_features(stats.input_dim, 13);
    let a_hat = g.normalized_adjacency().unwrap();
    let mut ws = InferenceWorkspace::new();
    for precision in [Precision::Bf16, Precision::F16, Precision::Int8] {
        let run = model
            .infer_prec_guarded_with(&a_hat, &x, precision, &mut ws)
            .unwrap();
        assert!(
            run.at_requested_precision(),
            "{precision} degraded to {}: rel_frobenius {:.3e}",
            run.used,
            run.rel_frobenius
        );
        assert!(run.rel_frobenius <= accuracy_bound(run.used));
    }
}
