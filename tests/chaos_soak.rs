//! Chaos soak gates: kill/heal schedules against a live service.
//!
//! The soak harness ([`serving::soak`]) drives a running [`GcnService`]
//! through armed fault windows — shard-task kills mid-layer, exchange
//! faults, batch-executor panics — while pacing a steady request stream
//! and classifying every handle. The gates enforced here are the PR's
//! acceptance criteria:
//!
//! * **zero hung handles** — every request resolves (response or typed
//!   rejection) within the drain budget;
//! * **zero non-typed failures** — submitted = ok + degraded + shed +
//!   hung, with every shed carried by a typed [`serving::Rejection`];
//! * **bitwise recovery** — every full-precision response equals the
//!   single-node planned reference bit for bit (`mismatched == 0`),
//!   including responses served during and after mid-layer shard kills.
//!
//! Seeds come from `FAULT_SEED` when the CI matrix pins one, else a
//! fixed default sweep; total wall clock stays inside the chaos budget.

use std::time::{Duration, Instant};

use gcn::{GcnConfig, GcnModel, InferenceWorkspace};
use graph::OgbDataset;
use kernels::SpmmPlan;
use matrix::DenseMatrix;
use resilience::fault::FaultKind;
use serving::soak::{run_soak, SoakConfig, SoakReport};
use serving::{GcnService, PartitionKind, ServiceConfig};
use sparse::Csr;

const TWIN_CAP: usize = 1 << 9;
/// Wall-clock ceiling for one soak scenario.
const BUDGET: Duration = Duration::from_secs(60);

/// Seeds to sweep: the env seed alone when the CI matrix pins one.
fn seeds() -> Vec<u64> {
    match std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
    {
        Some(s) => vec![s],
        None => vec![1, 7, 42, 1234],
    }
}

fn twin(d: OgbDataset) -> Csr {
    d.materialize_scaled(TWIN_CAP, 0xC0FFEE)
        .normalized_adjacency()
        .expect("twin adjacency normalizes")
}

fn features(n: usize, dim: usize, seed: u64) -> DenseMatrix {
    let data: Vec<f32> = (0..n * dim)
        .map(|i| {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 40) as f32) / ((1u64 << 23) as f32) - 1.0
        })
        .collect();
    DenseMatrix::from_vec(n, dim, data).expect("shape matches by construction")
}

fn reference(model: &GcnModel, a_hat: &Csr, x: &DenseMatrix) -> DenseMatrix {
    let mut ws = InferenceWorkspace::new();
    ws.install_plan(SpmmPlan::with_width(a_hat, x.cols(), 1));
    model
        .infer_planned_with(a_hat, x, &mut ws)
        .expect("planned inference succeeds")
        .clone()
}

fn setup() -> (GcnModel, Csr, DenseMatrix, DenseMatrix) {
    let a_hat = twin(OgbDataset::Arxiv);
    let model = GcnModel::new(&GcnConfig::from_dims(vec![16, 32, 8]), 7);
    let x = features(a_hat.nrows(), 16, 11);
    let want = reference(&model, &a_hat, &x);
    (model, a_hat, x, want)
}

fn assert_gates(label: &str, seed: u64, report: &SoakReport) {
    let t = &report.totals;
    assert_eq!(
        t.hung, 0,
        "{label} seed {seed}: hung handles — liveness violated: {t:?}"
    );
    assert_eq!(
        t.mismatched, 0,
        "{label} seed {seed}: recovered output diverged from the planned reference: {t:?}"
    );
    assert_eq!(
        t.submitted,
        t.ok_bitwise + t.degraded + t.shed_total() + t.hung,
        "{label} seed {seed}: a request resolved without a typed outcome: {t:?}"
    );
    assert!(report.clean());
}

/// Mid-layer shard kills, exchange faults, and batch-executor panics
/// against the sharded backend: every gate must hold for every seed.
#[test]
fn chaos_soak_sharded_mid_layer_kills() {
    let started = Instant::now();
    let _quiet = resilience::retry::quiet_panics();
    for seed in seeds() {
        let (model, a_hat, x, want) = setup();
        let svc = GcnService::sharded(
            model,
            a_hat,
            x,
            4,
            PartitionKind::Rows1D,
            ServiceConfig::single_tenant(),
        )
        .expect("sharded service starts");
        let cfg = SoakConfig::quick(seed)
            .window(
                "shard.task",
                FaultKind::Panic,
                0.05,
                Duration::from_millis(250),
            )
            .window(
                "shard.exchange",
                FaultKind::Panic,
                0.30,
                Duration::from_millis(250),
            )
            .window(
                "serving.batch",
                FaultKind::Panic,
                0.05,
                Duration::from_millis(200),
            );
        let report = run_soak(&svc, &want, &cfg);
        svc.shutdown();
        assert_gates("sharded", seed, &report);
        assert!(
            report.totals.ok_bitwise > 0,
            "seed {seed}: the service must keep serving through the schedule"
        );
        assert_eq!(report.windows.len(), 3);
        for w in &report.windows {
            assert!(
                w.recovery_latency.is_some(),
                "seed {seed}, window {:?}: no post-heal success observed",
                w.window.label
            );
        }
        assert!(
            started.elapsed() < BUDGET,
            "soak exceeded the chaos wall-clock budget"
        );
    }
}

/// Always-overloaded brownout policy on the planned backend: every
/// response comes back annotated degraded (typed, never silent), and the
/// liveness gates still hold under injected batch faults.
#[test]
fn chaos_soak_brownout_annotates_every_response() {
    let started = Instant::now();
    let _quiet = resilience::retry::quiet_panics();
    let (model, a_hat, x, want) = setup();
    let mut svc_cfg = ServiceConfig::single_tenant();
    // Queue depth is always >= 0: every batch runs at the brownout
    // precision and must say so.
    svc_cfg.brownout.queue_high_water = 0;
    let svc = GcnService::planned(model, a_hat, x, svc_cfg).expect("planned service starts");
    let cfg = SoakConfig::quick(7).window(
        "serving.batch",
        FaultKind::Panic,
        0.05,
        Duration::from_millis(200),
    );
    let report = run_soak(&svc, &want, &cfg);
    let metrics = svc.shutdown();
    assert_gates("brownout", 7, &report);
    assert_eq!(
        report.totals.ok_bitwise, 0,
        "with a zero high-water mark every batch is browned out"
    );
    assert!(report.totals.degraded > 0);
    assert!(
        metrics.brownout_batches > 0,
        "brownouts must be counted in service metrics"
    );
    assert!(started.elapsed() < BUDGET);
}
