//! Property-based tests over the core data structures and kernels.

use piuma_gcn::prelude::*;
use proptest::prelude::*;

/// Strategy: a random COO matrix with shape up to 48x48 and up to 200
/// triplets (duplicates and empty rows included on purpose).
fn coo_strategy() -> impl Strategy<Value = Coo> {
    (2usize..48, 2usize..48).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r, 0..c, -2.0f32..2.0), 0..200).prop_map(move |triplets| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in triplets {
                coo.push(i, j, v);
            }
            coo
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_construction_upholds_invariants(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        prop_assert!(csr.validate().is_ok());
        prop_assert!(csr.nnz() <= coo.nnz());
    }

    #[test]
    fn csr_matches_dense_semantics(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        let dense = csr.to_dense();
        // Every stored triplet agrees with the dense reconstruction.
        for (r, c, v) in csr.iter() {
            prop_assert!((dense[(r, c)] - v).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_is_an_involution(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn spmm_kernels_agree(coo in coo_strategy(), k in 1usize..9, threads in 1usize..6) {
        let csr = Csr::from_coo(&coo);
        let mut x = DenseMatrix::zeros(csr.ncols(), k);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 2654435761) % 17) as f32 / 17.0 - 0.5;
        }
        let reference = SpmmStrategy::Sequential.run(&csr, &x).unwrap();
        let vp = SpmmStrategy::VertexParallel { threads }.run(&csr, &x).unwrap();
        let ep = SpmmStrategy::EdgeParallel { threads }.run(&csr, &x).unwrap();
        prop_assert!(reference.max_abs_diff(&vp) < 1e-3);
        prop_assert!(reference.max_abs_diff(&ep) < 1e-3);
    }

    #[test]
    fn spmm_distributes_over_dense_product(coo in coo_strategy(), k in 1usize..6) {
        // (A * H) computed sparse equals A_dense * H computed dense.
        let csr = Csr::from_coo(&coo);
        let mut h = DenseMatrix::zeros(csr.ncols(), k);
        for (i, v) in h.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 40503) % 13) as f32 / 13.0;
        }
        let sparse_out = SpmmStrategy::Sequential.run(&csr, &h).unwrap();
        let dense_out = csr.to_dense().matmul(&h).unwrap();
        prop_assert!(sparse_out.max_abs_diff(&dense_out) < 1e-3);
    }

    #[test]
    fn normalized_adjacency_rows_are_stochastic_under_random_walk(
        edges in proptest::collection::vec((0usize..20, 0usize..20), 1..60)
    ) {
        let g = Graph::from_undirected_edges(20, &edges);
        let rw = sparse::norm::normalize(g.adjacency(), sparse::norm::NormKind::RandomWalk).unwrap();
        for r in 0..20 {
            let s: f32 = rw.row_values(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5, "row {} sums to {}", r, s);
        }
    }

    #[test]
    fn symmetric_normalization_bounds_spectral_growth(
        edges in proptest::collection::vec((0usize..16, 0usize..16), 1..50),
        k in 1usize..5
    ) {
        // ||A_hat x|| <= ||x|| for the symmetric normalization (its spectral
        // radius is 1), so one aggregation never amplifies features.
        let g = Graph::from_undirected_edges(16, &edges);
        let a_hat = g.normalized_adjacency().unwrap();
        let x = g.random_features(k, 3);
        let y = SpmmStrategy::Sequential.run(&a_hat, &x).unwrap();
        prop_assert!(y.frobenius_norm() <= x.frobenius_norm() * 1.0001);
    }

    #[test]
    fn analytic_model_is_monotone(v in 1usize..100_000, e in 1usize..1_000_000, k in 1usize..512) {
        let t = SpmmTraffic::compute(v, e, k, ElementSizes::default());
        let t_more_edges = SpmmTraffic::compute(v, e * 2, k, ElementSizes::default());
        prop_assert!(t_more_edges.read_bytes() > t.read_bytes());
        prop_assert!(t_more_edges.flops > t.flops);
        // More bandwidth never hurts.
        let slow = t.time_seconds(1e9, 1e9);
        let fast = t.time_seconds(2e9, 2e9);
        prop_assert!(fast < slow);
    }

    #[test]
    fn csc_round_trips_and_agrees_on_entries(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        let csc = sparse::Csc::from_csr(&csr);
        prop_assert_eq!(csc.to_csr(), csr.clone());
        for (r, c, v) in csr.iter() {
            prop_assert_eq!(csc.get(r, c), Some(v));
        }
        prop_assert_eq!(csc.nnz(), csr.nnz());
    }

    #[test]
    fn matrix_market_round_trips_arbitrary_matrices(coo in coo_strategy()) {
        use piuma_gcn::graph::io::{read_matrix_market, write_matrix_market};
        let csr = Csr::from_coo(&coo);
        let mut buf = Vec::new();
        write_matrix_market(&csr, &mut buf).unwrap();
        let back = read_matrix_market(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.shape(), csr.shape());
        prop_assert_eq!(back.nnz(), csr.nnz());
        for ((r1, c1, v1), (r2, c2, v2)) in back.iter().zip(csr.iter()) {
            prop_assert_eq!((r1, c1), (r2, c2));
            // Values pass through decimal text; allow rounding slack.
            prop_assert!((v1 - v2).abs() <= 1e-4 * v2.abs().max(1.0));
        }
    }

    #[test]
    fn spmv_is_spmm_with_one_column(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        let x: Vec<f32> = (0..csr.ncols())
            .map(|i| ((i * 7919) % 23) as f32 / 23.0 - 0.5)
            .collect();
        let y = sparse::ops::spmv(&csr, &x).unwrap();
        let xm = DenseMatrix::from_vec(csr.ncols(), 1, x).unwrap();
        let ym = SpmmStrategy::Sequential.run(&csr, &xm).unwrap();
        for (u, &yu) in y.iter().enumerate() {
            prop_assert!((yu - ym[(u, 0)]).abs() < 1e-4);
        }
    }

    #[test]
    fn fusion_always_helps_and_is_bounded(
        v in 1usize..100_000,
        deg in 1usize..64,
        k in 1usize..512,
    ) {
        use piuma_gcn::analytic::fusion::FusionAnalysis;
        use piuma_gcn::analytic::workload::LayerWorkload;
        let layer = LayerWorkload { vertices: v, edges: v * deg, k_in: k, k_out: k };
        let a = FusionAnalysis::of(&layer, ElementSizes::default());
        prop_assert!(a.speedup() >= 1.0);
        // Savings are one write + one read of the V x K intermediate, which
        // can never exceed half the unfused traffic plus the CSR bytes.
        prop_assert!(a.traffic_saved() < 0.67, "saved {}", a.traffic_saved());
    }

    #[test]
    fn sampled_subgraphs_are_valid_and_seeded(
        seeds in proptest::collection::vec(0usize..64, 1..6),
        hops in 0usize..3,
        fanout in 1usize..5,
    ) {
        let g = Graph::rmat(&RmatConfig::power_law(6, 4), 17);
        let sub = graph::sampling::sample_neighbors(&g, &seeds, hops, fanout, 3);
        sub.adjacency.validate().unwrap();
        // Every (deduplicated) seed is present, in order, at the front.
        let mut seen = std::collections::HashSet::new();
        let unique: Vec<usize> = seeds
            .iter()
            .copied()
            .filter(|s| seen.insert(*s))
            .collect();
        prop_assert_eq!(&sub.vertices[..unique.len()], &unique[..]);
        // Induced edges exist in the parent graph.
        for (lu, lv, _) in sub.adjacency.iter() {
            prop_assert!(g
                .adjacency()
                .get(sub.vertices[lu], sub.vertices[lv])
                .is_some());
        }
    }

    #[test]
    fn matmul_at_agrees_with_transpose_for_random_shapes(
        rows in 1usize..40,
        m in 1usize..20,
        n in 1usize..20,
    ) {
        let fill = |r: usize, c: usize, salt: usize| {
            let data = (0..r * c)
                .map(|i| (((i + salt) * 2654435761) % 19) as f32 / 19.0 - 0.5)
                .collect();
            DenseMatrix::from_vec(r, c, data).unwrap()
        };
        let a = fill(rows, m, 1);
        let b = fill(rows, n, 2);
        let direct = matrix::gemm::matmul_at(&a, &b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        prop_assert!(direct.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    fn gcn_inference_is_deterministic(seed in 0u64..1000) {
        let g = Graph::rmat(&RmatConfig::power_law(6, 4), seed);
        let model = GcnModel::new(&GcnConfig::paper_model(8, 8, 4), seed);
        let x = g.random_features(8, seed);
        let a = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
        let b = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
        prop_assert_eq!(a, b);
    }
}

/// Deterministic Fisher-Yates permutation from a seed (the vendored
/// proptest stub has no shuffle strategy, so randomness comes from a plain
/// xorshift stream instead).
fn seeded_permutation(n: usize, seed: u64) -> Permutation {
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        order.swap(i, (s as usize) % (i + 1));
    }
    Permutation::from_new_to_old(order).expect("Fisher-Yates yields a bijection")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn permute_round_trips_with_inverse(coo in coo_strategy(), rs in 0u64..1_000_000, cs in 0u64..1_000_000) {
        let csr = Csr::from_coo(&coo);
        let rows = seeded_permutation(csr.nrows(), rs);
        let cols = seeded_permutation(csr.ncols(), cs);
        let permuted = csr.permute(&rows, &cols).unwrap();
        prop_assert!(permuted.validate().is_ok());
        prop_assert_eq!(permuted.nnz(), csr.nnz());
        let back = permuted.permute(&rows.inverse(), &cols.inverse()).unwrap();
        prop_assert_eq!(back, csr);
    }

    #[test]
    fn nnz_partition_covers_all_rows_exactly_once(
        scale in 4u32..9,
        degree in 1usize..9,
        slots in 1usize..33,
        seed in 0u64..1000,
    ) {
        use piuma_gcn::kernels::plan::nnz_balanced_partition;
        let n = 1usize << scale;
        // Alternate between the uniform control and the skewed RMAT family.
        let graph = if seed % 2 == 0 {
            graph::generators::erdos_renyi(n, n * degree / 2, seed)
        } else {
            Graph::rmat(&RmatConfig::power_law(scale, degree), seed)
        };
        let a = graph.adjacency();
        let partition = nnz_balanced_partition(a.row_ptr(), slots);
        // Boundaries are strictly increasing from 0 to nrows: the ranges
        // tile the row space, covering every row exactly once.
        prop_assert_eq!(*partition.first().unwrap(), 0);
        prop_assert_eq!(*partition.last().unwrap(), a.nrows());
        prop_assert!(partition.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(partition.len() <= slots + 1);

        // Row granularity caps balance at one hub row above the ideal: each
        // slot owns at most ceil(nnz/slots) + max_row_nnz - 1 non-zeros.
        let nnz = a.nnz();
        let max_row = (0..a.nrows()).map(|r| a.row_nnz(r)).max().unwrap_or(0);
        let bound = nnz.div_ceil(slots) + max_row.saturating_sub(1);
        for w in partition.windows(2) {
            let slot_nnz = a.row_ptr()[w[1]] - a.row_ptr()[w[0]];
            prop_assert!(
                slot_nnz <= bound,
                "slot [{}, {}) owns {} nnz, bound {}",
                w[0], w[1], slot_nnz, bound
            );
        }
        // Hub-adjusted 2x check: when no single row exceeds the ideal, every
        // slot stays within twice the perfect share.
        let ideal = (nnz as f64 / slots as f64).ceil();
        if (max_row as f64) <= ideal {
            for w in partition.windows(2) {
                let slot_nnz = (a.row_ptr()[w[1]] - a.row_ptr()[w[0]]) as f64;
                prop_assert!(slot_nnz <= 2.0 * ideal.max(1.0));
            }
        }
    }

    #[test]
    fn planned_spmm_agrees_with_sequential(coo in coo_strategy(), k in 1usize..9) {
        let csr = Csr::from_coo(&coo);
        let mut h = DenseMatrix::zeros(csr.ncols(), k);
        for (i, v) in h.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 2654435761) % 17) as f32 / 17.0 - 0.5;
        }
        let reference = SpmmStrategy::Sequential.run(&csr, &h).unwrap();
        let plan = SpmmPlan::new(&csr, k);
        let planned = plan.run(&csr, &h).unwrap();
        prop_assert!(reference.max_abs_diff(&planned) < 1e-3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulator_is_monotone_in_resources(cores_exp in 0u32..4, k in 1usize..5) {
        // More bandwidth must not meaningfully slow the simulated kernel,
        // and more cores must not slow the DMA kernel. (Strict per-point
        // monotonicity does not hold for flow-controlled queueing systems,
        // so a small tolerance is allowed.)
        let a = OgbDataset::Products.materialize_scaled(1 << 10, 5).into_adjacency();
        let k = k * 8;
        let cores = 1usize << cores_exp;
        let base_cfg = MachineConfig::node(cores);
        let fast_cfg = base_cfg.with_dram_bandwidth_gbps(base_cfg.dram_bandwidth_gbps * 2.0);
        let base = SpmmSimulation::new(base_cfg, SpmmVariant::Dma).run(&a, k).unwrap();
        let fast = SpmmSimulation::new(fast_cfg, SpmmVariant::Dma).run(&a, k).unwrap();
        prop_assert!(fast.sim.total_ns <= base.sim.total_ns * 1.05);

        let more_cores = SpmmSimulation::new(MachineConfig::node(cores * 2), SpmmVariant::Dma)
            .run(&a, k)
            .unwrap();
        prop_assert!(more_cores.sim.total_ns <= base.sim.total_ns * 1.10);
    }
}
