//! The paper's headline results, asserted as shapes. Each test corresponds
//! to a numbered claim recorded in `EXPERIMENTS.md`.

use piuma_gcn::prelude::*;
use piuma_gcn::report::experiments::fig2;
use piuma_gcn::report::experiments::fig5;
use piuma_gcn::report::experiments::fig9;
use piuma_gcn::report::experiments::Fidelity;

/// Fig. 2: SpMM share rises with both scale and density, and the contours
/// are monotone along both axes.
#[test]
fn fig2_contours_are_monotone() {
    let scales = [1usize << 14, 1 << 18, 1 << 22];
    let densities = [1e-6, 1e-5, 1e-4];
    for &d in &densities {
        let fr: Vec<f64> = scales.iter().map(|&v| fig2::spmm_fraction(v, d)).collect();
        assert!(
            fr[0] <= fr[1] + 0.02 && fr[1] <= fr[2] + 0.02,
            "scale axis: {fr:?}"
        );
    }
    for &v in &scales {
        let fr: Vec<f64> = densities
            .iter()
            .map(|&d| fig2::spmm_fraction(v, d))
            .collect();
        assert!(
            fr[0] <= fr[1] + 0.02 && fr[1] <= fr[2] + 0.02,
            "density axis: {fr:?}"
        );
    }
}

/// Fig. 5: at 32 cores the DMA kernel stays within a factor ~2 of the
/// bandwidth model while the loop-unrolled kernel collapses below 40%, and
/// the curves separate past 8 cores.
#[test]
fn fig5_dma_scales_and_unrolled_collapses() {
    let points = fig5::sweep(Fidelity::Quick, &[64]);
    let at = |cores: usize| {
        points
            .iter()
            .find(|p| p.cores == cores)
            .expect("swept point")
    };
    let p8 = at(8);
    let p32 = at(32);
    assert!(p8.dma_gflops / p8.model_gflops > 0.75);
    assert!(p32.unrolled_gflops / p32.model_gflops < 0.45);
    assert!(p32.dma_gflops > p32.unrolled_gflops * 1.4);
}

/// Fig. 6: DMA SpMM throughput is linear in per-slice bandwidth and flat in
/// DRAM latency up to 360 ns with the full 16 threads/MTP.
#[test]
fn fig6_bandwidth_linear_latency_flat() {
    let a = OgbDataset::Products
        .materialize_scaled(1 << 12, 0xC0FFEE)
        .into_adjacency();
    let run = |cfg: MachineConfig| {
        SpmmSimulation::new(cfg, SpmmVariant::Dma)
            .run(&a, 256)
            .unwrap()
            .gflops
    };
    let base = MachineConfig::node(4);
    let bw1 = run(base.clone());
    let bw2 = run(base.with_dram_bandwidth_gbps(64.0));
    assert!(
        (bw2 / bw1 - 2.0).abs() < 0.25,
        "bandwidth doubling gave {:.2}x",
        bw2 / bw1
    );

    let l45 = run(base.with_dram_latency_ns(45.0));
    let l360 = run(base.with_dram_latency_ns(360.0));
    assert!(l360 / l45 > 0.85, "latency tolerance {:.2}", l360 / l45);
}

/// Fig. 7: 16 threads/MTP tolerate high latency at K=8; a single thread
/// does not, but keeps tolerance at K=256.
#[test]
fn fig7_thread_count_gates_latency_tolerance() {
    let a = OgbDataset::Products
        .materialize_scaled(1 << 12, 0xC0FFEE)
        .into_adjacency();
    let run = |tpm: usize, lat: f64, k: usize| {
        let cfg = MachineConfig::node(8)
            .with_threads_per_mtp(tpm)
            .with_dram_latency_ns(lat);
        SpmmSimulation::new(cfg, SpmmVariant::Dma)
            .run(&a, k)
            .unwrap()
            .gflops
    };
    let retention_16 = run(16, 360.0, 8) / run(16, 45.0, 8);
    let retention_1 = run(1, 360.0, 8) / run(1, 45.0, 8);
    assert!(
        retention_16 > retention_1 + 0.2,
        "16t {retention_16:.2} vs 1t {retention_1:.2}"
    );
    let retention_1_k256 = run(1, 360.0, 256) / run(1, 45.0, 256);
    assert!(
        retention_1_k256 > 0.75,
        "K=256 single-thread retention {retention_1_k256:.2}"
    );
}

/// Fig. 9: who wins. PIUMA > CPU everywhere; GPU < CPU at K=8 on fitting
/// graphs, GPU > CPU at K=256; GPU collapses on `papers`.
#[test]
fn fig9_win_loss_structure() {
    for d in OgbDataset::FIGURE9 {
        let s = fig9::speedups(d, 64);
        assert!(s.piuma_gcn > 1.0, "{d}: piuma {:.2}", s.piuma_gcn);
    }
    assert!(fig9::speedups(OgbDataset::Products, 8).gpu_gcn < 1.0);
    assert!(fig9::speedups(OgbDataset::Products, 256).gpu_gcn > 1.0);
    assert!(fig9::speedups(OgbDataset::Papers, 64).gpu_gcn < 0.7);
}

/// Figs. 3/10 combined: the same workload that is SpMM-bound on CPU becomes
/// dense-pressured on PIUMA as K grows — the paper's central architectural
/// story.
#[test]
fn spmm_to_dense_shift_between_platforms() {
    let s = OgbDataset::Products.stats();
    let w = GcnWorkload::paper_model(s.vertices, s.edges, s.input_dim, 256, s.output_dim);
    let cpu = XeonModel::default().gcn_times_full(&w);
    let piuma = PiumaModel::default().gcn_times(&w);
    assert!(
        cpu.fraction(Phase::Spmm) > 0.7,
        "cpu spmm {:.2}",
        cpu.fraction(Phase::Spmm)
    );
    assert!(
        piuma.fraction(Phase::Dense) > cpu.fraction(Phase::Dense) + 0.2,
        "piuma dense {:.2} vs cpu {:.2}",
        piuma.fraction(Phase::Dense),
        cpu.fraction(Phase::Dense)
    );
}
