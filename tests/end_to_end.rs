//! Cross-crate integration: real GCN inference over generated graphs, every
//! kernel agreeing, and the simulator consuming the same adjacency.

use piuma_gcn::prelude::*;

#[test]
fn full_pipeline_on_a_power_law_graph() {
    let g = Graph::rmat(&RmatConfig::power_law(9, 8), 123);
    let model = GcnModel::new(&GcnConfig::paper_model(24, 48, 6), 5);
    let x = g.random_features(24, 11);

    let reference = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
    assert_eq!(reference.shape(), (g.vertices(), 6));
    assert!(reference.all_finite());

    for strategy in [
        SpmmStrategy::VertexParallel { threads: 8 },
        SpmmStrategy::EdgeParallel { threads: 8 },
    ] {
        let out = model.infer(&g, &x, strategy).unwrap();
        let diff = reference.max_abs_diff(&out);
        assert!(diff < 1e-3, "{strategy}: diff {diff}");
    }
}

#[test]
fn scaled_ogb_twin_runs_both_host_and_simulated_spmm() {
    let g = OgbDataset::Arxiv.materialize_scaled(1 << 10, 9);
    let a = g.adjacency();
    let k = 16;
    let x = g.random_features(k, 3);

    // Host kernel produces real numbers...
    let host = SpmmStrategy::VertexParallel { threads: 4 }
        .run(a, &x)
        .unwrap();
    assert_eq!(host.shape(), (a.nrows(), k));

    // ...and the simulator prices the same kernel on PIUMA.
    let sim = SpmmSimulation::new(MachineConfig::node(2), SpmmVariant::Dma)
        .run(a, k)
        .unwrap();
    assert!(sim.sim.total_ns > 0.0);
    assert!(sim.gflops > 0.0);
    // Traffic the simulator moved must match the analytical accounting of
    // the same matrix within tolerance.
    let traffic = SpmmTraffic::compute(a.nrows(), a.nnz(), k, ElementSizes::default());
    let ratio = sim.sim.bytes_read / traffic.read_bytes();
    assert!((0.85..1.25).contains(&ratio), "read traffic ratio {ratio}");
}

#[test]
fn normalization_preserves_inference_stability_across_depth() {
    // Symmetric normalization keeps activations bounded: a deep GCN over
    // A_hat must not blow up.
    let g = Graph::rmat(&RmatConfig::uniform(8, 12), 77);
    let dims = vec![8, 16, 16, 16, 16, 4];
    let model = GcnModel::new(&GcnConfig::from_dims(dims), 1);
    let x = g.random_features(8, 2);
    let out = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
    assert!(out.all_finite());
    assert!(out.frobenius_norm() < 1e6);
}

#[test]
fn platform_models_agree_with_simulator_on_spmm_ordering() {
    // The PIUMA analytical model (used for full-size graphs) and the
    // event-driven simulator (used for twins) must rank machine sizes the
    // same way and land in the same efficiency band.
    let a = OgbDataset::Products
        .materialize_scaled(1 << 12, 4)
        .into_adjacency();
    let k = 64;
    for cores in [4usize, 16] {
        let sim = SpmmSimulation::new(MachineConfig::node(cores), SpmmVariant::Dma)
            .run(&a, k)
            .unwrap();
        let frac = sim.model_fraction();
        assert!(
            (0.6..=1.05).contains(&frac),
            "{cores} cores: simulator at {frac:.2} of the analytic model"
        );
    }
}

#[test]
fn repro_experiments_produce_csv_and_sections() {
    use piuma_gcn::report::experiments::{Experiment, Fidelity};
    for e in [Experiment::Table1, Experiment::Fig2, Experiment::Fig9] {
        let out = e.run(Fidelity::Quick);
        assert!(!out.sections.is_empty(), "{} has no sections", e.name());
        assert!(!out.csv_files.is_empty(), "{} has no CSVs", e.name());
        for (_, csv) in &out.csv_files {
            assert!(csv.lines().count() > 1, "{}: empty csv", e.name());
        }
    }
}
