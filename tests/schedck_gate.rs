//! Tier-1 concurrency gate: a fast schedule-exploration pass over the
//! pool's finished-counter handshake, so `cargo test` at the root proves
//! the protocol clean under every preemption-bounded interleaving — and
//! proves the detector itself still fires on a seeded memory-ordering
//! bug. The exhaustive model suites (ready-ring, quarantine/respawn,
//! exchange-retry) live in `crates/schedck/tests/` and run in the
//! workspace pass and the `schedck` CI job; this gate keeps the
//! fastest pair on the tier-1 path.

use schedck::{explore, Config, MCell, Ordering, Th};

const WORKERS: u64 = 2;

/// The `JobCore::run`/`wait_done` shape: result write, `finished`
/// increment with the ordering under test, condvar completion signal,
/// waiter reads every result after acquiring the counter.
fn finished_counter_model(th: &Th, finish_ord: Ordering) {
    let finished = th.atomic(0);
    let mx = th.mutex("done");
    let cv = th.condvar();
    let results: Vec<MCell<u64>> = (0..WORKERS).map(|_| th.cell("result", 0u64)).collect();
    let joins: Vec<_> = (0..WORKERS as usize)
        .map(|i| {
            let r = results[i].clone();
            th.spawn(move |th| {
                r.write(th, |v| *v = 1 + i as u64);
                if finished.fetch_add(th, 1, finish_ord) + 1 == WORKERS {
                    let _g = mx.lock(th);
                    cv.notify_all(th);
                }
            })
        })
        .collect();
    let mut g = mx.lock(th);
    while finished.load(th, Ordering::Acquire) < WORKERS {
        g = cv.wait(g);
    }
    drop(g);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.read(th, |v| *v), 1 + i as u64);
    }
    for j in joins {
        th.join(j);
    }
}

#[test]
fn pool_completion_handshake_explores_clean() {
    let report = explore(Config::default(), |th| {
        finished_counter_model(th, Ordering::AcqRel);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
}

#[test]
fn seeded_relaxed_downgrade_is_caught() {
    let report = explore(Config::default(), |th| {
        finished_counter_model(th, Ordering::Relaxed);
    });
    let failure = report
        .failure
        .expect("relaxed completion counter must race");
    assert!(failure.message.contains("data race"), "{}", failure.message);
}
