//! Property tests for the narrow-precision storage layer: conversion
//! round-trips must stay inside the format's half-step, saturating casts
//! must clamp (never wrap) on every edge the IEEE encodings can produce,
//! and the quantized micro-kernels must agree across dispatch backends on
//! the same degenerate shapes the f32 engine is tested on — empty
//! reduction (k == 0), single-column panels (F == 1), and ragged widths
//! that are not multiples of the 8-lane tile.

use piuma_gcn::matrix::microkernel::{
    avx2_available, matmul_packed_prec_with, Backend, KernelDispatch,
};
use piuma_gcn::matrix::quant::{
    bf16_to_f32, f16_to_f32, f32_to_bf16, f32_to_f16, saturating_cast_i8, I8_MAX_Q,
};
use piuma_gcn::matrix::{DenseMatrix, Precision, QuantMatrix};
use proptest::prelude::*;

/// Every backend the host can run (AVX2+FMA only when the CPU has it).
fn backends() -> Vec<KernelDispatch> {
    let mut v = vec![
        KernelDispatch::with_backend(Backend::Scalar),
        KernelDispatch::with_backend(Backend::Portable),
    ];
    if avx2_available() {
        v.push(KernelDispatch::with_backend(Backend::Avx2Fma));
    }
    v
}

const NARROW: [Precision; 3] = [Precision::Bf16, Precision::F16, Precision::Int8];

/// Row/column selector with dedicated mass on the tile boundaries:
/// 1 (pure padding), 8 (exactly one register tile), then ragged 2..80.
fn dim_from(sel: usize) -> usize {
    match sel {
        0..=2 => 1,
        3..=5 => 8,
        s => 2 + s % 78,
    }
}

/// Reduction depth with dedicated mass on the empty reduction (k == 0)
/// and a depth past the first 8-wide panel boundary.
fn k_from(sel: usize) -> usize {
    match sel {
        0..=2 => 0,
        3..=5 => 33,
        s => 1 + s % 23,
    }
}

/// A GEMM problem (A: m x k, B: k x n) straddling the register tile.
fn gemm_strategy() -> impl Strategy<Value = (DenseMatrix, DenseMatrix)> {
    (0usize..120, 0usize..120, 0usize..120).prop_flat_map(|(ms, ks, ns)| {
        let (m, k, n) = (dim_from(ms), k_from(ks), dim_from(ns));
        // The vendored proptest stub sizes vectors by range; `x..x + 1`
        // pins the length exactly.
        (
            proptest::collection::vec(-2.0f32..2.0, m * k..m * k + 1),
            proptest::collection::vec(-2.0f32..2.0, k * n..k * n + 1),
        )
            .prop_map(move |(av, bv)| {
                (
                    DenseMatrix::from_vec(m, k, av).unwrap(),
                    DenseMatrix::from_vec(k, n, bv).unwrap(),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// bf16 keeps an 8-bit significand (7 explicit bits): nearest-even
    /// rounding lands the round-trip within half a ULP, i.e. a relative
    /// error of at most 2^-8.
    #[test]
    fn bf16_round_trip_is_within_half_ulp(v in -1.0e30f32..1.0e30) {
        let back = bf16_to_f32(f32_to_bf16(v));
        prop_assert!(
            (back - v).abs() <= v.abs() / 256.0,
            "v={v} back={back}"
        );
    }

    /// f16 keeps 10 significand bits in its normal range and quantizes
    /// subnormals on the 2^-24 grid; the round-trip stays within half a
    /// step of whichever regime applies.
    #[test]
    fn f16_round_trip_is_within_half_step(v in -60000.0f32..60000.0) {
        let back = f16_to_f32(f32_to_f16(v));
        // Half a normal-range ULP relatively, plus half a subnormal step
        // absolutely for the region below 2^-14.
        let tol = v.abs() / 2048.0 + 3.0e-8;
        prop_assert!((back - v).abs() <= tol, "v={v} back={back}");
    }

    /// Per-row int8 quantization through `QuantMatrix` lands every entry
    /// within half a quantization step of the row's calibrated grid.
    #[test]
    fn int8_row_round_trip_is_within_half_step(
        rows_sel in 0usize..40,
        cols_sel in 0usize..40,
        seed_vals in proptest::collection::vec(-100.0f32..100.0, 1600..1601),
    ) {
        let rows = 1 + rows_sel % 5;
        let cols = 1 + cols_sel % 70;
        let src = DenseMatrix::from_vec(
            rows,
            cols,
            seed_vals[..rows * cols].to_vec(),
        ).unwrap();
        let mut q = QuantMatrix::new();
        q.encode(&src, Precision::Int8).unwrap();
        let mut back = DenseMatrix::default();
        q.decode(&mut back);
        for r in 0..rows {
            let row_max = src.row(r).iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let half_step = row_max / I8_MAX_Q * 0.5 + 1e-9;
            for (a, b) in src.row(r).iter().zip(back.row(r)) {
                prop_assert!(
                    (a - b).abs() <= half_step,
                    "row {r}: {a} -> {b}, half step {half_step}"
                );
            }
        }
    }

    /// The saturating cast clamps to the symmetric ±127 grid and agrees
    /// with round-ties-even inside it — it never wraps.
    #[test]
    fn saturating_cast_clamps_and_rounds_to_even(v in -1.0e6f32..1.0e6) {
        let q = saturating_cast_i8(v);
        prop_assert!((-127..=127).contains(&(q as i32)));
        let want = v.round_ties_even().clamp(-I8_MAX_Q, I8_MAX_Q);
        prop_assert_eq!(q as f32, want);
    }

    /// All backends (and both executor paths) produce the same quantized
    /// GEMM result: the narrowing is deterministic, so only accumulation
    /// order may differ between backends.
    #[test]
    fn packed_prec_backends_agree((a, b) in gemm_strategy()) {
        let scalar = KernelDispatch::with_backend(Backend::Scalar);
        for precision in NARROW {
            let mut reference = DenseMatrix::default();
            matmul_packed_prec_with(scalar, precision, &a, &b, 1, &mut reference).unwrap();
            let mut c = DenseMatrix::default();
            for kd in backends() {
                for threads in [1usize, 4] {
                    matmul_packed_prec_with(kd, precision, &a, &b, threads, &mut c).unwrap();
                    prop_assert_eq!(c.shape(), reference.shape());
                    let tol = 1e-4 * (a.cols().max(1) as f32);
                    let diff = reference.max_abs_diff(&c);
                    prop_assert!(
                        diff < tol,
                        "{} backend {} threads {} diverged by {}",
                        precision, kd.backend().name(), threads, diff
                    );
                }
            }
        }
    }

    /// The quantized AXPY agrees across backends with a scalar decode →
    /// f32 AXPY reference, for every narrow precision and for widths
    /// covering F == 1 and ragged non-multiple-of-8 tails.
    #[test]
    fn axpy_quant_backends_agree_with_decoded_reference(
        alpha in -4.0f32..4.0,
        x in proptest::collection::vec(-2.0f32..2.0, 1..70),
        y_seed in -2.0f32..2.0,
    ) {
        let row = DenseMatrix::from_vec(1, x.len(), x.clone()).unwrap();
        let mut q = QuantMatrix::new();
        let mut decoded = DenseMatrix::default();
        for precision in NARROW {
            q.encode(&row, precision).unwrap();
            q.decode(&mut decoded);
            let mut expect = vec![y_seed; x.len()];
            for (yj, xj) in expect.iter_mut().zip(decoded.as_slice()) {
                *yj += alpha * *xj;
            }
            for kd in backends() {
                let mut y = vec![y_seed; x.len()];
                kd.axpy_quant(&mut y, alpha, q.row(0));
                for (j, (got, want)) in y.iter().zip(&expect).enumerate() {
                    prop_assert!(
                        (got - want).abs() < 1e-3,
                        "{} backend {} lane {} got {} want {}",
                        precision, kd.backend().name(), j, got, want
                    );
                }
            }
        }
    }
}

/// The non-finite edges are worth pinning exactly, outside the random
/// sweep: NaN quantizes to zero, infinities clamp to the grid ends, and
/// the float formats keep IEEE semantics.
#[test]
fn non_finite_edges_are_pinned() {
    assert_eq!(saturating_cast_i8(f32::NAN), 0);
    assert_eq!(saturating_cast_i8(f32::INFINITY), 127);
    assert_eq!(saturating_cast_i8(f32::NEG_INFINITY), -127);
    assert_eq!(saturating_cast_i8(3.0e38), 127);
    assert_eq!(saturating_cast_i8(-3.0e38), -127);

    assert_eq!(bf16_to_f32(f32_to_bf16(f32::INFINITY)), f32::INFINITY);
    assert_eq!(
        bf16_to_f32(f32_to_bf16(f32::NEG_INFINITY)),
        f32::NEG_INFINITY
    );
    assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());

    assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
    // f16 overflow saturates to ±inf (binary16 has no 1e6).
    assert_eq!(f16_to_f32(f32_to_f16(1.0e6)), f32::INFINITY);
    assert_eq!(f16_to_f32(f32_to_f16(-1.0e6)), f32::NEG_INFINITY);
    assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
}
