//! Tier-1 static-analysis gate: `cargo test` fails if the workspace does
//! not pass `cargo xtask lint --deny`.
//!
//! The gate shells out to the xtask binary (rather than linking the
//! library) so the test exercises exactly what CI and developers run, CLI
//! parsing included. Everything is offline: xtask has no dependencies
//! outside the workspace, and `$CARGO` builds it from the local source.

use std::path::Path;
use std::process::Command;

#[test]
fn workspace_passes_xtask_lint_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(env!("CARGO"))
        .args(["run", "-p", "xtask", "--quiet", "--", "lint", "--deny"])
        .current_dir(root)
        .output()
        .expect("spawning `cargo run -p xtask` succeeds");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "`cargo xtask lint --deny` failed (status {:?}).\n\
         Fix the violations below or waive them in-source with\n\
         `// lint:allow(<ID>): <reason>` (see DESIGN.md, \"Static analysis\").\n\
         --- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status.code()
    );
    // The summary line doubles as a sanity check that the linter actually
    // scanned the tree rather than exiting early on an empty file set.
    let summary = stdout
        .lines()
        .find(|l| l.starts_with("xtask lint:"))
        .unwrap_or_else(|| panic!("no summary line in output: {stdout}"));
    assert!(
        !summary.contains(" 0 file(s)"),
        "linter scanned zero files: {summary}"
    );
}
