//! End-to-end chaos suite: seeded fault injection through the whole stack.
//!
//! Every test arms the process-wide fault registry (`resilience::fault`)
//! with a deterministic seed and drives real work — GCN inference, parallel
//! SpMM through the thread pool, graph loading, the PIUMA simulator — while
//! panics, typed errors, and latency are injected at the named sites the
//! production code carries. The contract under test:
//!
//! * no panic escapes a resilient entry point (worker isolation + retry);
//! * retry-recovered results are **bitwise identical** to a fault-free run
//!   of the same code path (kernels fully overwrite their outputs);
//! * everything completes within a generous wall-clock budget (no retry
//!   loop or poisoned lock can deadlock the suite).
//!
//! Seeds come from `FAULT_SEED` / `FAULT_RATE` when set (the CI chaos
//! matrix) and default to eight fixed seeds at the paper-quoted p = 0.01
//! otherwise. References are computed under an armed-but-silent config
//! (rate 0) so no concurrently running test can inject into them: armed
//! regions are serialized process-wide.

use piuma_gcn::prelude::*;
use resilience::fault::{self, FaultConfig, FaultKind};
use resilience::guard::{RunGuard, RunOutcome};
use resilience::retry::{self, RetryPolicy};
use std::time::{Duration, Instant};

/// Seeds to sweep: the env seed alone when the CI matrix pins one,
/// otherwise eight fixed defaults.
fn seeds() -> Vec<u64> {
    match std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
    {
        Some(s) => vec![s],
        None => vec![1, 7, 13, 42, 97, 128, 255, 1234],
    }
}

/// Per-visit firing probability (env override, default p = 0.01).
fn rate() -> f64 {
    std::env::var("FAULT_RATE")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0.01)
}

/// Wall-clock ceiling for any single chaos scenario; hitting it means a
/// retry loop or lock recovery path livelocked.
const BUDGET: Duration = Duration::from_secs(60);

fn test_model() -> (Csr, GcnModel, DenseMatrix) {
    let g = Graph::rmat(&RmatConfig::power_law(8, 8), 2024);
    let a_hat = g.normalized_adjacency().unwrap();
    let model = GcnModel::new(&GcnConfig::paper_model(16, 32, 4), 7);
    let x = g.random_features(16, 5);
    (a_hat, model, x)
}

/// Fault-free reference through the *same* resilient code path, computed
/// under an armed-but-never-firing config so it holds the arm lock.
fn quiet_reference(
    a_hat: &Csr,
    model: &GcnModel,
    x: &DenseMatrix,
    strategy: SpmmStrategy,
) -> DenseMatrix {
    let _quiet = fault::arm(FaultConfig::new(0));
    let guard = RunGuard::unbounded();
    let mut ws = InferenceWorkspace::new();
    let run = model
        .infer_resilient_with(a_hat, x, strategy, &RetryPolicy::default(), &guard, &mut ws)
        .unwrap();
    assert!(run.is_complete());
    ws.output().clone()
}

#[test]
fn inference_under_error_injection_is_bitwise_correct_across_seeds() {
    let (a_hat, model, x) = test_model();
    let strategy = SpmmStrategy::Sequential;
    let reference = quiet_reference(&a_hat, &model, &x, strategy);
    let p = rate();

    for seed in seeds() {
        let started = Instant::now();
        let _armed = fault::arm(
            FaultConfig::new(seed)
                .point("gcn.layer", FaultKind::Error, p)
                .point("kernels.exec", FaultKind::Error, p),
        );
        let guard = RunGuard::with_budget(BUDGET);
        let mut ws = InferenceWorkspace::new();
        let run = model
            .infer_resilient_with(
                &a_hat,
                &x,
                strategy,
                &RetryPolicy::default(),
                &guard,
                &mut ws,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: inference failed: {e}"));
        assert!(run.is_complete(), "seed {seed}: {run:?}");
        assert_eq!(
            ws.output().as_slice(),
            reference.as_slice(),
            "seed {seed}: recovered result diverged from the fault-free run"
        );
        assert!(
            started.elapsed() < BUDGET,
            "seed {seed}: chaos run exceeded the wall-clock budget"
        );
    }
}

#[test]
fn inference_recovers_injected_panics_without_escaping() {
    let (a_hat, model, x) = test_model();
    let strategy = SpmmStrategy::Sequential;
    let reference = quiet_reference(&a_hat, &model, &x, strategy);
    let env_pinned = std::env::var("FAULT_SEED").is_ok();
    let mut injected_total = 0u64;

    for seed in seeds() {
        let _quiet = retry::quiet_panics();
        let _armed = fault::arm(FaultConfig::new(seed).point("gcn.layer", FaultKind::Panic, 0.3));
        let guard = RunGuard::with_budget(BUDGET);
        let mut ws = InferenceWorkspace::new();
        // Generous attempt budget: at p = 0.3 a rung of the chain must
        // still find a fault-free attempt with overwhelming probability.
        let policy = RetryPolicy::immediate(8);
        let run = model
            .infer_resilient_with(&a_hat, &x, strategy, &policy, &guard, &mut ws)
            .unwrap_or_else(|e| panic!("seed {seed}: panic escaped or chain exhausted: {e}"));
        assert!(run.is_complete(), "seed {seed}: {run:?}");
        assert_eq!(
            ws.output().as_slice(),
            reference.as_slice(),
            "seed {seed}: panic-recovered result diverged"
        );
        injected_total += fault::stats().total_injected();
    }
    // The default eight-seed sweep at p = 0.3 deterministically injects at
    // least one panic; a CI-pinned single seed may legitimately miss.
    if !env_pinned {
        assert!(
            injected_total > 0,
            "panic chaos never fired — the suite is not exercising recovery"
        );
    }
}

#[test]
fn parallel_spmm_survives_pool_worker_panics() {
    use kernels::resilient::run_resilient_into;
    let g = Graph::rmat(&RmatConfig::power_law(9, 8), 99);
    let a = g.adjacency().clone();
    let h = g.random_features(32, 13);
    let strategy = SpmmStrategy::VertexParallel { threads: 4 };

    let reference = {
        let _quiet = fault::arm(FaultConfig::new(0));
        let mut out = DenseMatrix::zeros(a.nrows(), h.cols());
        run_resilient_into(&a, &h, strategy, &RetryPolicy::default(), &mut out).unwrap();
        out
    };

    for seed in seeds() {
        let _quiet = retry::quiet_panics();
        let _armed = fault::arm(FaultConfig::new(seed).point("pool.share", FaultKind::Panic, 0.02));
        let started = Instant::now();
        let mut out = DenseMatrix::zeros(a.nrows(), h.cols());
        let report = run_resilient_into(&a, &h, strategy, &RetryPolicy::immediate(8), &mut out)
            .unwrap_or_else(|e| panic!("seed {seed}: parallel SpMM failed: {e}"));
        assert_eq!(
            out.as_slice(),
            reference.as_slice(),
            "seed {seed}: pool-recovered SpMM diverged (report: {report:?})"
        );
        assert!(started.elapsed() < BUDGET, "seed {seed}: over budget");
    }
}

#[test]
fn graph_loading_retries_through_injected_io_faults() {
    use graph::io::read_matrix_market;
    use std::io::Cursor;
    let text = "%%MatrixMarket matrix coordinate real general\n\
                4 4 5\n1 2 1.0\n2 3 2.0\n3 4 3.0\n4 1 4.0\n2 2 5.0\n";

    let reference = {
        let _quiet = fault::arm(FaultConfig::new(0));
        read_matrix_market(Cursor::new(text)).unwrap()
    };

    for seed in seeds() {
        let _armed = fault::arm(FaultConfig::new(seed).point("graph.io.", FaultKind::Error, 0.3));
        let outcome = retry::run(&RetryPolicy::immediate(8), || {
            read_matrix_market(Cursor::new(text))
        });
        let rec = outcome.unwrap_or_else(|e| panic!("seed {seed}: loader never recovered: {e}"));
        assert_eq!(rec.value.row_ptr(), reference.row_ptr(), "seed {seed}");
        assert_eq!(rec.value.col_idx(), reference.col_idx(), "seed {seed}");
        assert_eq!(rec.value.values(), reference.values(), "seed {seed}");
    }
}

#[test]
fn simulator_chaos_latency_does_not_change_simulated_time() {
    let g = Graph::rmat(&RmatConfig::uniform(7, 6), 5);
    let a = g.adjacency();
    let sim = SpmmSimulation::new(MachineConfig::single_core(), SpmmVariant::Dma);

    let reference = {
        let _quiet = fault::arm(FaultConfig::new(0));
        sim.run(a, 8).unwrap()
    };

    for seed in seeds() {
        // Host-side latency at the event-loop site: slows the wall clock,
        // must not perturb virtual time or traffic accounting.
        let _armed = fault::arm(
            FaultConfig::new(seed)
                .latency(Duration::from_micros(20))
                .point("sim.event", FaultKind::Latency, 0.001),
        );
        let guard = RunGuard::with_budget(BUDGET);
        let outcome = sim
            .run_guarded(a, 8, &guard)
            .unwrap_or_else(|e| panic!("seed {seed}: simulation failed: {e}"));
        match outcome {
            RunOutcome::Complete(r) => {
                assert_eq!(r.sim.total_ns, reference.sim.total_ns, "seed {seed}");
                assert_eq!(r.sim.bytes_read, reference.sim.bytes_read, "seed {seed}");
            }
            RunOutcome::Partial { reason, .. } => {
                panic!("seed {seed}: small sim blew the {BUDGET:?} budget ({reason:?})")
            }
        }
    }
}

#[test]
fn exhausted_injection_surfaces_typed_errors_not_panics() {
    // Rate 1.0 at the simulator entry: every attempt fails, so the caller
    // must see the typed error — never an abort or a poisoned lock.
    let _armed = fault::arm(FaultConfig::new(1).point("sim.run", FaultKind::Error, 1.0));
    let g = Graph::rmat(&RmatConfig::uniform(6, 4), 1);
    let err = SpmmSimulation::new(MachineConfig::single_core(), SpmmVariant::Dma)
        .run(g.adjacency(), 4)
        .unwrap_err();
    assert_eq!(format!("{err}"), "injected fault at `sim.run`");
}
