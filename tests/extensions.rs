//! Integration tests over the extension features: training, sampling,
//! graph I/O, random walks, and the design-space models working together.

use piuma_gcn::gcn::SamplingScheme;
use piuma_gcn::piuma_kernels::walk_sim::simulate_random_walks;
use piuma_gcn::platform_models::{DistributedXeonModel, HeterogeneousSoc};
use piuma_gcn::prelude::*;
use piuma_gcn::sparse::ops::{pagerank, spmv};

#[test]
fn trained_model_beats_untrained_on_held_out_vertices() {
    // Train on a third of a two-community graph, evaluate on the rest.
    // Labels follow the communities, so the aggregation helps rather than
    // fights the classifier.
    let n = 128usize;
    let half = n / 2;
    let mut edges = Vec::new();
    let mut state = 0x5EEDusize;
    let mut next = |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    for _ in 0..n * 3 {
        let (a, b) = (next(half), next(half));
        edges.push((a, b));
        edges.push((a + half, b + half));
    }
    edges.push((1, half + 1));
    let g = Graph::from_undirected_edges(n, &edges);
    let labels: Vec<usize> = (0..n).map(|v| usize::from(v >= half)).collect();
    let mut x = DenseMatrix::zeros(n, 6);
    for v in 0..n {
        let sign = if labels[v] == 1 { 1.0 } else { -1.0 };
        for j in 0..6 {
            x[(v, j)] = sign * 0.15 + ((v * 31 + j * 17) % 13) as f32 / 13.0 - 0.5;
        }
    }
    let mut task = NodeClassification::fully_labelled(labels.clone());
    for v in 0..n {
        task.train_mask[v] = v % 3 == 0;
    }

    let config = GcnConfig::paper_model(6, 12, 2);
    let untrained = GcnModel::new(&config, 9);
    let mut trained = untrained.clone();
    let mut trainer = Trainer::adam(0.02, SpmmStrategy::VertexParallel { threads: 4 });
    let stats = trainer.fit(&mut trained, &g, &x, &task, 40).unwrap();

    let accuracy = |m: &GcnModel| {
        let out = m.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
        (0..n)
            .filter(|&v| !task.train_mask[v])
            .filter(|&v| {
                let row = out.row(v);
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                pred == labels[v]
            })
            .count() as f64
            / (0..n).filter(|&v| !task.train_mask[v]).count() as f64
    };
    // An untrained model can land on 100% by luck (a random projection of
    // near-identical community embeddings is consistent per community), so
    // the meaningful checks are: training reduced the loss, and the trained
    // model generalizes to the unlabelled vertices.
    let after = accuracy(&trained);
    assert!(after > 0.85, "held-out accuracy {after:.2}");
    assert!(
        stats.last().unwrap().loss < stats.first().unwrap().loss * 0.8,
        "loss {:.3} -> {:.3}",
        stats.first().unwrap().loss,
        stats.last().unwrap().loss
    );
    let _ = accuracy(&untrained);
}

#[test]
fn sampled_inference_of_trained_model_matches_full_graph() {
    let g = Graph::rmat(&RmatConfig::power_law(8, 6), 5);
    let mut model = GcnModel::new(&GcnConfig::paper_model(8, 8, 3), 2);
    let x = g.random_features(8, 4);
    let labels: Vec<usize> = (0..g.vertices()).map(|v| v % 3).collect();
    let task = NodeClassification::fully_labelled(labels);
    Trainer::new(0.05, SpmmStrategy::Sequential)
        .fit(&mut model, &g, &x, &task, 3)
        .unwrap();

    let full = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
    let batch = [7usize, 99, 181];
    let sampled = model
        .infer_sampled(
            &g,
            &x,
            &batch,
            SamplingScheme::FullNeighborhood,
            SpmmStrategy::Sequential,
        )
        .unwrap();
    for (i, &v) in batch.iter().enumerate() {
        let diff = full
            .row(v)
            .iter()
            .zip(sampled.output.row(i))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 5e-4, "vertex {v} diverged by {diff}");
    }
}

#[test]
fn graph_io_round_trips_through_the_kernels() {
    use piuma_gcn::graph::io::{read_matrix_market, write_matrix_market};
    let g = OgbDataset::Arxiv.materialize_scaled(1 << 9, 7);
    let mut buf = Vec::new();
    write_matrix_market(g.adjacency(), &mut buf).unwrap();
    let back = read_matrix_market(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(&back, g.adjacency());

    // The re-read matrix must produce identical SpMM results.
    let x = g.random_features(8, 1);
    let a = SpmmStrategy::Sequential.run(g.adjacency(), &x).unwrap();
    let b = SpmmStrategy::Sequential.run(&back, &x).unwrap();
    assert_eq!(a, b);
}

#[test]
fn pagerank_is_uniform_on_doubly_regular_graphs() {
    // A circulant graph (v -> v+1..v+4 mod n) has regular in- AND
    // out-degree, so its walk matrix is doubly stochastic and the
    // stationary distribution is uniform.
    let n = 64usize;
    let edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|v| (1..=4).map(move |d| (v, (v + d) % n)))
        .collect();
    let g = Graph::from_directed_edges(n, &edges);
    let ranks = pagerank(g.adjacency(), 0.85, 60).unwrap();
    for &r in &ranks {
        assert!((r - 1.0 / n as f32).abs() < 2e-4, "rank {r}");
    }
    let y = spmv(g.adjacency(), &vec![1.0; n]).unwrap();
    assert!(y.iter().all(|&v| (v - 4.0).abs() < 1e-5));
}

#[test]
fn design_space_models_compose() {
    let s = OgbDataset::Mag.stats();
    let w = GcnWorkload::paper_model(s.vertices, s.edges, s.input_dim, 128, s.output_dim);

    // Heterogeneous SoC never loses to homogeneous at its own best split.
    let soc = HeterogeneousSoc::all_piuma(4);
    let (_, best) = soc.best_split(&w);
    assert!(best.total_ns() <= soc.gcn_times(&w).total_ns() + 1e-6);

    // MPI cluster efficiency stays below DGAS scaling.
    let mpi = DistributedXeonModel::cluster(8).parallel_efficiency(&w);
    assert!(mpi < 1.0);

    // Simulated random walks run on the same scaled twins.
    let a = OgbDataset::Mag
        .materialize_scaled(1 << 10, 2)
        .into_adjacency();
    let r = simulate_random_walks(&MachineConfig::node(2), &a, 64, 16).unwrap();
    assert!(r.msteps_per_second > 0.0);
}

#[test]
fn multi_node_simulation_runs_spmm_and_walks() {
    let a = OgbDataset::Products
        .materialize_scaled(1 << 10, 8)
        .into_adjacency();
    let cfg = MachineConfig::multi_node(2, 4);
    let spmm = SpmmSimulation::new(cfg.clone(), SpmmVariant::Dma)
        .run(&a, 32)
        .unwrap();
    assert!(spmm.gflops > 0.0);
    let walks = simulate_random_walks(&cfg, &a, 128, 32).unwrap();
    assert!(walks.sim.total_ns > 0.0);
}
