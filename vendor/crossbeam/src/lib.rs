//! Offline stub of the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::scope` (scoped threads). Since Rust
//! 1.63 the standard library ships `std::thread::scope`, so this stub
//! adapts the crossbeam API onto it: the closure receives a [`thread::Scope`]
//! handle whose `spawn` passes the scope back to the spawned closure
//! (crossbeam's signature), and the outer call returns `Err` instead of
//! unwinding when a spawned thread panics without being joined.

#![warn(missing_docs)]

pub use thread::scope;

/// Scoped-thread API, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result type of [`scope`]: `Err` carries a panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries a panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// allowing nested spawns (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing scoped threads can be
    /// spawned; blocks until all of them finish.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload if a spawned thread panicked
    /// (crossbeam semantics) instead of unwinding.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = crate::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_returns_value() {
        let x = 5;
        crate::scope(|s| {
            let h = s.spawn(|_| x * 2);
            assert_eq!(h.join().unwrap(), 10);
        })
        .unwrap();
    }

    #[test]
    fn unjoined_panic_is_an_error() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        crate::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
