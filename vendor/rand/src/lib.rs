//! Offline stub of the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the workspace vendors a minimal, API-compatible
//! subset of `rand 0.8` (wired up through `[patch.crates-io]`). It covers
//! exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`SeedableRng::seed_from_u64`),
//! * [`rngs::mock::StepRng`] — the arithmetic-sequence mock generator,
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! * [`Rng::gen`] for `f32`/`f64`/`u32`/`u64`/`bool`.
//!
//! The streams differ from upstream `rand` (different PRNG), but every use
//! in this workspace only relies on determinism-per-seed and uniformity,
//! not on bit-exact upstream streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform-range sampler (mirrors `rand::distributions::uniform::SampleUniform`).
///
/// Keeping this as a generic bound on the blanket range impls below — the
/// same shape upstream uses — is what lets type inference unify a range
/// literal like `-0.8..0.8` with the surrounding expression's float type.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every value is valid.
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = hi.wrapping_sub(lo) as $u as u64;
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}
int_sample_uniform!(
    usize => usize, u64 => u64, u32 => u32, u16 => u16, u8 => u8,
    isize => usize, i64 => u64, i32 => u32
);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// A mock generator returning an arithmetic sequence of `u64`s.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates a generator yielding `initial`, `initial + increment`, ...
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    step: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-0.25f32..=0.25);
            assert!((-0.25..=0.25).contains(&i));
        }
    }

    #[test]
    fn float_samples_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn step_rng_is_arithmetic() {
        let mut s = rngs::mock::StepRng::new(1, 7);
        assert_eq!(s.next_u64(), 1);
        assert_eq!(s.next_u64(), 8);
        assert_eq!(s.next_u64(), 15);
    }
}
