//! Offline stub of the `criterion` crate.
//!
//! Implements the subset of the criterion API used by this workspace's
//! benches: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`],
//! [`BenchmarkId::new`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each sample times a batch of iterations with
//! `Instant`; the batch size is calibrated so one sample takes roughly
//! `target_time / sample_size`. Median / min / max per-iteration times are
//! printed to stdout. No statistics beyond that, no HTML reports, no
//! comparison against saved baselines.
//!
//! [`bench_with_input`]: BenchmarkGroup::bench_with_input

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the closure under test; drives timed iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    target_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of a calibrated
    /// batch of iterations each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample slot?
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let slot = self.target_time / self.sample_size as u32;
        let iters = (slot.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.target_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            target_time: self.criterion.target_time,
        };
        f(&mut bencher);
        self.report(&id.id, &bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints a trailing newline for readability).
    pub fn finish(self) {
        println!();
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples collected", self.name, id);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "{}/{:<40} time: [{:>12?} {:>12?} {:>12?}]",
            self.name,
            id,
            sorted[0],
            median,
            sorted[sorted.len() - 1]
        );
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Much shorter than upstream's 5s: the stub is for smoke-level
            // comparisons, not statistically rigorous measurement.
            target_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {}", name);
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("stub");
        group.sample_size(2);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("noop", 3), &3usize, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(5).id, "5");
    }
}
