//! Offline stub of the `serde` crate.
//!
//! The build environment has no network access, and nothing in this
//! workspace actually serializes data (there is no `serde_json` or other
//! format crate anywhere in the dependency graph) — types merely derive
//! `Serialize` / `Deserialize` so that they are ready for a future wire
//! format. This stub therefore provides the two traits as empty markers
//! plus derive macros emitting empty impls, which is enough for every
//! `#[derive(Serialize, Deserialize)]` in the workspace to compile.
//!
//! If a real serialization format is ever added, replace the
//! `[patch.crates-io]` entries in the workspace `Cargo.toml` with the real
//! crates — no source change is needed.

#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
