//! No-op `Serialize` / `Deserialize` derive macros for the offline serde
//! stub. Each derive emits an empty trait impl (the stub traits have no
//! items), handling structs and enums with or without generic parameters.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stub `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "Serialize")
}

/// Derives the stub `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "Deserialize")
}

/// Parses `struct Name<...>` / `enum Name<...>` out of a derive input and
/// emits `impl<params> ::serde::Trait for Name<params> {}`.
fn empty_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({trait_name}): expected type name, found {other:?}"),
    };
    i += 1;

    // Collect generic parameter names (identifiers and lifetimes only; the
    // stub traits have no items, so bounds can be dropped).
    let mut params: Vec<String> = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut expect_param = true;
            let mut lifetime = false;
            while i < tokens.len() && depth > 0 {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                        lifetime = false;
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                        lifetime = true;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        let prefix = if lifetime { "'" } else { "" };
                        params.push(format!("{prefix}{id}"));
                        expect_param = false;
                        lifetime = false;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }

    let code = if params.is_empty() {
        format!("impl ::serde::{trait_name} for {name} {{}}")
    } else {
        let list = params.join(", ");
        format!("impl<{list}> ::serde::{trait_name} for {name}<{list}> {{}}")
    };
    code.parse().expect("generated impl must parse")
}
