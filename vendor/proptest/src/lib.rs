//! Offline stub of the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], the [`proptest!`] macro (with an
//! optional `#![proptest_config(...)]` header), and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from upstream: failing inputs are *not* shrunk (the failing
//! case's debug representation is reported as-is), and the RNG stream is a
//! deterministic xoshiro256++ seeded from the test name, so failures are
//! reproducible run-to-run.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Test-runner plumbing: RNG, config, and error types.
pub mod test_runner {
    use std::fmt;

    /// Deterministic RNG driving input generation (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds an RNG whose stream is a deterministic function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, then SplitMix64 expansion.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut next = move || {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw `u64`.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Error produced by a failing `prop_assert!`.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Number of cases to run per property and related knobs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `f` (retries up to a fixed budget).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut test_runner::TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut test_runner::TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut test_runner::TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
signed_range_strategy!(isize => usize, i64 => u64, i32 => u32);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::fmt;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: lengths drawn uniformly from `size`, elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.start, self.size.end.max(self.size.start + 1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let inputs = ($($crate::Strategy::generate(&($strat), &mut rng),)*);
                let inputs_repr = format!("{:?}", inputs);
                let ($($pat,)*) = inputs;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{} with inputs {}\n{}",
                        stringify!($name), case, config.cases, inputs_repr, e
                    );
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0usize..5, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn flat_map_dependent_generation(pair in (1usize..10).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = pair;
            prop_assert!(i < n, "i {} must stay below n {}", i, n);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let mut c = crate::test_runner::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
