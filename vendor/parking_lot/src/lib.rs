//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! Provides the poison-free `lock()` signatures of parking_lot on top of
//! the standard-library primitives: a poisoned std lock is recovered with
//! `into_inner`, matching parking_lot's behaviour of not poisoning.

#![warn(missing_docs)]

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: no poisoning
        assert_eq!(*m.lock(), 1);
    }
}
