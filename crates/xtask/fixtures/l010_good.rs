//! L010 good: both ends of the happens-before edge name the same
//! `PAIRS:` label, so the group has a release side and an acquire side.

use std::sync::atomic::{AtomicBool, Ordering};

/// Publishes the flag for `consume`.
pub fn publish(flag: &AtomicBool) {
    // PAIRS: fixture.flag (release half of the publish edge)
    flag.store(true, Ordering::Release);
}

/// Observes everything written before `publish`'s store.
pub fn consume(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire) // PAIRS: fixture.flag
}
