// L006 passing fixture: the Relaxed use carries a waiver whose reason is
// the memory-ordering argument.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Bumps a shared counter.
pub fn bump(c: &AtomicUsize) {
    // lint:allow(L006): standalone statistics counter — nothing is published through it, so no acquire/release pairing exists to preserve
    c.fetch_add(1, Ordering::Relaxed);
}
