// L004 passing fixture: the `*_into` kernel validates shapes through a
// configured helper before its first loop.

/// Doubles `src` into `dst`.
pub fn scale_into(src: &[f32], dst: &mut [f32]) {
    check("scale", src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = 2.0 * s;
    }
}

fn check(op: &str, a: usize, b: usize) {
    assert_eq!(a, b, "{op}: operand length mismatch");
}
