// L001 failing fixture: `unsafe` with no SAFETY rationale anywhere near it.

pub unsafe fn read_raw(p: *const u32) -> u32 {
    unsafe { *p }
}
