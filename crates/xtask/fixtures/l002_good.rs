// L002 passing fixture: parallel work goes through the persistent pool.

/// Runs `work` across the pool's workers.
pub fn run_parallel(threads: usize, work: impl Fn(usize) + Sync) {
    pool::global().broadcast(threads, threads, |tid| work(tid));
}
