// L006 failing fixture: `Ordering::Relaxed` outside the pool crate with
// no waiver stating the memory-ordering argument.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Bumps a shared counter.
pub fn bump(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::Relaxed);
}
