// L003 passing fixture: errors are returned, not panicked, and indexing
// is argued.
// BOUNDS: `xs` is checked non-empty before the only `[]` index below.

/// First element, or `None` on empty input.
pub fn first(xs: &[f32]) -> Option<f32> {
    if xs.is_empty() {
        return None;
    }
    Some(xs[0])
}
