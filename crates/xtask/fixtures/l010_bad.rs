//! L010 bad: acquire/release sites with no `PAIRS:` label, plus an
//! unexplained `SeqCst`.

use std::sync::atomic::{AtomicBool, Ordering};

/// Publishes the flag without naming its pairing site.
pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
}

/// Consumes with `SeqCst` for no stated reason.
pub fn consume(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst)
}
