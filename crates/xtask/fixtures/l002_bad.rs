// L002 failing fixture: raw thread creation outside the pool crate.

pub fn run_parallel() {
    let h = std::thread::spawn(|| {});
    let _ = h.join();
}
