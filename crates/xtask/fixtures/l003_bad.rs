// L003 failing fixture (linted under a hot-path pseudo-path): unwrap,
// panic-family macro, and unexplained direct indexing.

pub fn first(xs: &[f32]) -> f32 {
    if xs.len() > 4 {
        panic!("too long");
    }
    xs[0] + xs.last().copied().unwrap()
}
