// L005 failing fixture (linted under a hot-path pseudo-path): allocates
// on the steady-state path.

/// Builds a zeroed buffer of length `n`.
pub fn gather(n: usize) -> Vec<f32> {
    let mut out = Vec::new();
    out.resize(n, 0.0);
    out
}
