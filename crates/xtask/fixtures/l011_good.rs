//! L011 good: one global lock order (`a` before `b`), with poisoning
//! recovery routed through the counted `resilience::audit` helpers.

use std::sync::Mutex;

/// Takes `a` then `b`, recovering poisoned guards through the audit log.
pub fn forward(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = resilience::audit::recover("fixture.a", a);
    let gb = resilience::audit::recover("fixture.b", b);
    *ga + *gb
}

/// Same acquisition order as `forward`.
pub fn backward(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = resilience::audit::recover("fixture.a", a);
    let gb = resilience::audit::recover("fixture.b", b);
    *ga + *gb
}
