// L007 failing fixture: a plain-`pub` item in a docs-required crate with
// no doc comment.

pub fn undocumented() {}
