//! Hot entry point driving the L009 fixtures (linted under a hot-path
//! pseudo-path; the fixture under test sits one file away in the same
//! crate).

/// Hot kernel entry: calls one hop into the fixture under test.
pub fn hot_entry() {
    l009_helper_hop_one();
}
