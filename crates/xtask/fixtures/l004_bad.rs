// L004 failing fixture: a `pub fn *_into` kernel that loops over its
// operands without calling any dimension-check helper first.

/// Doubles `src` into `dst`.
pub fn scale_into(src: &[f32], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = 2.0 * s;
    }
}
