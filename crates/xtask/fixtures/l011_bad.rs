//! L011 bad: two functions acquire the same pair of locks in conflicting
//! orders (deadlock-capable cycle), and both use raw poisoned-lock
//! unwraps outside the audit helpers.

use std::sync::Mutex;

/// Takes `a` then `b`.
pub fn forward(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga + *gb
}

/// Takes `b` then `a` — cycles with `forward`.
pub fn backward(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let gb = b.lock().unwrap();
    let ga = a.lock().unwrap();
    *ga + *gb
}
