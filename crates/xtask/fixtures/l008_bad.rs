// L008 failing fixture (linted under a hot-path pseudo-path): a
// fault-injection site with no waiver arguing its disabled cost.

/// Accumulates `xs` into `acc`.
pub fn accumulate(xs: &[f32], acc: &mut f32) {
    resilience::fault_point!("fixture.accumulate");
    for x in xs {
        *acc += x;
    }
}
