//! L009 good: helpers reachable from the hot entry stay panic- and
//! allocation-free, so there is nothing to inherit.

/// First hop from the hot kernel.
pub fn l009_helper_hop_one() {
    l009_helper_hop_two(3);
}

/// Second hop: pure arithmetic.
pub fn l009_helper_hop_two(n: usize) -> usize {
    n.saturating_mul(2)
}
