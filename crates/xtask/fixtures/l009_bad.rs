//! L009 bad: an allocating, panicking helper two hops from a hot entry.
//! The file is not itself on the hot list — only reachable from it.

/// First hop from the hot kernel.
pub fn l009_helper_hop_one() {
    l009_helper_hop_two(3);
}

/// Second hop: allocates and unwraps — violations inherited through the
/// call graph.
pub fn l009_helper_hop_two(n: usize) {
    let v: Vec<usize> = (0..n).collect();
    v.first().unwrap();
}
