// L007 passing fixture: the public surface is documented; `pub(crate)`
// items need no docs.

/// Documented public function.
pub fn documented() {}

pub(crate) fn internal() {}
