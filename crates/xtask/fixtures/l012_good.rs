//! L012 good: the fault point precedes every exchange-buffer write, so
//! chaos injection provably covers the copy path.

/// Copies a row into the stage buffer behind a chaos-injection site.
pub fn gather(stage: &mut Block, src: &Block) {
    // lint:allow(L008): one relaxed load per exchange, off the inner loop
    resilience::fault_point!("fixture.exchange");
    stage.resize_for_overwrite(1, 4);
    stage.row_mut(0).copy_from_slice(src.row(0));
}
