//! L012 bad: exchange-buffer writes with no dominating fault-point site —
//! chaos testing can never exercise this copy path.

/// Copies a row into the stage buffer with no chaos-injection site.
pub fn gather(stage: &mut Block, src: &Block) {
    stage.resize_for_overwrite(1, 4);
    stage.row_mut(0).copy_from_slice(src.row(0));
}
