// L001 passing fixture: every `unsafe` boundary carries a SAFETY comment.

/// Reads a raw pointer.
// SAFETY: callers guarantee `p` is non-null, aligned, and live.
pub unsafe fn read_raw(p: *const u32) -> u32 {
    // SAFETY: caller upholds this fn's validity contract for `p`.
    unsafe { *p }
}
