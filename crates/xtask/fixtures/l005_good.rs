// L005 passing fixture: writes into caller-provided storage; nothing on
// this path allocates.

/// Accumulates `xs` into `out` element-wise.
pub fn accumulate(xs: &[f32], out: &mut [f32]) {
    for (o, x) in out.iter_mut().zip(xs) {
        *o += x;
    }
}
