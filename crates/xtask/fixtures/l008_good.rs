// L008 passing fixture: the fault-injection site carries a waiver
// stating why its disarmed cost is acceptable on this path.

/// Accumulates `xs` into `acc`.
pub fn accumulate(xs: &[f32], acc: &mut f32) {
    // lint:allow(L008): one relaxed load before the loop, not per element
    resilience::fault_point!("fixture.accumulate");
    for x in xs {
        *acc += x;
    }
}
