//! Fixture-based self-tests: every lint has one failing and one passing
//! fixture under `fixtures/`. Each fixture is linted under a *pseudo-path*
//! that places it in the lint's scope according to the real workspace
//! `lint.toml`, so these tests also pin the shipped configuration (e.g. if
//! `crates/kernels/src/spmm.rs` ever left the hot list, the L003/L005
//! fixtures would stop tripping and fail here).
//!
//! Global lints (L009–L012) run through the same harness via
//! [`xtask::lint_scanned`]; the L009 case adds a companion "hot driver"
//! file so the violation really is two call-graph hops away from the hot
//! entry point, in a different file.
//!
//! The fixtures directory itself is excluded from workspace scans both by
//! `lint.toml` (`[scan] skip`) and by the walker's hard skip list, so the
//! deliberately-bad files never pollute `cargo xtask lint`.

use std::path::{Path, PathBuf};
use xtask::lexer::SourceFile;
use xtask::lints::Diagnostic;
use xtask::Config;

/// Pseudo-path inside the hot list (`[hot] paths` in lint.toml).
const HOT: &str = "crates/kernels/src/spmm.rs";
/// Pseudo-path in a kernel crate: in scope for L004 (`[dim-check]`),
/// L007 (`[docs]`), and outside the spawn/relaxed allow-lists.
const KERNEL_SRC: &str = "crates/kernels/src/fixture.rs";
/// Pseudo-path inside the exchange list (`[exchange] paths`).
const EXCHANGE: &str = "crates/shard/src/exec.rs";

/// (lint ID, failing fixture, passing fixture, pseudo-path,
/// companion (fixture, pseudo-path) linted alongside both).
const CASES: &[(&str, &str, &str, &str, Option<(&str, &str)>)] = &[
    ("L001", "l001_bad.rs", "l001_good.rs", KERNEL_SRC, None),
    ("L002", "l002_bad.rs", "l002_good.rs", KERNEL_SRC, None),
    ("L003", "l003_bad.rs", "l003_good.rs", HOT, None),
    ("L004", "l004_bad.rs", "l004_good.rs", KERNEL_SRC, None),
    ("L005", "l005_bad.rs", "l005_good.rs", HOT, None),
    ("L006", "l006_bad.rs", "l006_good.rs", KERNEL_SRC, None),
    ("L007", "l007_bad.rs", "l007_good.rs", KERNEL_SRC, None),
    ("L008", "l008_bad.rs", "l008_good.rs", HOT, None),
    // The hot driver calls `l009_helper_hop_one`, putting the fixture's
    // violation two hops from the hot entry, across files.
    (
        "L009",
        "l009_bad.rs",
        "l009_good.rs",
        KERNEL_SRC,
        Some(("l009_hot.rs", HOT)),
    ),
    ("L010", "l010_bad.rs", "l010_good.rs", KERNEL_SRC, None),
    ("L011", "l011_bad.rs", "l011_good.rs", KERNEL_SRC, None),
    ("L012", "l012_bad.rs", "l012_good.rs", EXCHANGE, None),
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn workspace_config() -> Config {
    Config::load(&workspace_root()).expect("workspace lint.toml parses")
}

fn read_fixture(file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

fn lint_fixture(
    file: &str,
    pseudo_path: &str,
    companion: Option<(&str, &str)>,
    cfg: &Config,
) -> Vec<Diagnostic> {
    let mut files = vec![(
        pseudo_path.to_string(),
        SourceFile::scan(&read_fixture(file)),
    )];
    if let Some((cf, cp)) = companion {
        files.push((cp.to_string(), SourceFile::scan(&read_fixture(cf))));
    }
    xtask::lint_scanned(&files, cfg).diagnostics
}

#[test]
fn every_lint_has_a_case() {
    let seen: Vec<&str> = CASES.iter().map(|c| c.0).collect();
    for info in xtask::LINTS {
        assert!(seen.contains(&info.id), "no fixture case for {}", info.id);
    }
}

#[test]
fn failing_fixtures_trip_their_lint() {
    let cfg = workspace_config();
    for (lint, bad, _, pseudo, companion) in CASES {
        let diags = lint_fixture(bad, pseudo, *companion, &cfg);
        let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.lint == *lint).collect();
        assert!(
            !hits.is_empty(),
            "{bad} (as {pseudo}) should trip {lint}; got only {diags:?}"
        );
        for d in hits {
            assert!(
                d.line > 0,
                "{lint} diagnostic has no line attribution: {d:?}"
            );
            assert_eq!(d.file, *pseudo);
        }
    }
}

#[test]
fn passing_fixtures_are_clean_for_their_lint() {
    let cfg = workspace_config();
    for (lint, _, good, pseudo, companion) in CASES {
        let diags = lint_fixture(good, pseudo, *companion, &cfg);
        let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.lint == *lint).collect();
        assert!(
            hits.is_empty(),
            "{good} (as {pseudo}) should be clean for {lint}; got {hits:?}"
        );
        // Waiver-carrying fixtures must not leak L000 (malformed/unused
        // waiver) diagnostics either.
        assert!(
            !diags.iter().any(|d| d.lint == "L000"),
            "{good} has waiver problems: {diags:?}"
        );
    }
}

#[test]
fn l009_violation_is_two_hops_from_the_hot_entry() {
    // Pin the acceptance-criterion shape: the flagged line is in a file
    // that is NOT on the hot list, and the witness chain names both hops.
    let cfg = workspace_config();
    assert!(!Config::path_in(KERNEL_SRC, &cfg.hot_paths));
    let diags = lint_fixture("l009_bad.rs", KERNEL_SRC, Some(("l009_hot.rs", HOT)), &cfg);
    let hit = diags
        .iter()
        .find(|d| d.lint == "L009" && d.message.contains(".unwrap()"))
        .expect("allocating/unwrapping helper two hops out must be flagged");
    assert!(
        hit.message
            .contains("hot_entry -> l009_helper_hop_one -> l009_helper_hop_two"),
        "witness chain missing: {}",
        hit.message
    );
}

#[test]
fn fixtures_are_excluded_from_workspace_scans() {
    let cfg = workspace_config();
    let files = xtask::collect_files(&workspace_root(), &cfg);
    for f in &files {
        let rel = xtask::rel_str(f, &workspace_root());
        assert!(
            !rel.contains("xtask/fixtures"),
            "fixture {rel} leaked into the workspace scan"
        );
    }
}

// --- lexer regression fixtures ---------------------------------------------
// Edge cases found while building the symbol resolver: these pin the
// lexer/resolver behavior on syntax that once confused lexical scanning.

#[test]
fn lexer_raw_strings_with_many_hashes_do_not_swallow_code() {
    let src = "fn f() {\n    let s = r###\"quote \"## inside\"###;\n    x.unwrap();\n}\n";
    let sf = SourceFile::scan(src);
    // The raw string's body is scrubbed; the unwrap after it is still code.
    assert!(!sf.code(1).contains("inside"));
    assert!(sf.code(2).contains(".unwrap()"));
    // An unterminated-looking prefix with fewer closing hashes must not
    // terminate early.
    let tricky = "fn f() {\n    let s = r##\"one \"# two\"##;\n    y.unwrap();\n}\n";
    let sf = SourceFile::scan(tricky);
    assert!(sf.code(2).contains(".unwrap()"));
}

#[test]
fn lexer_raw_identifiers_are_code_not_strings() {
    let src = "fn r#match(r#type: u32) -> u32 {\n    r#type + 1\n}\n";
    let sf = SourceFile::scan(src);
    // `r#match` must not be mistaken for a raw-string start: the fn body
    // stays visible as code.
    assert!(sf.code(1).contains("+ 1"), "{:?}", sf.code_lines);
    // And the resolver normalizes the identifier.
    let files = vec![("crates/a/src/x.rs".to_string(), sf)];
    let ws = xtask::symbols::Workspace::build(&files);
    assert!(ws.fns().iter().any(|f| f.name == "match"));
}

#[test]
fn resolver_distinguishes_turbofish_from_comparison() {
    let src = "fn f() -> usize {\n    let v = parse::<Vec<Option<u32>>>(s);\n    if a < b { g(); }\n    v.len()\n}\nfn g() {}\nfn parse(s: &str) -> usize { s.len() }\n";
    let files = vec![("crates/a/src/x.rs".to_string(), SourceFile::scan(src))];
    let ws = xtask::symbols::Workspace::build(&files);
    let f = ws
        .fns()
        .iter()
        .find(|d| d.name == "f")
        .expect("fn f collected");
    // The nested-turbofish call resolves to `parse`; the `<` comparison
    // does not hide the call to `g`.
    let names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
    assert!(names.contains(&"parse"), "{names:?}");
    assert!(names.contains(&"g"), "{names:?}");
}
