//! Fixture-based self-tests: every lint has one failing and one passing
//! fixture under `fixtures/`. Each fixture is linted under a *pseudo-path*
//! that places it in the lint's scope according to the real workspace
//! `lint.toml`, so these tests also pin the shipped configuration (e.g. if
//! `crates/kernels/src/spmm.rs` ever left the hot list, the L003/L005
//! fixtures would stop tripping and fail here).
//!
//! The fixtures directory itself is excluded from workspace scans both by
//! `lint.toml` (`[scan] skip`) and by the walker's hard skip list, so the
//! deliberately-bad files never pollute `cargo xtask lint`.

use std::path::{Path, PathBuf};
use xtask::lexer::SourceFile;
use xtask::lints::{lint_file, Diagnostic};
use xtask::Config;

/// Pseudo-path inside the hot list (`[hot] paths` in lint.toml).
const HOT: &str = "crates/kernels/src/spmm.rs";
/// Pseudo-path in a kernel crate: in scope for L004 (`[dim-check]`),
/// L007 (`[docs]`), and outside the spawn/relaxed allow-lists.
const KERNEL_SRC: &str = "crates/kernels/src/fixture.rs";

/// (lint ID, failing fixture, passing fixture, pseudo-path).
const CASES: &[(&str, &str, &str, &str)] = &[
    ("L001", "l001_bad.rs", "l001_good.rs", KERNEL_SRC),
    ("L002", "l002_bad.rs", "l002_good.rs", KERNEL_SRC),
    ("L003", "l003_bad.rs", "l003_good.rs", HOT),
    ("L004", "l004_bad.rs", "l004_good.rs", KERNEL_SRC),
    ("L005", "l005_bad.rs", "l005_good.rs", HOT),
    ("L006", "l006_bad.rs", "l006_good.rs", KERNEL_SRC),
    ("L007", "l007_bad.rs", "l007_good.rs", KERNEL_SRC),
    ("L008", "l008_bad.rs", "l008_good.rs", HOT),
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn workspace_config() -> Config {
    Config::load(&workspace_root()).expect("workspace lint.toml parses")
}

fn lint_fixture(file: &str, pseudo_path: &str, cfg: &Config) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(file);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    lint_file(pseudo_path, &SourceFile::scan(&text), cfg)
}

#[test]
fn every_lint_has_a_case() {
    let seen: Vec<&str> = CASES.iter().map(|c| c.0).collect();
    for info in xtask::LINTS {
        assert!(seen.contains(&info.id), "no fixture case for {}", info.id);
    }
}

#[test]
fn failing_fixtures_trip_their_lint() {
    let cfg = workspace_config();
    for (lint, bad, _, pseudo) in CASES {
        let diags = lint_fixture(bad, pseudo, &cfg);
        let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.lint == *lint).collect();
        assert!(
            !hits.is_empty(),
            "{bad} (as {pseudo}) should trip {lint}; got only {diags:?}"
        );
        for d in hits {
            assert!(
                d.line > 0,
                "{lint} diagnostic has no line attribution: {d:?}"
            );
            assert_eq!(d.file, *pseudo);
        }
    }
}

#[test]
fn passing_fixtures_are_clean_for_their_lint() {
    let cfg = workspace_config();
    for (lint, _, good, pseudo) in CASES {
        let diags = lint_fixture(good, pseudo, &cfg);
        let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.lint == *lint).collect();
        assert!(
            hits.is_empty(),
            "{good} (as {pseudo}) should be clean for {lint}; got {hits:?}"
        );
        // Waiver-carrying fixtures must not leak L000 (malformed/unused
        // waiver) diagnostics either.
        assert!(
            !diags.iter().any(|d| d.lint == "L000"),
            "{good} has waiver problems: {diags:?}"
        );
    }
}

#[test]
fn fixtures_are_excluded_from_workspace_scans() {
    let cfg = workspace_config();
    let files = xtask::collect_files(&workspace_root(), &cfg);
    for f in &files {
        let rel = xtask::rel_str(f, &workspace_root());
        assert!(
            !rel.contains("xtask/fixtures"),
            "fixture {rel} leaked into the workspace scan"
        );
    }
}
