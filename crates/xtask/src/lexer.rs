//! A minimal, comment/string/raw-string-aware Rust tokenizer.
//!
//! The lints in this crate are lexical: they pattern-match source text. A
//! naive `grep` would fire on `panic!` inside a doc comment or miss a
//! `SAFETY:` comment entirely, so every file is first *scrubbed*: comment
//! and literal contents are replaced by spaces while line structure is
//! preserved. Lints then match against the scrubbed text (`code`) and
//! consult the per-line comment text (`line_comments`) for waivers and
//! `SAFETY:` / `BOUNDS:` rationales.
//!
//! Handled constructs (exercised by the unit tests below):
//!
//! * line comments `//`, doc comments `///` and `//!`
//! * block comments `/* .. */`, **nested** to arbitrary depth
//! * string literals with escapes (`"a \" b"`), byte strings `b"…"`
//! * raw strings `r"…"`, `r#"…"#`, … with any number of `#`s (and `br#"…"#`)
//! * char and byte-char literals, including `'"'`, `'\''` and `'/'`
//! * lifetimes (`&'a str` is **not** a char literal)
//! * `#[cfg(test)]` / `#[test]` regions, so hot-path lints can exempt
//!   test-only code

/// One scanned source file: raw text plus derived lexical views.
#[derive(Debug)]
pub struct SourceFile {
    /// The raw file contents.
    pub raw: String,
    /// Raw split into lines (without terminators), 0-indexed.
    pub raw_lines: Vec<String>,
    /// Scrubbed lines: comments and literal contents blanked with spaces,
    /// code and literal delimiters preserved. Same line count as `raw_lines`.
    pub code_lines: Vec<String>,
    /// Comment text that appears on each line (content only, markers
    /// stripped; multi-line block comments contribute to every line they
    /// span). Same length as `raw_lines`.
    pub line_comments: Vec<String>,
    /// Whether each line sits inside a `#[cfg(test)]` or `#[test]` item.
    pub test_lines: Vec<bool>,
}

/// Lexer state while scanning a file.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    /// Block comment with nesting depth.
    BlockComment(u32),
    /// String literal; `true` once a backslash escape is pending.
    Str {
        escaped: bool,
    },
    /// Raw string terminated by `"` followed by this many `#`s.
    RawStr {
        hashes: u32,
    },
    /// Char literal; `true` once a backslash escape is pending.
    CharLit {
        escaped: bool,
    },
}

impl SourceFile {
    /// Scans `raw` into its lexical views.
    pub fn scan(raw: &str) -> SourceFile {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::with_capacity(256);
        let mut comments_per_line: Vec<String> = Vec::new();
        let mut cur_comment_line = String::new();

        let mut mode = Mode::Code;
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c == '\n' {
                // Line comments end at the newline; everything else carries
                // over. Newlines always survive into the scrubbed text.
                if mode == Mode::LineComment {
                    mode = Mode::Code;
                }
                code.push('\n');
                comments_per_line.push(std::mem::take(&mut cur_comment_line));
                i += 1;
                continue;
            }
            match mode {
                Mode::Code => {
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        mode = Mode::LineComment;
                        code.push_str("  ");
                        i += 2;
                        // Skip doc/inner-doc markers so comment text starts
                        // at the content.
                        while matches!(chars.get(i), Some('/') | Some('!')) {
                            code.push(' ');
                            i += 1;
                        }
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if let Some(hashes) = raw_string_start(&chars, i) {
                        // Skip the prefix (b? r #* ") keeping delimiters as
                        // spaces; content scrubbing happens in RawStr mode.
                        let prefix = (chars[i] == 'b') as usize + 1 + hashes as usize + 1;
                        for _ in 0..prefix {
                            code.push(' ');
                        }
                        i += prefix;
                        mode = Mode::RawStr { hashes };
                        continue;
                    }
                    if c == '"' {
                        code.push('"');
                        mode = Mode::Str { escaped: false };
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        // Disambiguate char literal vs lifetime: an escape or
                        // a closing quote two chars ahead means a literal.
                        let is_char = matches!(
                            (chars.get(i + 1), chars.get(i + 2)),
                            (Some('\\'), _) | (Some(_), Some('\''))
                        );
                        if is_char {
                            code.push('\'');
                            mode = Mode::CharLit { escaped: false };
                        } else {
                            code.push('\''); // lifetime quote: plain code
                        }
                        i += 1;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                }
                Mode::LineComment => {
                    comment.push(c);
                    cur_comment_line.push(c);
                    code.push(' ');
                    i += 1;
                }
                Mode::BlockComment(depth) => {
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else if c == '*' && next == Some('/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::BlockComment(depth - 1)
                        };
                        code.push_str("  ");
                        i += 2;
                    } else {
                        comment.push(c);
                        cur_comment_line.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Str { escaped } => {
                    if escaped {
                        mode = Mode::Str { escaped: false };
                        code.push(' ');
                    } else if c == '\\' {
                        mode = Mode::Str { escaped: true };
                        code.push(' ');
                    } else if c == '"' {
                        mode = Mode::Code;
                        code.push('"');
                    } else {
                        code.push(' ');
                    }
                    i += 1;
                }
                Mode::RawStr { hashes } => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        for _ in 0..=hashes as usize {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::CharLit { escaped } => {
                    if escaped {
                        mode = Mode::CharLit { escaped: false };
                        code.push(' ');
                    } else if c == '\\' {
                        mode = Mode::CharLit { escaped: true };
                        code.push(' ');
                    } else if c == '\'' {
                        mode = Mode::Code;
                        code.push('\'');
                    } else {
                        code.push(' ');
                    }
                    i += 1;
                }
            }
        }
        comments_per_line.push(cur_comment_line);

        let raw_lines: Vec<String> = raw.lines().map(str::to_string).collect();
        let mut code_lines: Vec<String> = code.lines().map(str::to_string).collect();
        // `lines()` drops a trailing empty segment differently than our
        // per-line comment accounting; normalize all views to equal length.
        let nlines = raw_lines.len();
        code_lines.resize(nlines, String::new());
        comments_per_line.resize(nlines, String::new());

        let test_lines = mark_test_regions(&code_lines);
        SourceFile {
            raw: raw.to_string(),
            raw_lines,
            code_lines,
            line_comments: comments_per_line,
            test_lines,
        }
    }

    /// Number of lines in the file.
    pub fn nlines(&self) -> usize {
        self.raw_lines.len()
    }

    /// Scrubbed code of 0-indexed `line` (empty if out of range).
    pub fn code(&self, line: usize) -> &str {
        self.code_lines.get(line).map_or("", |s| s.as_str())
    }

    /// True when the line holds no code: blank, or comment-only.
    pub fn is_comment_or_blank(&self, line: usize) -> bool {
        self.code(line).trim().is_empty()
    }
}

/// Does a raw-string literal (`r"`, `r#"`, `br##"` …) start at `i`?
/// Returns the number of `#`s if so.
fn raw_string_start(chars: &[char], i: usize) -> Option<u32> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    // `r` must not be the tail of an identifier (`for"x"` is not valid
    // Rust, but `var"` would misfire without this guard).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Does the `"` at `i` close a raw string expecting `hashes` trailing `#`s?
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|d| chars.get(i + d) == Some(&'#'))
}

/// Marks every line covered by a `#[cfg(test)]` or `#[test]` item.
///
/// From each attribute, the gated item extends to the matching `}` of the
/// first `{` that follows — or to the first `;` if one appears before any
/// brace (an attribute on a `use` or statement).
fn mark_test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut test = vec![false; code_lines.len()];
    for (start, line) in code_lines.iter().enumerate() {
        if !(line.contains("#[cfg(test)]")
            || line.contains("# [cfg (test)]")
            || line.contains("#[test]"))
        {
            continue;
        }
        let mut depth = 0i32;
        let mut entered = false;
        'scan: for (l, scan_line) in code_lines.iter().enumerate().skip(start) {
            // On the attribute line itself, only look after the attribute.
            let text: &str = if l == start {
                let at = scan_line.find("#[").unwrap_or(0);
                let after = scan_line[at..]
                    .find(']')
                    .map_or(scan_line.len(), |p| at + p + 1);
                &scan_line[after..]
            } else {
                scan_line
            };
            for c in text.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth <= 0 {
                            for t in test.iter_mut().take(l + 1).skip(start) {
                                *t = true;
                            }
                            break 'scan;
                        }
                    }
                    ';' if !entered => {
                        // Brace-less gated item (e.g. `#[cfg(test)] use …;`).
                        for t in test.iter_mut().take(l + 1).skip(start) {
                            *t = true;
                        }
                        break 'scan;
                    }
                    _ => {}
                }
            }
        }
    }
    test
}

/// Returns 0-indexed lines on which `pattern` occurs in scrubbed code with
/// word-ish boundaries: the character before must not be an identifier
/// character (so `unsafe_code` does not match `unsafe`), and when
/// `boundary_after` is set the character after must not be one either.
pub fn code_match_lines(sf: &SourceFile, pattern: &str, boundary_after: bool) -> Vec<usize> {
    let mut lines = Vec::new();
    for (l, code) in sf.code_lines.iter().enumerate() {
        if find_boundary(code, pattern, boundary_after).is_some() {
            lines.push(l);
        }
    }
    lines
}

/// First boundary-respecting occurrence of `pattern` in `s` (byte offset).
pub fn find_boundary(s: &str, pattern: &str, boundary_after: bool) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = s[from..].find(pattern) {
        let at = from + rel;
        let before_ok = at == 0
            || !s[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + pattern.len();
        let after_ok = !boundary_after
            || !s[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + pattern.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> SourceFile {
        SourceFile::scan(src)
    }

    #[test]
    fn line_comments_are_scrubbed_but_captured() {
        let sf = scan("let x = 1; // SAFETY: not really code panic!()\nlet y = 2;\n");
        assert!(!sf.code(0).contains("panic!"));
        assert!(sf.code(0).contains("let x = 1;"));
        assert!(sf.line_comments[0].contains("SAFETY: not really code"));
        assert!(sf.line_comments[1].is_empty());
    }

    #[test]
    fn nested_block_comments_scrub_to_the_outer_close() {
        let src = "a /* outer /* inner */ still comment */ b\nc\n";
        let sf = scan(src);
        assert!(sf.code(0).contains('a'));
        assert!(sf.code(0).contains('b'));
        assert!(!sf.code(0).contains("inner"));
        assert!(!sf.code(0).contains("still"));
        assert!(sf.line_comments[0].contains("inner"));
        assert_eq!(sf.code(1).trim(), "c");
    }

    #[test]
    fn multi_line_block_comment_marks_every_line() {
        let src = "code();\n/* one\n   two unwrap()\n   three */ tail();\n";
        let sf = scan(src);
        assert!(sf.code(2).trim().is_empty(), "comment interior is scrubbed");
        assert!(sf.code(3).contains("tail()"));
        assert!(sf.line_comments[2].contains("unwrap"));
    }

    #[test]
    fn string_contents_are_scrubbed_including_escaped_quotes() {
        let src = r#"let s = "panic! \" unwrap() // not a comment"; real();"#;
        let sf = scan(src);
        assert!(!sf.code(0).contains("panic!"));
        assert!(!sf.code(0).contains("unwrap"));
        assert!(sf.code(0).contains("real();"));
        assert!(
            sf.line_comments[0].is_empty(),
            "// inside a string is not a comment"
        );
    }

    #[test]
    fn raw_strings_with_hashes_are_scrubbed_to_their_true_end() {
        let src = "let s = r#\"contains \" quote and panic!\"# ; after();\n";
        let sf = scan(src);
        assert!(!sf.code(0).contains("panic!"));
        assert!(sf.code(0).contains("after();"));

        // Two hashes: a `"#` inside does NOT terminate.
        let src2 = "let s = r##\"inner \"# still panic!\"## ; tail();\n";
        let sf2 = scan(src2);
        assert!(!sf2.code(0).contains("panic!"));
        assert!(sf2.code(0).contains("tail();"));
    }

    #[test]
    fn char_literals_with_quote_and_slashes_do_not_derail_the_lexer() {
        let src = "let q = '\"'; let s = '/'; let e = '\\''; live();\n// comment\n";
        let sf = scan(src);
        assert!(sf.code(0).contains("live();"));
        assert!(sf.line_comments[0].is_empty());
        assert!(sf.line_comments[1].contains("comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // tail\n";
        let sf = scan(src);
        assert!(sf.code(0).contains("{ x }"));
        assert!(sf.line_comments[0].contains("tail"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_scrubbed() {
        let src = "let a = b\"panic!\"; let b = br#\"unwrap()\"#; go();\n";
        let sf = scan(src);
        assert!(!sf.code(0).contains("panic!"));
        assert!(!sf.code(0).contains("unwrap"));
        assert!(sf.code(0).contains("go();"));
    }

    #[test]
    fn cfg_test_module_lines_are_marked() {
        let src = "fn prod() { x[0]; }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let sf = scan(src);
        assert!(!sf.test_lines[0]);
        assert!(sf.test_lines[1]);
        assert!(sf.test_lines[2]);
        assert!(sf.test_lines[3]);
        assert!(sf.test_lines[4]);
        assert!(!sf.test_lines[5]);
    }

    #[test]
    fn test_attribute_on_fn_marks_only_that_fn() {
        let src = "#[test]\nfn t() {\n    a.unwrap();\n}\nfn prod() {}\n";
        let sf = scan(src);
        assert!(sf.test_lines[0] && sf.test_lines[1] && sf.test_lines[2] && sf.test_lines[3]);
        assert!(!sf.test_lines[4]);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn prod() {}\n";
        let sf = scan(src);
        assert!(sf.test_lines[0] && sf.test_lines[1]);
        assert!(!sf.test_lines[2]);
    }

    #[test]
    fn boundary_matching_rejects_identifier_tails() {
        let sf = scan("#![forbid(unsafe_code)]\nunsafe { x }\n");
        let hits = code_match_lines(&sf, "unsafe", true);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// panic! in docs\npub fn f() {}\n//! module docs unwrap()\n";
        let sf = scan(src);
        assert!(!sf.code(0).contains("panic!"));
        assert!(sf.line_comments[0].contains("panic! in docs"));
        assert!(!sf.code(2).contains("unwrap"));
    }
}
