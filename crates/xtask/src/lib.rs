//! Workspace-internal static analysis (`cargo xtask lint`).
//!
//! The workspace's load-bearing invariants — every parallel kernel runs on
//! the persistent pool, steady-state hot paths neither allocate nor panic,
//! `unsafe` stays confined and argued — were established by PRs 1–2 as
//! *convention*. This crate makes them machine-checked: a small
//! comment/string/raw-string-aware tokenizer ([`lexer`]), a suite of
//! repo-specific lints (per-file [`lints`] `L001`–`L008` plus the
//! call-graph-aware concurrency lints [`global`] `L009`–`L012`, built on
//! the [`symbols`] resolver), per-crate scoping via `lint.toml`
//! ([`config`]), and inline waivers (`// lint:allow(<ID>): <reason>`)
//! whose reasons are mandatory.
//!
//! Three enforcement points share this library:
//!
//! 1. `cargo run -p xtask -- lint --deny` (aliased `cargo xtask lint`),
//! 2. the tier-1 `tests/lint_gate.rs` integration test, which shells out to
//!    the same binary so `cargo test` enforces the invariants offline,
//! 3. the `static-analysis` CI job.
//!
//! No external parser is used: the environment is offline and `syn` is not
//! vendored, so the tokenizer recognizes exactly the lexical structure the
//! lints need (comments, strings, raw strings, char literals, `cfg(test)`
//! regions) and nothing more.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod global;
pub mod lexer;
pub mod lints;
pub mod symbols;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use lints::{known_lint, Diagnostic, LINTS};

/// Result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived findings (including `L000` waiver problems), sorted by
    /// file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
    /// Total waivers honored across the file set.
    pub waived: usize,
}

/// Directories never descended into, regardless of configuration.
const ALWAYS_SKIP: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Collects the workspace-relative `.rs` files to lint under `root`.
pub fn collect_files(root: &Path, cfg: &Config) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for scan_root in &cfg.scan_roots {
        walk(&root.join(scan_root), root, cfg, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel = rel_str(&path, root);
        if path.is_dir() {
            if ALWAYS_SKIP.contains(&name) || Config::path_in(&rel, &cfg.scan_skip) {
                continue;
            }
            walk(&path, root, cfg, out);
        } else if name.ends_with(".rs") && !Config::path_in(&rel, &cfg.scan_skip) {
            out.push(path);
        }
    }
}

/// Workspace-relative, `/`-separated form of `path`.
pub fn rel_str(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints every file in `files` (absolute paths) against `cfg`.
pub fn run(root: &Path, files: &[PathBuf], cfg: &Config) -> Report {
    let mut scanned: Vec<(String, lexer::SourceFile)> = Vec::new();
    for path in files {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        scanned.push((rel_str(path, root), lexer::SourceFile::scan(&text)));
    }
    let mut ws = symbols::Workspace::build(&scanned);
    // Dependency-aware resolution: a name collision must not edge a crate
    // into one it does not link against.
    ws.set_crate_deps(symbols::load_crate_deps(root));
    lint_scanned_with(&scanned, &ws, cfg)
}

/// Two-pass lint over an already-scanned file set: a workspace pass
/// (symbol table + call graph + `L009`–`L012`) followed by the per-file
/// lints, with waivers applied to the merged findings. Exposed so fixture
/// tests can exercise the global lints on in-memory multi-file sets.
pub fn lint_scanned(files: &[(String, lexer::SourceFile)], cfg: &Config) -> Report {
    lint_scanned_with(files, &symbols::Workspace::build(files), cfg)
}

fn lint_scanned_with(
    files: &[(String, lexer::SourceFile)],
    ws: &symbols::Workspace,
    cfg: &Config,
) -> Report {
    let mut global_diags = global::lint_globals(files, ws, cfg);
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    for (rel, sf) in files {
        let extra = global_diags.remove(rel).unwrap_or_default();
        let before = count_raw(rel, sf, cfg, &extra);
        let diags = lints::lint_file_with(rel, sf, cfg, extra);
        // Waived = findings the raw lints produced minus what survived
        // (excluding L000 meta-diagnostics, which waivers never cover).
        let survived = diags.iter().filter(|d| d.lint != "L000").count();
        report.waived += before.saturating_sub(survived);
        report.diagnostics.extend(diags);
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    report
}

/// Raw (pre-waiver) finding count for a file, used for the waived tally.
fn count_raw(rel: &str, sf: &lexer::SourceFile, cfg: &Config, extra: &[Diagnostic]) -> usize {
    // Re-running the lints without waivers would duplicate logic; instead,
    // lint_file is the only entry point and we recover the raw count from a
    // waiver-stripped variant of the source. (Global findings don't depend
    // on waiver text — the strip only rewrites comment content — so the
    // same `extra` set applies to the stripped variant.)
    let stripped = lints::lint_file_with(
        rel,
        &lexer::SourceFile::scan(&sf.raw.replace("lint:allow", "lint-stripped")),
        cfg,
        extra.to_vec(),
    );
    stripped.iter().filter(|d| d.lint != "L000").count()
}

/// Convenience: load config, collect files, lint the whole workspace.
pub fn lint_workspace(root: &Path) -> Result<Report, config::ConfigError> {
    let cfg = Config::load(root)?;
    let files = collect_files(root, &cfg);
    Ok(run(root, &files, &cfg))
}
