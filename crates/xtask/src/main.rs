//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo xtask lint               # report violations, exit 1 if any
//! cargo xtask lint --deny        # also fail on warnings (CI mode)
//! cargo xtask lint path/a.rs …   # lint a subset of files
//! cargo xtask lint --explain     # print the lint catalog
//! cargo xtask lint --waivers     # list every honored waiver with its reason
//! cargo xtask lint --json        # machine-readable report on stdout
//! cargo xtask lint --format github  # ::error annotations for GitHub CI
//! ```

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::{collect_files, lints, rel_str, Config};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_cmd(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask lint [--deny] [--quiet] [--explain] [--waivers] [files…]"
            );
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // The xtask manifest lives at <root>/crates/xtask; walking up from the
    // compile-time manifest dir is robust to the caller's CWD.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Output format for the lint report.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Github,
}

fn lint_cmd(args: &[String]) -> ExitCode {
    let mut deny = false;
    let mut quiet = false;
    let mut explain = false;
    let mut waivers = false;
    let mut format = Format::Text;
    let mut want_format = false;
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in args {
        if want_format {
            want_format = false;
            format = match arg.as_str() {
                "text" => Format::Text,
                "json" => Format::Json,
                "github" => Format::Github,
                other => {
                    eprintln!("unknown format `{other}`; available: text, json, github");
                    return ExitCode::FAILURE;
                }
            };
            continue;
        }
        match arg.as_str() {
            "--deny" => deny = true,
            "--quiet" | "-q" => quiet = true,
            "--explain" => explain = true,
            "--waivers" => waivers = true,
            "--json" => format = Format::Json,
            "--format" => want_format = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
            path => files.push(PathBuf::from(path)),
        }
    }
    if want_format {
        eprintln!("--format needs a value: text, json, or github");
        return ExitCode::FAILURE;
    }

    if explain {
        println!("workspace lints (waive with `// lint:allow(<ID>): <reason>`):");
        for lint in lints::LINTS {
            println!("  {}  {}", lint.id, lint.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = workspace_root();
    let cfg = match Config::load(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let files = if files.is_empty() {
        collect_files(&root, &cfg)
    } else {
        files
            .into_iter()
            .map(|f| if f.is_absolute() { f } else { root.join(f) })
            .collect()
    };

    if waivers {
        return list_waivers(&root, &files);
    }

    let report = xtask::run(&root, &files, &cfg);
    let violations = report
        .diagnostics
        .iter()
        .filter(|d| d.lint != "L000")
        .count();
    let warnings = report.diagnostics.len() - violations;
    let fail = violations > 0 || (deny && warnings > 0);

    match format {
        Format::Json => print!("{}", render_json(&report, violations, warnings)),
        Format::Github => print!("{}", render_github(&report)),
        Format::Text => {
            if !quiet {
                for d in &report.diagnostics {
                    println!("{}:{}: [{}] {}", d.file, d.line, d.lint, d.message);
                }
            }
            if !quiet || fail {
                println!(
                    "xtask lint: {violations} violation(s), {warnings} warning(s), {} waived, {} file(s)",
                    report.waived, report.files
                );
            }
        }
    }
    if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders the report as one JSON object (no external deps, so the
/// encoder is hand-rolled; [`json_escape`] covers everything lint
/// messages can contain).
fn render_json(report: &xtask::Report, violations: usize, warnings: usize) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(&d.lint),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"violations\": {violations},\n  \"warnings\": {warnings},\n  \"waived\": {},\n  \"files\": {}\n}}\n",
        report.waived, report.files
    ));
    out
}

/// Renders GitHub Actions workflow annotations (`::error`/`::warning`),
/// which the CI static-analysis job emits so findings land on the PR
/// diff. `L000` (waiver hygiene) annotates as a warning, real lints as
/// errors.
fn render_github(report: &xtask::Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let level = if d.lint == "L000" { "warning" } else { "error" };
        out.push_str(&format!(
            "::{level} file={},line={},title={}::{}\n",
            d.file,
            d.line,
            d.lint,
            gh_escape(&d.message)
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The workflow-command data escaping GitHub requires (`%`, CR, LF).
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtask::lints::Diagnostic;

    fn sample() -> xtask::Report {
        xtask::Report {
            diagnostics: vec![
                Diagnostic {
                    lint: "L003".into(),
                    file: "crates/a/src/lib.rs".into(),
                    line: 7,
                    message: "allocation in hot path: `vec![\"x\"]`".into(),
                },
                Diagnostic {
                    lint: "L000".into(),
                    file: "crates/b/src/lib.rs".into(),
                    line: 2,
                    message: "waiver has no reason\nsecond line, 50% done".into(),
                },
            ],
            files: 2,
            waived: 1,
        }
    }

    #[test]
    fn json_output_is_escaped_and_complete() {
        let json = render_json(&sample(), 1, 1);
        assert!(json.contains(r#""lint": "L003""#));
        assert!(json.contains(r#"`vec![\"x\"]`"#), "quotes must be escaped");
        assert!(
            json.contains(r#"\nsecond line"#),
            "newlines must be escaped"
        );
        assert!(json.contains(r#""violations": 1"#));
        assert!(json.contains(r#""waived": 1"#));
        // Must stay parseable by eye: balanced braces, one per diagnostic
        // plus the envelope.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn github_annotations_escape_workflow_metacharacters() {
        let gh = render_github(&sample());
        assert!(gh.contains("::error file=crates/a/src/lib.rs,line=7,title=L003::"));
        assert!(gh.contains("::warning file=crates/b/src/lib.rs,line=2,title=L000::"));
        assert!(gh.contains("%0Asecond line"), "LF must be %0A-escaped");
        assert!(gh.contains("50%25 done"), "% must be %25-escaped");
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let empty = xtask::Report {
            diagnostics: Vec::new(),
            files: 0,
            waived: 0,
        };
        assert_eq!(render_github(&empty), "");
        let json = render_json(&empty, 0, 0);
        assert!(json.contains("\"diagnostics\": []"));
    }
}

/// Prints every honored waiver as `file:line [IDs] reason`, so reviewers
/// can audit the full exception surface in one listing.
fn list_waivers(root: &Path, files: &[PathBuf]) -> ExitCode {
    let mut count = 0usize;
    for path in files {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = rel_str(path, root);
        for (l, line) in text.lines().enumerate() {
            if let Some(at) = line.find("lint:allow") {
                println!("{}:{}: {}", rel, l + 1, line[at..].trim());
                count += 1;
            }
        }
    }
    println!("{count} waiver(s)");
    ExitCode::SUCCESS
}
