//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo xtask lint               # report violations, exit 1 if any
//! cargo xtask lint --deny        # also fail on warnings (CI mode)
//! cargo xtask lint path/a.rs …   # lint a subset of files
//! cargo xtask lint --explain     # print the lint catalog
//! cargo xtask lint --waivers     # list every honored waiver with its reason
//! ```

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::{collect_files, lints, rel_str, Config};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_cmd(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask lint [--deny] [--quiet] [--explain] [--waivers] [files…]"
            );
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // The xtask manifest lives at <root>/crates/xtask; walking up from the
    // compile-time manifest dir is robust to the caller's CWD.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn lint_cmd(args: &[String]) -> ExitCode {
    let mut deny = false;
    let mut quiet = false;
    let mut explain = false;
    let mut waivers = false;
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--deny" => deny = true,
            "--quiet" | "-q" => quiet = true,
            "--explain" => explain = true,
            "--waivers" => waivers = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
            path => files.push(PathBuf::from(path)),
        }
    }

    if explain {
        println!("workspace lints (waive with `// lint:allow(<ID>): <reason>`):");
        for lint in lints::LINTS {
            println!("  {}  {}", lint.id, lint.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = workspace_root();
    let cfg = match Config::load(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let files = if files.is_empty() {
        collect_files(&root, &cfg)
    } else {
        files
            .into_iter()
            .map(|f| if f.is_absolute() { f } else { root.join(f) })
            .collect()
    };

    if waivers {
        return list_waivers(&root, &files);
    }

    let report = xtask::run(&root, &files, &cfg);
    let violations = report
        .diagnostics
        .iter()
        .filter(|d| d.lint != "L000")
        .count();
    let warnings = report.diagnostics.len() - violations;

    if !quiet {
        for d in &report.diagnostics {
            println!("{}:{}: [{}] {}", d.file, d.line, d.lint, d.message);
        }
    }
    let fail = violations > 0 || (deny && warnings > 0);
    if !quiet || fail {
        println!(
            "xtask lint: {violations} violation(s), {warnings} warning(s), {} waived, {} file(s)",
            report.waived, report.files
        );
    }
    if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints every honored waiver as `file:line [IDs] reason`, so reviewers
/// can audit the full exception surface in one listing.
fn list_waivers(root: &Path, files: &[PathBuf]) -> ExitCode {
    let mut count = 0usize;
    for path in files {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = rel_str(path, root);
        for (l, line) in text.lines().enumerate() {
            if let Some(at) = line.find("lint:allow") {
                println!("{}:{}: {}", rel, l + 1, line[at..].trim());
                count += 1;
            }
        }
    }
    println!("{count} waiver(s)");
    ExitCode::SUCCESS
}
