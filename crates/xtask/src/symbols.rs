//! Symbol table and intra-workspace call graph for the concurrency lints.
//!
//! The L001–L008 lints are per-file: they pattern-match one scrubbed source
//! file at a time. The concurrency lints added in PR 8 (L009–L012) reason
//! about *relationships* — "is this function reachable from a hot entry
//! point?", "does a fault point dominate this buffer write?" — so this
//! module builds a workspace-wide model on top of the same lexer:
//!
//! 1. **Function definitions.** Every `fn name(...)` item in scrubbed code,
//!    with its brace-matched body span, whether it takes `self`, the type
//!    its enclosing `impl` block targets, and whether it lives in test
//!    code. Raw identifiers (`fn r#try`) are normalized to their bare name.
//! 2. **Call sites.** Bare calls (`helper(...)`), path calls
//!    (`exec::gather_rows(...)`, `Type::new(...)`), and method calls
//!    (`.row_mut(...)`), including turbofish forms (`f::<T>(...)`,
//!    `.collect::<Vec<_>>(...)`).
//! 3. **Resolution.** Deliberately conservative *over*-approximation:
//!    method calls resolve to every workspace function with the matching
//!    name that takes `self` (dynamic dispatch and trait impls cannot be
//!    resolved lexically, so all candidates are assumed reachable);
//!    type-qualified calls (`Type::new`) resolve only within `impl Type`
//!    blocks (otherwise `::new` would edge into every constructor in the
//!    workspace); module-qualified calls prefer functions defined in a
//!    file matching the module segment (`exec::gather_rows` → `…/exec.rs`)
//!    before falling back to name-wide; bare calls resolve within the same
//!    file, then the same crate. Calls that resolve to nothing are assumed
//!    to target `std` or vendored dependencies and drop out.
//!
//! When a crate-dependency map is installed ([`Workspace::set_crate_deps`],
//! loaded from the workspace `Cargo.toml`s by [`load_crate_deps`]), every
//! cross-crate candidate is additionally required to live in a declared
//! (transitive) dependency of the caller's crate — a name collision cannot
//! edge `crates/pool` into a crate pool does not even link against.
//!
//! The over-approximation direction matters: for reachability lints a
//! spurious edge can only produce a *stricter* check (a diagnostic a human
//! reviews and possibly waives), never a silently missed one.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::lexer::SourceFile;

/// Stable index of a function definition in a [`Workspace`].
pub type FnId = usize;

/// How a call site referred to its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` with no qualifier.
    Bare,
    /// `path::name(...)`.
    Path,
    /// `.name(...)`.
    Method,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (raw-identifier prefix stripped).
    pub name: String,
    /// Qualifier form the call used.
    pub kind: CallKind,
    /// For [`CallKind::Path`], the last path segment before the name
    /// (`exec` in `exec::gather_rows(...)`, `Plan` in `Plan::new(...)`).
    pub qualifier: Option<String>,
    /// 0-based line of the call site.
    pub line: usize,
}

/// One `fn` item: identity, span, and the calls inside its body.
#[derive(Debug)]
pub struct FnDef {
    /// Function name (raw-identifier prefix stripped).
    pub name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 0-based line of the `fn` keyword.
    pub start_line: usize,
    /// 0-based line of the closing brace (== `start_line` for bodyless
    /// trait-method declarations).
    pub end_line: usize,
    /// Whether the first parameter is (a form of) `self`.
    pub has_self: bool,
    /// The target type of the enclosing `impl` block, if any.
    pub owner: Option<String>,
    /// Whether the definition sits in test code (path or `cfg(test)`).
    pub is_test: bool,
    /// Whether the body contains a `fault_point!`/`fault_point_err!` site.
    pub has_fault_point: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<Call>,
}

/// The workspace model: all function definitions plus resolution indices.
#[derive(Debug, Default)]
pub struct Workspace {
    fns: Vec<FnDef>,
    by_name: HashMap<String, Vec<FnId>>,
    by_file: BTreeMap<String, Vec<FnId>>,
    /// `reaches_fault[f]`: `f` contains, or transitively calls a function
    /// containing, a fault-point macro.
    reaches_fault: Vec<bool>,
    /// Transitive crate dependencies (`"crates/shard"` →
    /// {`"crates/pool"`, …}); empty = no filtering.
    crate_deps: BTreeMap<String, HashSet<String>>,
}

/// Rust keywords and call-like constructs that are never workspace
/// function names; skipping them keeps the bare-call index small.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "else", "unsafe",
    "let", "mut", "ref", "await", "yield", "dyn", "impl", "where", "pub", "use", "mod", "struct",
    "enum", "union", "trait", "type", "const", "static", "crate", "super", "break", "continue",
    "Self", "self",
];

impl Workspace {
    /// Builds the model from scanned files (`(workspace-relative path,
    /// scanned source)` pairs).
    pub fn build(files: &[(String, SourceFile)]) -> Workspace {
        let mut ws = Workspace::default();
        for (path, sf) in files {
            collect_fns(path, sf, &mut ws.fns);
        }
        for (id, f) in ws.fns.iter().enumerate() {
            ws.by_name.entry(f.name.clone()).or_default().push(id);
            ws.by_file.entry(f.file.clone()).or_default().push(id);
        }
        ws.reaches_fault = ws.propagate_fault_points();
        ws
    }

    /// All function definitions, indexable by [`FnId`].
    pub fn fns(&self) -> &[FnDef] {
        &self.fns
    }

    /// Function ids defined in `file`, in source order.
    pub fn fns_in_file(&self, file: &str) -> &[FnId] {
        self.by_file.get(file).map_or(&[], Vec::as_slice)
    }

    /// The function whose body span contains 0-based `line` of `file`.
    /// Nested items resolve to the innermost (latest-starting) span.
    pub fn fn_at(&self, file: &str, line: usize) -> Option<FnId> {
        self.fns_in_file(file)
            .iter()
            .copied()
            .filter(|&id| self.fns[id].start_line <= line && line <= self.fns[id].end_line)
            .max_by_key(|&id| self.fns[id].start_line)
    }

    /// Installs the crate-dependency closure used to prune cross-crate
    /// resolution (see [`load_crate_deps`]). An empty map disables the
    /// filter (the in-memory fixture case).
    pub fn set_crate_deps(&mut self, deps: BTreeMap<String, HashSet<String>>) {
        self.crate_deps = deps;
    }

    /// May code in crate `from` call into crate `to`? Unknown crates (root
    /// `src/`, `tests/`, pseudo-paths) stay permissive.
    fn crate_allowed(&self, from: &str, to: &str) -> bool {
        if from == to || self.crate_deps.is_empty() || !self.crate_deps.contains_key(to) {
            return true;
        }
        self.crate_deps
            .get(from)
            .is_none_or(|deps| deps.contains(to))
    }

    /// Resolves one call site from within `caller` to candidate targets.
    pub fn resolve(&self, caller: FnId, call: &Call) -> Vec<FnId> {
        let Some(candidates) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let from = crate_of(&self.fns[caller].file);
        let linkable = |id: &FnId| self.crate_allowed(&from, &crate_of(&self.fns[*id].file));
        match call.kind {
            CallKind::Method => candidates
                .iter()
                .copied()
                .filter(|&id| self.fns[id].has_self)
                .filter(linkable)
                .collect(),
            CallKind::Path => match call.qualifier.as_deref() {
                // `Self::helper(...)`: same impl target, same crate.
                Some("Self") => {
                    let me = &self.fns[caller];
                    candidates
                        .iter()
                        .copied()
                        .filter(|&id| {
                            self.fns[id].owner == me.owner
                                && crate_of(&self.fns[id].file) == crate_of(&me.file)
                        })
                        .collect()
                }
                // `crate::helper(...)`: same crate by definition.
                Some("crate") => candidates
                    .iter()
                    .copied()
                    .filter(|&id| crate_of(&self.fns[id].file) == from)
                    .collect(),
                // `Type::assoc(...)`: only fns inside `impl Type`. An empty
                // result means the type is foreign (std/vendored) — no edge.
                Some(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => candidates
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].owner.as_deref() == Some(q))
                    .filter(linkable)
                    .collect(),
                // Module-qualified (`exec::gather_rows`): prefer fns whose
                // file matches the module segment (`…/exec.rs` or
                // `…/exec/…`), falling back to name-wide only when no file
                // matches — `retry::run` must not edge into every `run`.
                Some(q) => {
                    let file_rs = format!("/{q}.rs");
                    let dir = format!("/{q}/");
                    let module_match: Vec<FnId> = candidates
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let f = &self.fns[id].file;
                            f.ends_with(&file_rs) || f.contains(&dir)
                        })
                        .filter(linkable)
                        .collect();
                    if !module_match.is_empty() {
                        return module_match;
                    }
                    candidates.iter().copied().filter(linkable).collect()
                }
                None => candidates.iter().copied().filter(linkable).collect(),
            },
            CallKind::Bare => {
                let file = &self.fns[caller].file;
                let same_file: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| &self.fns[id].file == file)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                candidates
                    .iter()
                    .copied()
                    .filter(|&id| crate_of(&self.fns[id].file) == from)
                    .collect()
            }
        }
    }

    /// Every function reachable from `seeds` through resolved calls,
    /// including the seeds themselves. Test-code definitions are neither
    /// traversed nor returned: reachability models the production call
    /// graph.
    pub fn reachable(&self, seeds: impl IntoIterator<Item = FnId>) -> HashSet<FnId> {
        self.reach_with_preds(seeds).0
    }

    /// Reachability plus a BFS predecessor map, for witness chains.
    pub fn reach_with_preds(
        &self,
        seeds: impl IntoIterator<Item = FnId>,
    ) -> (HashSet<FnId>, HashMap<FnId, FnId>) {
        let mut seen: HashSet<FnId> = HashSet::new();
        let mut prev: HashMap<FnId, FnId> = HashMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for s in seeds {
            if !self.fns[s].is_test && seen.insert(s) {
                queue.push_back(s);
            }
        }
        while let Some(f) = queue.pop_front() {
            for call in &self.fns[f].calls {
                for target in self.resolve(f, call) {
                    if !self.fns[target].is_test && seen.insert(target) {
                        prev.insert(target, f);
                        queue.push_back(target);
                    }
                }
            }
        }
        (seen, prev)
    }

    /// Does `f` contain — or transitively call a function containing — a
    /// fault-point macro invocation?
    pub fn reaches_fault_point(&self, f: FnId) -> bool {
        self.reaches_fault.get(f).copied().unwrap_or(false)
    }

    /// Renders the BFS chain leading to `target` (from
    /// [`Workspace::reach_with_preds`]) as `seed -> … -> target`.
    pub fn chain_label(&self, prev: &HashMap<FnId, FnId>, target: FnId) -> String {
        let mut names = vec![self.fns[target].name.clone()];
        let mut cur = target;
        while let Some(&p) = prev.get(&cur) {
            names.push(self.fns[p].name.clone());
            cur = p;
        }
        names.reverse();
        names.join(" -> ")
    }

    /// Fixpoint: a function reaches a fault point if it contains one or
    /// any resolved callee reaches one.
    fn propagate_fault_points(&self) -> Vec<bool> {
        let n = self.fns.len();
        let mut reaches: Vec<bool> = self.fns.iter().map(|f| f.has_fault_point).collect();
        // Reverse edges: callee -> callers.
        let mut callers: Vec<Vec<FnId>> = vec![Vec::new(); n];
        for (caller, f) in self.fns.iter().enumerate() {
            for call in &f.calls {
                for target in self.resolve(caller, call) {
                    callers[target].push(caller);
                }
            }
        }
        let mut queue: VecDeque<FnId> = (0..n).filter(|&f| reaches[f]).collect();
        while let Some(f) = queue.pop_front() {
            for &c in &callers[f] {
                if !reaches[c] {
                    reaches[c] = true;
                    queue.push_back(c);
                }
            }
        }
        reaches
    }
}

/// The crate key of a workspace-relative path (`crates/pool` for
/// `crates/pool/src/lib.rs`; the first component for root `src`/`tests`).
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        (Some(first), _) => first.to_string(),
        (None, _) => String::new(),
    }
}

/// Reads each `crates/*/Cargo.toml` under `root` and returns the
/// *transitive* `[dependencies]` closure, keyed and valued by crate key
/// (`"crates/<dir>"`). Only workspace-internal dependencies are recorded;
/// `[dev-dependencies]` are ignored (test-only linkage is not part of the
/// production call graph). Parsing is line-oriented on the same TOML
/// subset `lint.toml` uses.
pub fn load_crate_deps(root: &std::path::Path) -> BTreeMap<String, HashSet<String>> {
    let mut direct: BTreeMap<String, HashSet<String>> = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
        return direct;
    };
    let mut dirs: Vec<String> = entries
        .flatten()
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .collect();
    dirs.sort();
    for dir in &dirs {
        let key = format!("crates/{dir}");
        let deps = direct.entry(key).or_default();
        let Ok(text) = std::fs::read_to_string(root.join("crates").join(dir).join("Cargo.toml"))
        else {
            continue;
        };
        let mut in_deps = false;
        for line in text.lines() {
            let line = line.trim();
            if let Some(section) = line.strip_prefix('[') {
                in_deps = section.trim_end_matches(']') == "dependencies";
                continue;
            }
            if !in_deps {
                continue;
            }
            let name: String = line
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
                .collect();
            if !name.is_empty() && dirs.iter().any(|d| d == &name) {
                deps.insert(format!("crates/{name}"));
            }
        }
    }
    // Transitive closure (the graphs are tiny; a fixpoint sweep is fine).
    loop {
        let mut grew = false;
        for key in direct.keys().cloned().collect::<Vec<_>>() {
            let indirect: Vec<String> = direct[&key]
                .iter()
                .filter_map(|d| direct.get(d))
                .flatten()
                .cloned()
                .collect();
            let deps = direct.get_mut(&key).expect("key enumerated from map");
            for d in indirect {
                grew |= deps.insert(d);
            }
        }
        if !grew {
            break;
        }
    }
    direct
}

// --- definition + call extraction ------------------------------------------

/// An `impl` block's byte span and target type name.
struct ImplSpan {
    open: usize,
    close: usize,
    target: String,
}

fn collect_fns(path: &str, sf: &SourceFile, out: &mut Vec<FnDef>) {
    let code: String = sf
        .code_lines
        .iter()
        .flat_map(|l| [l.as_str(), "\n"])
        .collect();
    let impls = collect_impls(&code);
    let bytes = code.as_bytes();
    let mut at = 0usize;
    while let Some(rel) = code[at..].find("fn ") {
        let abs = at + rel;
        at = abs + 3;
        // Word boundary before: `pub fn` ok, identifier tails (`gen_fn `)
        // and raw identifiers (`r#fn`) must not match.
        if abs > 0 {
            let prev = bytes[abs - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b'#' {
                continue;
            }
        }
        let name = read_ident(code[abs + 3..].trim_start());
        if name.is_empty() {
            continue;
        }
        let start_line = code[..abs].matches('\n').count();
        let sig_end = match signature_end(&code, abs) {
            Some(e) => e,
            None => continue,
        };
        let (end_abs, body): (usize, &str) = match sig_end {
            SigEnd::Body(open) => match matched_brace(&code, open) {
                Some(close) => (close, &code[open..=close]),
                None => continue,
            },
            SigEnd::Declaration(semi) => (semi, ""),
        };
        let end_line = code[..=end_abs.min(code.len() - 1)].matches('\n').count();
        let params = param_list(&code, abs).unwrap_or("");
        let has_self = crate::lexer::find_boundary(params, "self", true).is_some();
        let owner = impls
            .iter()
            .filter(|i| i.open < abs && abs < i.close)
            .max_by_key(|i| i.open)
            .map(|i| i.target.clone());
        let calls = extract_calls(body, start_line_of(&code, abs, body));
        let has_fault_point = body.contains("fault_point");
        out.push(FnDef {
            name,
            file: path.to_string(),
            start_line,
            end_line,
            has_self,
            owner,
            is_test: sf.test_lines.get(start_line).copied().unwrap_or(false)
                || crate::lints::is_test_path(path),
            has_fault_point,
            calls,
        });
    }
}

/// Finds `impl` block spans and their target type (`Bar` for both
/// `impl<T> Bar<T>` and `impl Foo for Bar`).
fn collect_impls(code: &str) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(at) = crate::lexer::find_boundary(&code[from..], "impl", true) {
        let abs = from + at;
        from = abs + 4;
        let Some(SigEnd::Body(open)) = signature_end(code, abs) else {
            continue;
        };
        let Some(close) = matched_brace(code, open) else {
            continue;
        };
        let header = &code[abs + 4..open];
        // `impl Trait for Type {` — the receiver type follows `for`.
        let target_src = match crate::lexer::find_boundary(header, "for", true) {
            Some(p) => &header[p + 3..],
            None => skip_generics(header),
        };
        let target = read_ident(
            target_src
                .trim_start()
                .trim_start_matches('&')
                .trim_start()
                .trim_start_matches("mut ")
                .trim_start(),
        );
        if !target.is_empty() {
            out.push(ImplSpan {
                open: abs,
                close,
                target,
            });
        }
    }
    out
}

/// Skips a leading `<...>` generic parameter list.
fn skip_generics(s: &str) -> &str {
    let t = s.trim_start();
    if !t.starts_with('<') {
        return t;
    }
    let mut depth = 0i32;
    for (i, c) in t.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return &t[i + 1..];
                }
            }
            _ => {}
        }
    }
    t
}

/// 0-based line on which a fn's body text starts (the line of its opening
/// brace). `body` is a subslice of `code`; empty bodies fall back to the
/// signature line.
fn start_line_of(code: &str, sig_at: usize, body: &str) -> usize {
    if body.is_empty() {
        return code[..sig_at].matches('\n').count();
    }
    let offset = subslice_offset(code, body);
    code[..offset].matches('\n').count()
}

/// Byte offset of subslice `sub` within `all` (both views of the same
/// allocation; pointer arithmetic on addresses is safe code).
fn subslice_offset(all: &str, sub: &str) -> usize {
    (sub.as_ptr() as usize).saturating_sub(all.as_ptr() as usize)
}

enum SigEnd {
    /// Byte offset of the opening body brace.
    Body(usize),
    /// Byte offset of the terminating `;` (no body).
    Declaration(usize),
}

/// Finds where the signature starting at `at` ends, skipping generic
/// parameter lists (`fn f<T: Trait<U>>(...)`) and where-clauses.
fn signature_end(code: &str, at: usize) -> Option<SigEnd> {
    let bytes = code.as_bytes();
    let mut i = at;
    let mut angle = 0i32;
    let mut paren = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => angle += 1,
            b'>' => {
                // `->` is not a generic close.
                if i == 0 || bytes[i - 1] != b'-' {
                    angle = (angle - 1).max(0);
                }
            }
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'{' if angle == 0 && paren == 0 => return Some(SigEnd::Body(i)),
            b';' if angle == 0 && paren == 0 => return Some(SigEnd::Declaration(i)),
            _ => {}
        }
        i += 1;
    }
    None
}

/// The parameter list text `(...)` of the fn starting at `fn_at`.
fn param_list(code: &str, fn_at: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut i = fn_at;
    let mut angle = 0i32;
    loop {
        if i >= bytes.len() {
            return None;
        }
        match bytes[i] {
            b'<' => angle += 1,
            b'>' if i > 0 && bytes[i - 1] != b'-' => angle = (angle - 1).max(0),
            b'(' if angle == 0 => break,
            b'{' | b';' if angle == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    let open = i;
    let mut depth = 0i32;
    for (j, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&code[open..=j]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Byte offset of the `}` matching the `{` at `open`.
fn matched_brace(code: &str, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, b) in code.bytes().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Reads an identifier from the start of `s`, stripping an `r#` raw prefix.
fn read_ident(s: &str) -> String {
    let s = s.strip_prefix("r#").unwrap_or(s);
    s.chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Extracts call sites from a fn body (scrubbed text). `first_line` is the
/// 0-based line of the body's first character, used to absolutize lines.
fn extract_calls(body: &str, first_line: usize) -> Vec<Call> {
    let mut out = Vec::new();
    let bytes = body.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        // Identifier start must not be an identifier tail.
        if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let raw_word = &body[start..i];
        // Raw identifier call: `r#try(...)` — the lexer leaves `r#` in
        // scrubbed code (no `"` follows, so it is not a raw string).
        let (word, ident_start) = if raw_word == "r"
            && bytes.get(i) == Some(&b'#')
            && bytes
                .get(i + 1)
                .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
        {
            let s2 = i + 1;
            let mut j = s2;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            let w = &body[s2..j];
            i = j;
            (w, start)
        } else {
            (raw_word, start)
        };
        if word.is_empty() || NON_CALL_WORDS.contains(&word) {
            continue;
        }
        // Skip whitespace, then an optional turbofish, to find `(`.
        let mut j = i;
        while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
            j += 1;
        }
        if bytes.get(j) == Some(&b':') && bytes.get(j + 1) == Some(&b':') {
            if bytes.get(j + 2) == Some(&b'<') {
                // Turbofish: skip the nested generic argument list. Inside
                // `::<…>` every `<`/`>` is a bracket, so depth counting
                // cannot be derailed by comparison operators.
                let mut depth = 0i32;
                let mut k = j + 2;
                while k < bytes.len() {
                    match bytes[k] {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = k + 1;
                while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
                    j += 1;
                }
            } else {
                // `word::more`: not a call of `word`; the path tail will be
                // revisited as its own identifier.
                continue;
            }
        }
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        // Macro invocations (`name!(`) are not function calls.
        if bytes.get(i) == Some(&b'!') {
            continue;
        }
        // Classify by what precedes the identifier.
        let mut p = ident_start;
        while p > 0 && (bytes[p - 1] == b' ' || bytes[p - 1] == b'\t') {
            p -= 1;
        }
        let (kind, qualifier) = if p > 0 && bytes[p - 1] == b'.' {
            (CallKind::Method, None)
        } else if p > 1 && bytes[p - 1] == b':' && bytes[p - 2] == b':' {
            (CallKind::Path, path_qualifier(body, p - 2))
        } else {
            (CallKind::Bare, None)
        };
        let line = first_line + body[..start].matches('\n').count();
        out.push(Call {
            name: word.to_string(),
            kind,
            qualifier,
            line,
        });
    }
    out
}

/// The path segment ending at the `::` that starts at byte `colons`
/// (`Plan` for `Plan::new`, `exec` for `shard::exec::run`). `None` when the
/// segment is not a plain identifier (e.g. closes a generic list).
fn path_qualifier(body: &str, colons: usize) -> Option<String> {
    let bytes = body.as_bytes();
    let mut end = colons;
    while end > 0 && (bytes[end - 1] == b' ' || bytes[end - 1] == b'\t') {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(body[start..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn build(src: &str) -> Workspace {
        Workspace::build(&[("crates/k/src/a.rs".to_string(), SourceFile::scan(src))])
    }

    fn find<'w>(ws: &'w Workspace, name: &str) -> &'w FnDef {
        ws.fns()
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn `{name}` found"))
    }

    fn id_of(ws: &Workspace, name: &str) -> FnId {
        ws.fns().iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn defs_and_spans_are_extracted() {
        let ws = build("fn a() {\n    b();\n}\n\npub fn b() -> u32 {\n    1\n}\n");
        assert_eq!(ws.fns().len(), 2);
        let a = find(&ws, "a");
        assert_eq!((a.start_line, a.end_line), (0, 2));
        assert_eq!(a.calls.len(), 1);
        assert_eq!(a.calls[0].name, "b");
        assert_eq!(a.calls[0].kind, CallKind::Bare);
        assert_eq!(a.calls[0].line, 1);
    }

    #[test]
    fn method_and_path_calls_are_classified() {
        let ws = build("fn f(x: &X) {\n    x.update(1);\n    exec::gather(x);\n    plain();\n}\n");
        let f = find(&ws, "f");
        let kinds: Vec<(String, CallKind)> =
            f.calls.iter().map(|c| (c.name.clone(), c.kind)).collect();
        assert!(kinds.contains(&("update".into(), CallKind::Method)));
        assert!(kinds.contains(&("gather".into(), CallKind::Path)));
        assert!(kinds.contains(&("plain".into(), CallKind::Bare)));
    }

    #[test]
    fn turbofish_calls_resolve_to_the_base_name() {
        let ws = build(
            "fn f() {\n    g::<Vec<Vec<u32>>>(1);\n    h.collect::<Vec<_>>();\n    if a < b { c(); }\n}\nfn g(_x: u32) {}\nfn c() {}\n",
        );
        let f = find(&ws, "f");
        assert!(f
            .calls
            .iter()
            .any(|c| c.name == "g" && c.kind == CallKind::Bare));
        assert!(f
            .calls
            .iter()
            .any(|c| c.name == "collect" && c.kind == CallKind::Method));
        // `a < b` is a comparison, not a turbofish; `c()` inside the block
        // is still seen, and `b` is not a call.
        assert!(f.calls.iter().any(|c| c.name == "c"));
        assert!(!f.calls.iter().any(|c| c.name == "b"));
    }

    #[test]
    fn raw_identifiers_normalize() {
        let ws = build("fn r#try() {}\nfn f() {\n    r#try();\n}\n");
        assert!(ws.fns().iter().any(|f| f.name == "try"));
        let f = find(&ws, "f");
        assert!(f.calls.iter().any(|c| c.name == "try"));
        let reach = ws.reachable([id_of(&ws, "f")]);
        assert!(reach.iter().any(|&id| ws.fns()[id].name == "try"));
    }

    #[test]
    fn macros_are_not_calls() {
        let ws =
            build("fn f() {\n    panic!(\"x\");\n    vec![1];\n    real();\n}\nfn real() {}\n");
        let f = find(&ws, "f");
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].name, "real");
    }

    #[test]
    fn impl_owner_is_tracked_through_trait_impls() {
        let src = "struct Plan;\nimpl Plan {\n    fn new() -> Plan { Plan }\n}\nimpl Drop for Plan {\n    fn drop(&mut self) {}\n}\nfn free() {}\n";
        let ws = build(src);
        assert_eq!(find(&ws, "new").owner.as_deref(), Some("Plan"));
        assert_eq!(find(&ws, "drop").owner.as_deref(), Some("Plan"));
        assert_eq!(find(&ws, "free").owner, None);
        assert!(find(&ws, "drop").has_self);
        assert!(!find(&ws, "new").has_self);
    }

    #[test]
    fn type_qualified_calls_resolve_only_to_that_impl() {
        let files = [
            (
                "crates/k/src/a.rs".to_string(),
                SourceFile::scan("fn f() { Plan::new(); Foreign::new(); }\n"),
            ),
            (
                "crates/k/src/b.rs".to_string(),
                SourceFile::scan(
                    "impl Plan {\n    fn new() {}\n}\nimpl Other {\n    fn new() {}\n}\n",
                ),
            ),
        ];
        let ws = Workspace::build(&files);
        let f = id_of(&ws, "f");
        let plan_call = &ws.fns()[f].calls[0];
        let targets = ws.resolve(f, plan_call);
        assert_eq!(targets.len(), 1);
        assert_eq!(ws.fns()[targets[0]].owner.as_deref(), Some("Plan"));
        // `Foreign::new` matches no workspace impl: no edge, not "every new".
        let foreign_call = &ws.fns()[f].calls[1];
        assert!(ws.resolve(f, foreign_call).is_empty());
    }

    #[test]
    fn bare_calls_resolve_same_file_then_same_crate() {
        let files = [
            (
                "crates/k/src/a.rs".to_string(),
                SourceFile::scan("fn f() { helper(); }\n"),
            ),
            (
                "crates/k/src/b.rs".to_string(),
                SourceFile::scan("fn helper() { inner(); }\nfn inner() {}\n"),
            ),
            (
                "crates/other/src/lib.rs".to_string(),
                SourceFile::scan("fn helper() {}\n"),
            ),
        ];
        let ws = Workspace::build(&files);
        let f = ws.fns().iter().position(|d| d.name == "f").unwrap();
        let targets = ws.resolve(f, &ws.fns()[f].calls[0]);
        // Same crate only: crates/k/src/b.rs, not crates/other.
        assert_eq!(targets.len(), 1);
        assert_eq!(ws.fns()[targets[0]].file, "crates/k/src/b.rs");
        // Two-hop reachability.
        let reach = ws.reachable([f]);
        assert!(reach.iter().any(|&id| ws.fns()[id].name == "inner"));
    }

    #[test]
    fn reachability_skips_test_code() {
        let src = "fn f() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let ws = build(src);
        let reach = ws.reachable([id_of(&ws, "f")]);
        assert_eq!(reach.len(), 1, "test-only helper must not be traversed");
    }

    #[test]
    fn fault_point_reachability_propagates_to_callers() {
        let src = "fn outer() { mid(); }\nfn mid() { leaf(); }\nfn leaf() { resilience::fault_point!(\"x\"); }\nfn clean() {}\n";
        let ws = build(src);
        assert!(ws.reaches_fault_point(id_of(&ws, "leaf")));
        assert!(ws.reaches_fault_point(id_of(&ws, "mid")));
        assert!(ws.reaches_fault_point(id_of(&ws, "outer")));
        assert!(!ws.reaches_fault_point(id_of(&ws, "clean")));
    }

    #[test]
    fn witness_chains_name_the_hops() {
        let src = "fn hot() { a(); }\nfn a() { b(); }\nfn b() {}\n";
        let ws = build(src);
        let (reach, prev) = ws.reach_with_preds([id_of(&ws, "hot")]);
        assert!(reach.contains(&id_of(&ws, "b")));
        assert_eq!(ws.chain_label(&prev, id_of(&ws, "b")), "hot -> a -> b");
    }

    #[test]
    fn fn_at_finds_the_innermost_span() {
        let src = "fn outer() {\n    fn inner() {\n        x();\n    }\n    inner();\n}\n";
        let ws = build(src);
        let at = ws.fn_at("crates/k/src/a.rs", 2).unwrap();
        assert_eq!(ws.fns()[at].name, "inner");
        let at = ws.fn_at("crates/k/src/a.rs", 4).unwrap();
        assert_eq!(ws.fns()[at].name, "outer");
    }
}
