//! The repo-specific lint suite (L001–L008) and the waiver machinery.
//!
//! Each lint is grounded in an invariant earlier PRs established by
//! convention; see `DESIGN.md` ("Static analysis") for the full catalog.
//! Diagnostics that cannot be fixed are waived *in the source*, next to the
//! offending line, with a mandatory reason:
//!
//! ```text
//! // lint:allow(L005): K-sized accumulator per share; bounded by max K
//! let mut acc = vec![0.0f32; k];
//! ```
//!
//! A waiver on a comment-only line covers the next code line; a trailing
//! waiver covers its own line. `lint:allow-file(ID)` covers the whole file.
//! A waiver without a reason — or one that never matches a diagnostic — is
//! itself reported.

use crate::config::Config;
use crate::lexer::{code_match_lines, find_boundary, SourceFile};

/// Description of one lint, for `--explain` and the docs.
pub struct LintInfo {
    /// Stable ID (`L001` …).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The lint catalog, in ID order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "L001",
        summary: "every `unsafe` block/impl/fn is immediately preceded by a `// SAFETY:` comment",
    },
    LintInfo {
        id: "L002",
        summary: "no thread spawning (`thread::spawn`, `thread::Builder`, `crossbeam::scope`) outside the pool crate",
    },
    LintInfo {
        id: "L003",
        summary: "no `unwrap()`/bare `expect()`/`panic!`-family, and no unexplained `[]` indexing, in hot-path modules",
    },
    LintInfo {
        id: "L004",
        summary: "every `pub fn *_into` in the kernel/matrix crates calls a dimension-check helper before looping",
    },
    LintInfo {
        id: "L005",
        summary: "no allocating calls (Vec::new, vec![], collect, to_vec, Box::new, format!) in hot-path modules",
    },
    LintInfo {
        id: "L006",
        summary: "`Ordering::Relaxed` outside the pool crate requires a waiver stating the ordering argument",
    },
    LintInfo {
        id: "L007",
        summary: "every plain-`pub` item in the core library crates carries a doc comment",
    },
    LintInfo {
        id: "L008",
        summary: "`fault_point!`/`fault_point_err!` sites in hot-path modules require a waiver arguing their disabled cost",
    },
    LintInfo {
        id: "L009",
        summary: "every function reachable from a hot-path module through the call graph inherits the panic-freedom (L003) and zero-alloc (L005) rules",
    },
    LintInfo {
        id: "L010",
        summary: "every `Acquire`/`Release`/`AcqRel` atomic site names its pairing site in a `// PAIRS: <label>` comment, matched bidirectionally; `SeqCst` requires a waiver",
    },
    LintInfo {
        id: "L011",
        summary: "per-crate lock-acquisition order must be acyclic, and poisoned-lock handling must go through `resilience::audit`",
    },
    LintInfo {
        id: "L012",
        summary: "writes to exchange buffers must be dominated by a `fault_point!` site (directly or via a fault-pointed callee)",
    },
];

/// Is `id` a known lint ID (including `L000`, the waiver meta-lint)?
pub fn known_lint(id: &str) -> bool {
    id == "L000" || LINTS.iter().any(|l| l.id == id)
}

/// One finding, attributed to a file/line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint ID (`L000` marks waiver problems).
    pub lint: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(lint: &str, file: &str, line0: usize, message: String) -> Diagnostic {
        Diagnostic {
            lint: lint.to_string(),
            file: file.to_string(),
            line: line0 + 1,
            message,
        }
    }
}

/// A parsed `lint:allow` waiver.
#[derive(Debug)]
struct Waiver {
    lints: Vec<String>,
    /// 0-based line the waiver covers (`None` = whole file).
    covers: Option<usize>,
    /// 0-based line the waiver text sits on (for unused-waiver reports).
    at: usize,
    reason: String,
    used: std::cell::Cell<bool>,
}

/// Outcome of linting one file: violations, plus waiver bookkeeping
/// already applied (waived findings removed, malformed/unused waivers
/// reported as `L000`).
pub fn lint_file(path: &str, sf: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    lint_file_with(path, sf, cfg, Vec::new())
}

/// Like [`lint_file`], but merges `extra` diagnostics computed by the
/// workspace-level pass ([`crate::global`]) into this file's raw findings
/// before waivers are applied, so global findings are waivable with the
/// same `lint:allow` machinery. `extra` lines are 1-based (already
/// [`Diagnostic`]s); scoping (disabled lints, test exemption) is the
/// global pass's responsibility.
pub fn lint_file_with(
    path: &str,
    sf: &SourceFile,
    cfg: &Config,
    extra: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = extra;
    let exempt_file = is_test_path(path);

    let mut run = |id: &str, f: &dyn Fn(&str, &SourceFile, &Config) -> Vec<Diagnostic>| {
        if cfg.disabled.iter().any(|d| d == id) {
            return;
        }
        let test_exempt = cfg.tests_exempt.iter().any(|e| e == id);
        if test_exempt && exempt_file {
            return;
        }
        for d in f(path, sf, cfg) {
            if test_exempt && sf.test_lines.get(d.line - 1).copied().unwrap_or(false) {
                continue;
            }
            raw.push(d);
        }
    };

    run("L001", &l001_safety_comments);
    run("L002", &l002_no_thread_spawn);
    run("L003", &l003_panic_freedom);
    run("L004", &l004_dimension_checks);
    run("L005", &l005_zero_alloc);
    run("L006", &l006_relaxed_ordering);
    run("L007", &l007_pub_docs);
    run("L008", &l008_fault_points);

    apply_waivers(path, sf, cfg, raw)
}

/// Does the path denote test/bench/example code exempt from hot-path lints?
pub fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
        || path.ends_with("_test.rs")
}

// --- waivers ---------------------------------------------------------------

fn parse_waivers(path: &str, sf: &SourceFile) -> (Vec<Waiver>, Vec<Diagnostic>) {
    let mut waivers = Vec::new();
    let mut problems = Vec::new();
    for (l, comment) in sf.line_comments.iter().enumerate() {
        // Doc comments are documentation, not directives: they may quote
        // waiver syntax (as this module's own docs do) without enacting it.
        let raw = sf.raw_lines[l].trim_start();
        if raw.starts_with("///")
            || raw.starts_with("//!")
            || raw.starts_with("/**")
            || raw.starts_with("/*!")
        {
            continue;
        }
        let mut rest = comment.as_str();
        while let Some(at) = rest.find("lint:allow") {
            let tail = &rest[at + "lint:allow".len()..];
            let (file_scope, tail) = match tail.strip_prefix("-file") {
                Some(t) => (true, t),
                None => (false, tail),
            };
            let Some(tail) = tail.strip_prefix('(') else {
                problems.push(Diagnostic::new(
                    "L000",
                    path,
                    l,
                    "malformed waiver: expected `lint:allow(<ID>): <reason>`".into(),
                ));
                break;
            };
            let Some(close) = tail.find(')') else {
                problems.push(Diagnostic::new(
                    "L000",
                    path,
                    l,
                    "malformed waiver: unterminated lint ID list".into(),
                ));
                break;
            };
            let ids: Vec<String> = tail[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let after = &tail[close + 1..];
            let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
            if ids.is_empty() || ids.iter().any(|id| !known_lint(id)) {
                problems.push(Diagnostic::new(
                    "L000",
                    path,
                    l,
                    format!(
                        "waiver names unknown lint ID(s): `{}`",
                        tail[..close].trim()
                    ),
                ));
            } else if reason.is_empty() {
                problems.push(Diagnostic::new(
                    "L000",
                    path,
                    l,
                    format!(
                        "waiver for {} has no reason — `lint:allow({}): <why this is sound>`",
                        ids.join(","),
                        ids.join(",")
                    ),
                ));
            } else {
                let covers = if file_scope {
                    None
                } else if sf.is_comment_or_blank(l) {
                    // Standalone comment: covers the next code line.
                    ((l + 1)..sf.nlines()).find(|&n| !sf.is_comment_or_blank(n))
                } else {
                    Some(l)
                };
                waivers.push(Waiver {
                    lints: ids,
                    covers,
                    at: l,
                    reason: reason.to_string(),
                    used: std::cell::Cell::new(false),
                });
            }
            rest = &rest[at + "lint:allow".len()..];
        }
    }
    (waivers, problems)
}

fn apply_waivers(
    path: &str,
    sf: &SourceFile,
    cfg: &Config,
    raw: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let (waivers, mut out) = parse_waivers(path, sf);
    for d in raw {
        let line0 = d.line - 1;
        let waived = waivers
            .iter()
            .find(|w| w.lints.contains(&d.lint) && (w.covers.is_none() || w.covers == Some(line0)));
        match waived {
            Some(w) => w.used.set(true),
            None => out.push(d),
        }
    }
    for w in &waivers {
        // A waiver whose lints are all disabled in lint.toml is dormant, not
        // stale: toggling config must not force source churn.
        if w.lints
            .iter()
            .all(|id| cfg.disabled.iter().any(|d| d == id))
        {
            continue;
        }
        if !w.used.get() {
            out.push(Diagnostic::new(
                "L000",
                path,
                w.at,
                format!(
                    "unused waiver for {} (reason: \"{}\") — the violation it covered is gone; remove it",
                    w.lints.join(","),
                    w.reason
                ),
            ));
        }
    }
    out
}

// --- L001 ------------------------------------------------------------------

fn l001_safety_comments(path: &str, sf: &SourceFile, _cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for l in code_match_lines(sf, "unsafe", true) {
        if has_safety_rationale(sf, l) {
            continue;
        }
        out.push(Diagnostic::new(
            "L001",
            path,
            l,
            "`unsafe` without an immediately preceding `// SAFETY:` comment arguing soundness"
                .into(),
        ));
    }
    out
}

/// A `SAFETY:` comment counts when it is on the same line or in the
/// comment/attribute block directly above (attributes may sit between the
/// comment and the `unsafe` item).
fn has_safety_rationale(sf: &SourceFile, line: usize) -> bool {
    if sf.line_comments[line].contains("SAFETY") {
        return true;
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        let code = sf.code(l).trim();
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        if !(code.is_empty() || is_attr) {
            return false;
        }
        if sf.line_comments[l].contains("SAFETY") {
            return true;
        }
        // A fully blank line breaks "immediately preceding".
        if sf.raw_lines[l].trim().is_empty() {
            return false;
        }
    }
    false
}

// --- L002 ------------------------------------------------------------------

const SPAWN_PATTERNS: &[&str] = &["thread::spawn", "thread::Builder", "crossbeam::scope"];

fn l002_no_thread_spawn(path: &str, sf: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    if Config::path_in(path, &cfg.spawn_allowed) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pat in SPAWN_PATTERNS {
        for l in code_match_lines(sf, pat, true) {
            out.push(Diagnostic::new(
                "L002",
                path,
                l,
                format!(
                    "`{pat}` outside the pool crate — parallel work must go through `kernels::pool` \
                     (spawn-once contract; see crates/pool docs)"
                ),
            ));
        }
    }
    out
}

// --- L003 ------------------------------------------------------------------

pub(crate) const PANIC_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

fn l003_panic_freedom(path: &str, sf: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    if !Config::path_in(path, &cfg.hot_paths) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (l, code) in sf.code_lines.iter().enumerate() {
        if code.contains(".unwrap()") {
            out.push(Diagnostic::new(
                "L003",
                path,
                l,
                "`.unwrap()` in a hot-path module — return a kernel error or use \
                 `.expect(\"<stated invariant>\")`"
                    .into(),
            ));
        }
        if let Some(at) = code.find(".expect(") {
            if !expect_states_invariant(&sf.raw_lines[l], at) {
                out.push(Diagnostic::new(
                    "L003",
                    path,
                    l,
                    "`.expect()` without a multi-word invariant message in a hot-path module"
                        .into(),
                ));
            }
        }
        for pat in PANIC_MACROS {
            if find_boundary(code, pat, false).is_some() {
                out.push(Diagnostic::new(
                    "L003",
                    path,
                    l,
                    format!("`{pat}(…)` in a hot-path module — hot paths must not panic"),
                ));
            }
        }
    }
    // Direct indexing requires the module to document its bounds argument.
    let has_bounds_rationale = sf.line_comments.iter().any(|c| c.contains("BOUNDS:"));
    if !has_bounds_rationale {
        for (l, code) in sf.code_lines.iter().enumerate() {
            if has_direct_index(code) {
                out.push(Diagnostic::new(
                    "L003",
                    path,
                    l,
                    "direct `[]` indexing in a hot-path module without a `// BOUNDS:` comment \
                     documenting why indices are in range"
                        .into(),
                ));
            }
        }
    }
    out
}

/// `.expect(` is compliant when followed on the same raw line by a string
/// literal containing a space — a stated invariant, not a bare token.
pub(crate) fn expect_states_invariant(raw_line: &str, at: usize) -> bool {
    let Some(tail) = raw_line.get(at..) else {
        return false;
    };
    let Some(q0) = tail.find('"') else {
        return false;
    };
    let body = &tail[q0 + 1..];
    let mut msg = String::new();
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '\\' if !escaped => escaped = true,
            '"' if !escaped => break,
            _ => {
                escaped = false;
                msg.push(c);
            }
        }
    }
    msg.trim().contains(' ')
}

/// An indexing expression: identifier/`)`/`]` immediately followed by `[`
/// (excludes attributes `#[…]`, macros `vec![…]`, and slice types `[f32]`).
fn has_direct_index(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            return true;
        }
    }
    false
}

// --- L004 ------------------------------------------------------------------

fn l004_dimension_checks(path: &str, sf: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    if !Config::path_in(path, &cfg.dim_check_crates) {
        return Vec::new();
    }
    let code: String = sf.code_lines.iter().map(|l| format!("{l}\n")).collect();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = code[from..].find("pub fn ") {
        let at = from + rel;
        from = at + "pub fn ".len();
        let name: String = code[from..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.ends_with("_into") {
            continue;
        }
        let line0 = code[..at].matches('\n').count();
        if sf.test_lines.get(line0).copied().unwrap_or(false) {
            continue;
        }
        let Some(body) = fn_body(&code, at) else {
            continue;
        };
        let first_loop = find_boundary(body, "for", true)
            .into_iter()
            .chain(find_boundary(body, "while", true))
            .min()
            .unwrap_or(body.len());
        let checked = cfg.dim_check_helpers.iter().any(|h| {
            let mut pos = 0usize;
            while let Some(p) = find_boundary(&body[pos..], h, true) {
                let abs = pos + p;
                let after = abs + h.len();
                if body[after..].trim_start().starts_with('(') && abs < first_loop {
                    return true;
                }
                pos = after.max(pos + 1);
            }
            false
        });
        if !checked {
            out.push(Diagnostic::new(
                "L004",
                path,
                line0,
                format!(
                    "`pub fn {name}` does not call a dimension-check helper ({}) before its \
                     first loop — `*_into` kernels must validate shapes before touching data",
                    cfg.dim_check_helpers.join("/")
                ),
            ));
        }
    }
    out
}

/// The `{…}` body of the fn whose `pub fn` starts at byte `at` (brace
/// matching over scrubbed code, so strings cannot unbalance it).
fn fn_body(code: &str, at: usize) -> Option<&str> {
    let open = at + code[at..].find('{')?;
    let mut depth = 0i32;
    for (i, c) in code[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&code[open..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

// --- L005 ------------------------------------------------------------------

pub(crate) const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "vec!",
    ".collect()",
    ".collect::<",
    ".to_vec()",
    "Box::new",
    "String::new",
    ".to_owned()",
    ".to_string()",
    "format!",
];

fn l005_zero_alloc(path: &str, sf: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    if !Config::path_in(path, &cfg.hot_paths) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pat in ALLOC_PATTERNS {
        for l in code_match_lines(sf, pat, false) {
            out.push(Diagnostic::new(
                "L005",
                path,
                l,
                format!(
                    "allocating call `{pat}` in a hot module — steady-state kernels must not \
                     allocate (counting-allocator guarantee); use pool scratch or a waiver"
                ),
            ));
        }
    }
    out
}

// --- L006 ------------------------------------------------------------------

fn l006_relaxed_ordering(path: &str, sf: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    if Config::path_in(path, &cfg.relaxed_allowed) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for l in code_match_lines(sf, "Ordering::Relaxed", true) {
        out.push(Diagnostic::new(
            "L006",
            path,
            l,
            "`Ordering::Relaxed` outside the pool crate — waive with the memory-ordering \
             argument (why no acquire/release pairing is needed)"
                .into(),
        ));
    }
    out
}

// --- L007 ------------------------------------------------------------------

const DOC_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "unsafe",
];

fn l007_pub_docs(path: &str, sf: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    if !Config::path_in(path, &cfg.docs_crates) || !path.contains("/src/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (l, code) in sf.code_lines.iter().enumerate() {
        let trimmed = code.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        // `pub(crate)`/`pub(super)` are not part of the public API surface.
        let keyword = rest.split_whitespace().next().unwrap_or("");
        if !DOC_ITEM_KEYWORDS.contains(&keyword) {
            continue;
        }
        if sf.test_lines.get(l).copied().unwrap_or(false) {
            continue;
        }
        if !has_doc_above(sf, l) {
            let item: String = rest
                .chars()
                .take_while(|c| *c != '{' && *c != '(' && *c != '<' && *c != ';')
                .collect();
            out.push(Diagnostic::new(
                "L007",
                path,
                l,
                format!("public item `pub {}` has no doc comment", item.trim()),
            ));
        }
    }
    out
}

/// Walks up over attributes/derives looking for a `///` doc line (or a
/// `/** … */` block, which the lexer records as comment text on its lines).
fn has_doc_above(sf: &SourceFile, line: usize) -> bool {
    let mut l = line;
    while l > 0 {
        l -= 1;
        let raw = sf.raw_lines[l].trim_start();
        if raw.starts_with("///") || raw.starts_with("#[doc") || raw.starts_with("/**") {
            return true;
        }
        let code = sf.code(l).trim();
        let is_attr = code.starts_with("#[") || code.ends_with(")]") || code.ends_with("]");
        let is_comment_only = code.is_empty() && !sf.line_comments[l].trim().is_empty();
        if !(is_attr || is_comment_only) {
            return false;
        }
    }
    false
}

// --- L008 ------------------------------------------------------------------

fn l008_fault_points(path: &str, sf: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    if !Config::path_in(path, &cfg.hot_paths) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for l in code_match_lines(sf, "fault_point", false) {
        out.push(Diagnostic::new(
            "L008",
            path,
            l,
            "fault-injection site in a hot-path module — waive with the disabled-cost \
             argument (why one relaxed load per visit is acceptable here)"
                .into(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_with(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
        lint_file(path, &SourceFile::scan(src), cfg)
    }

    fn hot_cfg(path: &str) -> Config {
        Config {
            hot_paths: vec![path.to_string()],
            ..Config::default()
        }
    }

    #[test]
    fn waiver_on_preceding_comment_line_covers_next_code_line() {
        let cfg = hot_cfg("crates/k/src/hot.rs");
        let src = "// BOUNDS: all indices below len\n\
                   // lint:allow(L005): startup-only table\n\
                   fn f() { let v = Vec::new(); }\n";
        let diags = lint_with("crates/k/src/hot.rs", src, &cfg);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn waiver_without_reason_is_reported() {
        let cfg = hot_cfg("crates/k/src/hot.rs");
        let src = "// BOUNDS: fine\n// lint:allow(L005)\nfn f() { let v = Vec::new(); }\n";
        let diags = lint_with("crates/k/src/hot.rs", src, &cfg);
        assert!(diags
            .iter()
            .any(|d| d.lint == "L000" && d.message.contains("no reason")));
        // The violation itself is NOT waived by a malformed waiver.
        assert!(diags.iter().any(|d| d.lint == "L005"));
    }

    #[test]
    fn unused_waivers_are_reported() {
        let cfg = Config::default();
        let src = "// lint:allow(L002): not actually spawning\nfn f() {}\n";
        let diags = lint_with("crates/k/src/a.rs", src, &cfg);
        assert!(diags
            .iter()
            .any(|d| d.lint == "L000" && d.message.contains("unused waiver")));
    }

    #[test]
    fn waivers_for_disabled_lints_are_dormant_not_unused() {
        let cfg = Config {
            disabled: vec!["L006".into()],
            ..Config::default()
        };
        let src = "// lint:allow(L006): single-writer counter, no pairing needed\n\
                   fn f() { x.load(Ordering::Relaxed); }\n";
        let diags = lint_with("crates/k/src/a.rs", src, &cfg);
        assert!(diags.is_empty(), "{diags:?}");
        // Re-enabling the lint makes the same waiver live again.
        let diags = lint_with("crates/k/src/a.rs", src, &Config::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn waiver_on_macro_invocation_line_covers_its_diagnostics() {
        let cfg = hot_cfg("crates/k/src/hot.rs");
        // Trailing waiver on the macro's own line.
        let trailing = "fn f() { resilience::fault_point!(\"k.s\"); } \
                        // lint:allow(L008): one relaxed load, off the inner loop\n";
        let diags = lint_with("crates/k/src/hot.rs", trailing, &cfg);
        assert!(diags.is_empty(), "{diags:?}");
        // Standalone waiver above a multi-line macro invocation: the
        // diagnostic attributes to the macro's first line, which the
        // waiver covers.
        let multiline = "// lint:allow(L008): one relaxed load, off the inner loop\n\
                         resilience::fault_point!(\n    \"k.site\"\n);\n";
        let diags = lint_with("crates/k/src/hot.rs", multiline, &cfg);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn waiver_syntax_quoted_in_doc_comments_is_inert() {
        let cfg = Config::default();
        let src = "//! Waive with `lint:allow(<ID>): <reason>`.\n\
                   /// Example: `// lint:allow(L005): startup table`.\n\
                   pub fn f() {}\n";
        let diags = lint_with("crates/k/src/a.rs", src, &cfg);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn file_scope_waiver_covers_every_line() {
        let cfg = Config::default();
        let src = "// lint:allow-file(L006): single-writer counters throughout\n\
                   fn a() { x.load(Ordering::Relaxed); }\n\
                   fn b() { y.load(Ordering::Relaxed); }\n";
        let diags = lint_with("crates/k/src/a.rs", src, &cfg);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn expect_with_invariant_message_is_compliant() {
        let cfg = hot_cfg("crates/k/src/hot.rs");
        let src = "// BOUNDS: no indexing here\n\
                   fn f() { g().expect(\"partition always has a first element\"); }\n";
        assert!(lint_with("crates/k/src/hot.rs", src, &cfg).is_empty());
        let bad = "// BOUNDS: no indexing here\nfn f() { g().expect(\"oops\"); }\n";
        let diags = lint_with("crates/k/src/hot.rs", bad, &cfg);
        assert!(diags.iter().any(|d| d.lint == "L003"));
    }

    #[test]
    fn cfg_test_code_is_exempt_from_hot_path_lints() {
        let cfg = hot_cfg("crates/k/src/hot.rs");
        let src = "// BOUNDS: prod indexes nothing\n\
                   fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { let v: Vec<u32> = (0..3).collect(); v[0]; x.unwrap(); }\n\
                   }\n";
        let diags = lint_with("crates/k/src/hot.rs", src, &cfg);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn indexing_without_bounds_comment_fires_and_comment_silences() {
        let cfg = hot_cfg("crates/k/src/hot.rs");
        let bad = "fn f(x: &[f32]) -> f32 { x[0] }\n";
        assert!(lint_with("crates/k/src/hot.rs", bad, &cfg)
            .iter()
            .any(|d| d.lint == "L003" && d.message.contains("BOUNDS")));
        let good =
            "// BOUNDS: callers guarantee non-empty input\nfn f(x: &[f32]) -> f32 { x[0] }\n";
        assert!(lint_with("crates/k/src/hot.rs", good, &cfg).is_empty());
    }

    #[test]
    fn l004_flags_missing_check_and_accepts_helper() {
        let cfg = Config {
            dim_check_crates: vec!["crates/k".into()],
            dim_check_helpers: vec!["check".into()],
            ..Config::default()
        };
        let bad = "pub fn spmm_into(a: &A, out: &mut B) -> R {\n    for i in 0..a.n { out.x += 1; }\n    Ok(())\n}\n";
        assert!(lint_with("crates/k/src/m.rs", bad, &cfg)
            .iter()
            .any(|d| d.lint == "L004"));
        let good = "pub fn spmm_into(a: &A, out: &mut B) -> R {\n    check(\"spmm\", a)?;\n    for i in 0..a.n { out.x += 1; }\n    Ok(())\n}\n";
        assert!(lint_with("crates/k/src/m.rs", good, &cfg).is_empty());
        // Helper appearing only AFTER the loop does not count.
        let late = "pub fn spmm_into(a: &A, out: &mut B) -> R {\n    for i in 0..a.n { out.x += 1; }\n    check(\"spmm\", a)?;\n    Ok(())\n}\n";
        assert!(lint_with("crates/k/src/m.rs", late, &cfg)
            .iter()
            .any(|d| d.lint == "L004"));
    }

    #[test]
    fn l001_accepts_safety_above_attributes_and_same_line() {
        let cfg = Config::default();
        let ok = "// SAFETY: pointer is valid for the call\n#[inline]\nunsafe fn f() {}\n";
        assert!(lint_with("crates/k/src/a.rs", ok, &cfg).is_empty());
        let trailing = "let x = unsafe { p.read() }; // SAFETY: p is aligned and live\n";
        assert!(lint_with("crates/k/src/a.rs", trailing, &cfg).is_empty());
        let bad = "fn g() {}\nunsafe fn f() {}\n";
        assert!(lint_with("crates/k/src/a.rs", bad, &cfg)
            .iter()
            .any(|d| d.lint == "L001"));
    }

    #[test]
    fn l008_flags_unwaived_fault_points_in_hot_modules_only() {
        let cfg = hot_cfg("crates/k/src/hot.rs");
        let src = "fn f() { resilience::fault_point!(\"k.site\"); }\n";
        assert!(lint_with("crates/k/src/hot.rs", src, &cfg)
            .iter()
            .any(|d| d.lint == "L008"));
        // A waiver with a disabled-cost argument silences it.
        let waived = "// lint:allow(L008): one relaxed load per call, off the inner loop\n\
                      fn f() { resilience::fault_point!(\"k.site\"); }\n";
        assert!(lint_with("crates/k/src/hot.rs", waived, &cfg).is_empty());
        // Outside the hot list the lint does not apply at all.
        assert!(lint_with("crates/k/src/cold.rs", src, &cfg).is_empty());
    }

    #[test]
    fn l007_requires_docs_on_plain_pub_items_only() {
        let cfg = Config {
            docs_crates: vec!["crates/k".into()],
            ..Config::default()
        };
        let src =
            "/// Documented.\npub fn a() {}\npub fn b() {}\npub(crate) fn c() {}\npub use x::y;\n";
        let diags = lint_with("crates/k/src/m.rs", src, &cfg);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("pub fn b"));
    }
}
