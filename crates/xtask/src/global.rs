//! Workspace-level concurrency lints (L009–L012).
//!
//! Unlike the per-file lints in [`crate::lints`], these four reason over
//! the whole file set at once, using the call graph from
//! [`crate::symbols`]:
//!
//! * **L009** — transitive hot-path closure: every function reachable from
//!   a `[hot] paths` module inherits the panic-freedom (L003) and
//!   zero-alloc (L005) rules, closing the one-file loophole where a hot
//!   kernel calls an allocating helper defined elsewhere.
//! * **L010** — atomics happens-before audit: every `Acquire`/`Release`/
//!   `AcqRel` site must name its pairing site in a `// PAIRS: <label>`
//!   comment; labels are matched bidirectionally across the workspace
//!   (each group needs both an acquire side and a release side).
//!   `SeqCst` always requires a waiver stating why neither pairing
//!   discipline nor a weaker order suffices.
//! * **L011** — lock-order and poisoning discipline: per-crate, the
//!   lexical lock-acquisition order inside each function induces a
//!   directed graph over lock names; cycles are flagged. Bare
//!   `.unwrap()`/`.expect()` on lock results (and ad-hoc
//!   `unwrap_or_else(|e| e.into_inner())` poisoning recovery) outside the
//!   `[locks] helpers` files must go through `resilience::audit`.
//! * **L012** — exchange-mutation coverage: in `[exchange] paths` files,
//!   every write to a named exchange buffer must be dominated by a
//!   `fault_point!` site — directly earlier in the function, or via an
//!   earlier call whose callee transitively contains one — so chaos
//!   testing provably covers all cross-shard traffic.
//!
//! All four skip test code outright (test paths and `cfg(test)` regions):
//! they guard the production concurrency story, and e.g. a PAIRS group
//! must not be satisfiable by a test-only site.
//!
//! Diagnostics are returned per file and merged into the per-file pass in
//! [`crate::lints::lint_file_with`], so the ordinary waiver machinery
//! applies to them unchanged.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::config::Config;
use crate::lexer::{find_boundary, SourceFile};
use crate::lints::{self, Diagnostic};
use crate::symbols::{FnId, Workspace};

/// Buffer-mutating methods L012 treats as exchange writes.
const EXCHANGE_MUTATORS: &[&str] = &["row_mut", "resize_for_overwrite", "copy_from", "fill"];

/// Runs every workspace-level lint, returning raw (pre-waiver)
/// diagnostics grouped by file path.
pub fn lint_globals(
    files: &[(String, SourceFile)],
    ws: &Workspace,
    cfg: &Config,
) -> HashMap<String, Vec<Diagnostic>> {
    let mut out: HashMap<String, Vec<Diagnostic>> = HashMap::new();
    let by_path: HashMap<&str, &SourceFile> =
        files.iter().map(|(p, sf)| (p.as_str(), sf)).collect();
    let mut push = |d: Diagnostic| out.entry(d.file.clone()).or_default().push(d);

    if !cfg.disabled.iter().any(|d| d == "L009") {
        l009_hot_closure(&by_path, ws, cfg, &mut push);
    }
    if !cfg.disabled.iter().any(|d| d == "L010") {
        l010_pairing(files, &mut push);
    }
    if !cfg.disabled.iter().any(|d| d == "L011") {
        l011_locks(files, ws, cfg, &mut push);
    }
    if !cfg.disabled.iter().any(|d| d == "L012") {
        l012_exchange(&by_path, ws, cfg, &mut push);
    }
    out
}

/// Is this line production code (not a test path, not a `cfg(test)` line)?
fn prod_line(path: &str, sf: &SourceFile, line: usize) -> bool {
    !lints::is_test_path(path) && !sf.test_lines.get(line).copied().unwrap_or(false)
}

// --- L009 ------------------------------------------------------------------

fn l009_hot_closure(
    by_path: &HashMap<&str, &SourceFile>,
    ws: &Workspace,
    cfg: &Config,
    push: &mut dyn FnMut(Diagnostic),
) {
    let seeds: Vec<FnId> = (0..ws.fns().len())
        .filter(|&id| {
            let f = &ws.fns()[id];
            !f.is_test && Config::path_in(&f.file, &cfg.hot_paths)
        })
        .collect();
    if seeds.is_empty() {
        return;
    }
    let (reach, prev) = ws.reach_with_preds(seeds);
    // Overlapping spans (nested fns) would double-report; dedup by site.
    let mut seen: HashSet<(String, usize, &'static str)> = HashSet::new();
    let mut flagged: Vec<FnId> = reach.into_iter().collect();
    flagged.sort_unstable();
    for id in flagged {
        let f = &ws.fns()[id];
        // Hot files themselves are already under per-file L003/L005.
        if Config::path_in(&f.file, &cfg.hot_paths) {
            continue;
        }
        let Some(sf) = by_path.get(f.file.as_str()) else {
            continue;
        };
        let chain = ws.chain_label(&prev, id);
        for line in f.start_line..=f.end_line.min(sf.nlines().saturating_sub(1)) {
            if !prod_line(&f.file, sf, line) {
                continue;
            }
            let code = sf.code(line);
            let mut hit = |what: &'static str, detail: String| {
                if seen.insert((f.file.clone(), line, what)) {
                    push(Diagnostic::new(
                        "L009",
                        &f.file,
                        line,
                        format!(
                            "{detail} in `{}`, which is reachable from a hot path \
                             (call chain: {chain}) — hot-path closure inherits the \
                             panic-freedom/zero-alloc rules",
                            f.name
                        ),
                    ));
                }
            };
            if code.contains(".unwrap()") {
                hit("unwrap", "`.unwrap()`".to_string());
            }
            if let Some(at) = code.find(".expect(") {
                if !lints::expect_states_invariant(&sf.raw_lines[line], at) {
                    hit(
                        "expect",
                        "`.expect()` without a multi-word invariant message".to_string(),
                    );
                }
            }
            for pat in lints::PANIC_MACROS {
                if find_boundary(code, pat, false).is_some() {
                    hit("panic", format!("`{pat}(…)`"));
                }
            }
            for pat in lints::ALLOC_PATTERNS {
                if find_boundary(code, pat, false).is_some() {
                    hit("alloc", format!("allocating call `{pat}`"));
                }
            }
        }
    }
}

// --- L010 ------------------------------------------------------------------

/// One `PAIRS:`-labeled atomic site.
struct PairSite {
    file: String,
    line: usize,
    acquires: bool,
    releases: bool,
}

fn l010_pairing(files: &[(String, SourceFile)], push: &mut dyn FnMut(Diagnostic)) {
    let mut groups: BTreeMap<String, Vec<PairSite>> = BTreeMap::new();
    for (path, sf) in files {
        for (line, code) in sf.code_lines.iter().enumerate() {
            if !prod_line(path, sf, line) {
                continue;
            }
            if find_boundary(code, "Ordering::SeqCst", true).is_some() {
                push(Diagnostic::new(
                    "L010",
                    path,
                    line,
                    "`Ordering::SeqCst` — sequential consistency is almost never the \
                     actual requirement; waive with the argument for why no \
                     acquire/release pairing (with a `// PAIRS:` label) suffices"
                        .into(),
                ));
            }
            let acquires = find_boundary(code, "Ordering::Acquire", true).is_some()
                || find_boundary(code, "Ordering::AcqRel", true).is_some();
            let releases = find_boundary(code, "Ordering::Release", true).is_some()
                || find_boundary(code, "Ordering::AcqRel", true).is_some();
            if !(acquires || releases) {
                continue;
            }
            match pairs_label(sf, line) {
                Some(label) => groups.entry(label).or_default().push(PairSite {
                    file: path.clone(),
                    line,
                    acquires,
                    releases,
                }),
                None => push(Diagnostic::new(
                    "L010",
                    path,
                    line,
                    "acquire/release site without a `// PAIRS: <label>` comment naming \
                     its pairing site — the happens-before edge must be auditable"
                        .into(),
                )),
            }
        }
    }
    for (label, sites) in &groups {
        let acquire_side = sites.iter().any(|s| s.acquires);
        let release_side = sites.iter().any(|s| s.releases);
        let problem = if sites.len() < 2 {
            Some("names no other site (a happens-before edge needs two ends)")
        } else if !acquire_side {
            Some("has no acquire-side site (Acquire or AcqRel)")
        } else if !release_side {
            Some("has no release-side site (Release or AcqRel)")
        } else {
            None
        };
        if let Some(why) = problem {
            for s in sites {
                push(Diagnostic::new(
                    "L010",
                    &s.file,
                    s.line,
                    format!("`PAIRS: {label}` group {why}"),
                ));
            }
        }
    }
}

/// The `PAIRS: <label>` tag on `line`'s comment, or in the contiguous
/// comment/attribute block directly above (mirroring how `SAFETY:` is
/// attached in L001).
fn pairs_label(sf: &SourceFile, line: usize) -> Option<String> {
    if let Some(l) = extract_tag(&sf.line_comments[line]) {
        return Some(l);
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        let code = sf.code(l).trim();
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        if !(code.is_empty() || is_attr) {
            return None;
        }
        if let Some(label) = extract_tag(&sf.line_comments[l]) {
            return Some(label);
        }
        if sf.raw_lines[l].trim().is_empty() {
            return None;
        }
    }
    None
}

/// First whitespace-delimited token after `PAIRS:` in a comment.
fn extract_tag(comment: &str) -> Option<String> {
    let at = comment.find("PAIRS:")?;
    let label: String = comment[at + "PAIRS:".len()..]
        .trim_start()
        .chars()
        .take_while(|c| !c.is_whitespace())
        .collect();
    (!label.is_empty()).then_some(label)
}

// --- L011 ------------------------------------------------------------------

fn l011_locks(
    files: &[(String, SourceFile)],
    ws: &Workspace,
    cfg: &Config,
    push: &mut dyn FnMut(Diagnostic),
) {
    // Poisoning discipline: raw lock-result handling outside audit helpers.
    const POISON_PATTERNS: &[&str] = &[
        ".lock().unwrap",
        ".lock().expect(",
        ".read().unwrap",
        ".write().unwrap",
        ".get_mut().unwrap",
    ];
    for (path, sf) in files {
        if Config::path_in(path, &cfg.lock_helpers) {
            continue;
        }
        for (line, code) in sf.code_lines.iter().enumerate() {
            if !prod_line(path, sf, line) {
                continue;
            }
            let adhoc_recovery = code.contains("unwrap_or_else") && code.contains("into_inner");
            if adhoc_recovery || POISON_PATTERNS.iter().any(|p| code.contains(p)) {
                push(Diagnostic::new(
                    "L011",
                    path,
                    line,
                    "raw poisoned-lock handling — route lock acquisition through \
                     `resilience::audit` (recover/recover_wait/recover_into/recover_mut) \
                     so recoveries are counted, or waive with the soundness argument"
                        .into(),
                ));
            }
        }
    }

    // Lock-order discipline: per-crate acquisition graph over lock names.
    // witness: (file, line) of the second acquisition that created the edge.
    let mut edges: BTreeMap<String, BTreeMap<(String, String), (String, usize)>> = BTreeMap::new();
    for (caller, f) in ws.fns().iter().enumerate() {
        let _ = caller;
        if f.is_test {
            continue;
        }
        let Some(sf) = files.iter().find(|(p, _)| p == &f.file).map(|(_, sf)| sf) else {
            continue;
        };
        let mut seq: Vec<(String, usize)> = Vec::new();
        for line in f.start_line..=f.end_line.min(sf.nlines().saturating_sub(1)) {
            if !prod_line(&f.file, sf, line) {
                continue;
            }
            for name in lock_receivers(sf.code(line)) {
                seq.push((name, line));
            }
        }
        let krate = crate::symbols::crate_of(&f.file);
        for i in 0..seq.len() {
            for j in (i + 1)..seq.len() {
                if seq[i].0 != seq[j].0 {
                    edges
                        .entry(krate.clone())
                        .or_default()
                        .entry((seq[i].0.clone(), seq[j].0.clone()))
                        .or_insert((f.file.clone(), seq[j].1));
                }
            }
        }
    }
    for (krate, graph) in &edges {
        for cycle in find_cycles(graph) {
            let (witness_file, witness_line) = &graph[&(cycle[0].clone(), cycle[1].clone())];
            push(Diagnostic::new(
                "L011",
                witness_file,
                *witness_line,
                format!(
                    "lock-order cycle in {krate}: {} — two functions acquire these \
                     locks in conflicting orders, which can deadlock",
                    cycle.join(" -> ")
                ),
            ));
        }
    }
}

/// Lock names acquired on one scrubbed code line: `.lock()` receivers,
/// bare `lock(&x)` helper calls, and `audit::recover("site", &x)` calls.
fn lock_receivers(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = code[from..].find(".lock(") {
        let at = from + rel;
        from = at + 6;
        if let Some(name) = receiver_before(code, at) {
            out.push(name);
        }
    }
    // Bare `lock(...)` helper (not `.lock(`, not `xlock(`).
    let mut pos = 0usize;
    while let Some(rel) = find_boundary(&code[pos..], "lock", true) {
        let at = pos + rel;
        pos = at + 4;
        if at > 0 && bytes[at - 1] == b'.' {
            continue;
        }
        if !code[at + 4..].starts_with('(') {
            continue;
        }
        if let Some(name) = normalize_lock_expr(first_arg(&code[at + 5..])) {
            out.push(name);
        }
    }
    // `recover("site", &x)` — the audit helper's lock argument is second.
    let mut pos = 0usize;
    while let Some(rel) = find_boundary(&code[pos..], "recover", true) {
        let at = pos + rel;
        pos = at + 7;
        let Some(tail) = code[at + 7..].strip_prefix('(') else {
            continue;
        };
        let Some(comma) = tail.find(',') else {
            continue;
        };
        if let Some(name) = normalize_lock_expr(first_arg(&tail[comma + 1..])) {
            out.push(name);
        }
    }
    out
}

/// The receiver expression ending just before the `.` at byte `dot_at`,
/// normalized to a lock name.
fn receiver_before(code: &str, dot_at: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = dot_at;
    while i > 0 {
        let b = bytes[i - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            i -= 1;
        } else if b == b']' {
            // Skip the index expression to its opening bracket.
            let mut depth = 0i32;
            while i > 0 {
                match bytes[i - 1] {
                    b']' => depth += 1,
                    b'[' => {
                        depth -= 1;
                        if depth == 0 {
                            i -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i -= 1;
            }
        } else {
            break;
        }
    }
    normalize_lock_expr(&code[i..dot_at])
}

/// Text of the first argument (up to a top-level `,` or `)`).
fn first_arg(s: &str) -> &str {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' if depth > 0 => depth -= 1,
            ')' | ',' => return &s[..i],
            _ => {}
        }
    }
    s
}

/// Normalizes a lock/buffer expression to its identifying name: strips
/// borrows and index brackets and takes the *last* path segment, so
/// `&self.stages[b]` → `stages` and a guard-deref write like `rb.hblk`
/// → `hblk` (the buffer, not the guard binding).
fn normalize_lock_expr(expr: &str) -> Option<String> {
    let mut e = expr.trim();
    loop {
        let next = e
            .trim_start_matches(['&', '*', ' '])
            .trim_start_matches("mut ")
            .trim_start();
        if next == e {
            break;
        }
        e = next;
    }
    let ident_prefix = |s: &str| -> String {
        s.chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect()
    };
    let name = e
        .rsplit('.')
        .map(|seg| ident_prefix(seg))
        .find(|n| !n.is_empty())?;
    (!name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit())).then_some(name)
}

/// Enumerates one representative cycle per strongly-connected component
/// with more than one node, as a lock-name path `a -> b -> … -> a`.
fn find_cycles(graph: &BTreeMap<(String, String), (String, usize)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in graph.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut cycles = Vec::new();
    let mut reported: HashSet<&str> = HashSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        if reported.contains(start) {
            continue;
        }
        // DFS from `start` looking for a path back to `start`.
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        let mut visited: HashSet<&str> = HashSet::new();
        while let Some((node, path)) = stack.pop() {
            for &next in adj.get(node).map_or(&Vec::new(), |v| v) {
                if next == start {
                    let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    cycle.push(start.to_string());
                    for n in &path {
                        reported.insert(adj.keys().find(|k| **k == *n).copied().unwrap_or(start));
                    }
                    cycles.push(cycle);
                    stack.clear();
                    break;
                }
                if visited.insert(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    cycles
}

// --- L012 ------------------------------------------------------------------

fn l012_exchange(
    by_path: &HashMap<&str, &SourceFile>,
    ws: &Workspace,
    cfg: &Config,
    push: &mut dyn FnMut(Diagnostic),
) {
    for path in &cfg.exchange_paths {
        let Some(sf) = by_path.get(path.as_str()) else {
            continue;
        };
        for &id in ws.fns_in_file(path) {
            let f = &ws.fns()[id];
            if f.is_test {
                continue;
            }
            // Lines inside this fn that establish fault coverage: a direct
            // fault-point site, or a call into a fn that transitively
            // contains one.
            let mut covered_from: Option<usize> = None;
            for line in f.start_line..=f.end_line.min(sf.nlines().saturating_sub(1)) {
                if sf.code(line).contains("fault_point") {
                    covered_from = Some(covered_from.map_or(line, |c| c.min(line)));
                }
            }
            for call in &f.calls {
                if ws
                    .resolve(id, call)
                    .into_iter()
                    .any(|t| ws.reaches_fault_point(t))
                {
                    covered_from = Some(covered_from.map_or(call.line, |c| c.min(call.line)));
                }
            }
            for line in f.start_line..=f.end_line.min(sf.nlines().saturating_sub(1)) {
                if !prod_line(path, sf, line) {
                    continue;
                }
                let code = sf.code(line);
                for mutator in EXCHANGE_MUTATORS {
                    let pat = format!(".{mutator}(");
                    let mut from = 0usize;
                    while let Some(rel) = code[from..].find(&pat) {
                        let at = from + rel;
                        from = at + pat.len();
                        let Some(buf) = receiver_before(code, at) else {
                            continue;
                        };
                        if !cfg.exchange_buffers.iter().any(|b| b == &buf) {
                            continue;
                        }
                        if !covered_from.is_some_and(|c| c <= line) {
                            push(Diagnostic::new(
                                "L012",
                                path,
                                line,
                                format!(
                                    "write `{buf}.{mutator}(…)` in `{}` is not dominated by a \
                                     `fault_point!` site — every exchange-buffer mutation must \
                                     be reachable by chaos injection (add a fault point before \
                                     it, or route the copy through a fault-pointed helper)",
                                    f.name
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn run_globals(files: &[(&str, &str)], cfg: &Config) -> HashMap<String, Vec<Diagnostic>> {
        let scanned: Vec<(String, SourceFile)> = files
            .iter()
            .map(|(p, src)| (p.to_string(), SourceFile::scan(src)))
            .collect();
        let ws = Workspace::build(&scanned);
        lint_globals(&scanned, &ws, cfg)
    }

    fn all(d: &HashMap<String, Vec<Diagnostic>>) -> Vec<&Diagnostic> {
        let mut v: Vec<&Diagnostic> = d.values().flatten().collect();
        v.sort_by_key(|d| (d.file.clone(), d.line));
        v
    }

    #[test]
    fn l009_flags_allocating_helper_two_hops_from_hot() {
        let cfg = Config {
            hot_paths: vec!["crates/k/src/hot.rs".into()],
            ..Config::default()
        };
        let d = run_globals(
            &[
                ("crates/k/src/hot.rs", "pub fn kernel() { step(); }\n"),
                (
                    "crates/k/src/helpers.rs",
                    "pub fn step() { deep(); }\npub fn deep() -> Vec<u32> {\n    let v = Vec::new();\n    x.unwrap();\n    v\n}\nfn unrelated() { let v = Vec::new(); }\n",
                ),
            ],
            &cfg,
        );
        let hits = all(&d);
        assert!(hits
            .iter()
            .any(|d| d.lint == "L009" && d.message.contains("Vec::new") && d.line == 3));
        assert!(hits.iter().any(|d| d.lint == "L009"
            && d.message.contains(".unwrap()")
            && d.message.contains("kernel -> step -> deep")));
        // `unrelated` is not reachable from the hot seed.
        assert!(!hits.iter().any(|d| d.line == 7));
    }

    #[test]
    fn l010_requires_pairs_labels_matched_across_files() {
        let cfg = Config::default();
        // Properly paired across two files.
        let good = run_globals(
            &[
                (
                    "crates/a/src/x.rs",
                    "fn f() {\n    // PAIRS: done.flag\n    flag.store(true, Ordering::Release);\n}\n",
                ),
                (
                    "crates/a/src/y.rs",
                    "fn g() {\n    flag.load(Ordering::Acquire); // PAIRS: done.flag\n}\n",
                ),
            ],
            &cfg,
        );
        assert!(all(&good).is_empty(), "{good:?}");
        // Release side downgraded: the acquire's group loses its partner.
        let bad = run_globals(
            &[
                (
                    "crates/a/src/x.rs",
                    "fn f() {\n    flag.store(true, Ordering::Relaxed);\n}\n",
                ),
                (
                    "crates/a/src/y.rs",
                    "fn g() {\n    flag.load(Ordering::Acquire); // PAIRS: done.flag\n}\n",
                ),
            ],
            &cfg,
        );
        assert!(all(&bad)
            .iter()
            .any(|d| d.lint == "L010" && d.message.contains("names no other site")));
    }

    #[test]
    fn l010_unlabeled_and_seqcst_sites_are_flagged() {
        let cfg = Config::default();
        let d = run_globals(
            &[(
                "crates/a/src/x.rs",
                "fn f() {\n    n.load(Ordering::Acquire);\n    m.store(1, Ordering::SeqCst);\n}\n",
            )],
            &cfg,
        );
        let hits = all(&d);
        assert!(hits
            .iter()
            .any(|d| d.lint == "L010" && d.message.contains("PAIRS") && d.line == 2));
        assert!(hits
            .iter()
            .any(|d| d.lint == "L010" && d.message.contains("SeqCst") && d.line == 3));
    }

    #[test]
    fn l010_group_missing_one_side_is_flagged() {
        let cfg = Config::default();
        let d = run_globals(
            &[(
                "crates/a/src/x.rs",
                "fn f() {\n    a.load(Ordering::Acquire); // PAIRS: only.acquires\n    b.load(Ordering::Acquire); // PAIRS: only.acquires\n}\n",
            )],
            &cfg,
        );
        assert!(all(&d)
            .iter()
            .any(|d| d.lint == "L010" && d.message.contains("no release-side")));
    }

    #[test]
    fn l011_poisoning_outside_audit_helpers_is_flagged() {
        let cfg = Config {
            lock_helpers: vec!["crates/resilience/src/audit.rs".into()],
            ..Config::default()
        };
        let d = run_globals(
            &[
                (
                    "crates/a/src/x.rs",
                    "fn f() {\n    let g = m.lock().unwrap();\n    let h = n.lock().unwrap_or_else(|e| e.into_inner());\n}\n",
                ),
                (
                    "crates/resilience/src/audit.rs",
                    "pub fn recover() {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n}\n",
                ),
            ],
            &cfg,
        );
        let hits = all(&d);
        assert_eq!(
            hits.iter().filter(|d| d.lint == "L011").count(),
            2,
            "{hits:?}"
        );
        assert!(hits.iter().all(|d| d.file == "crates/a/src/x.rs"));
    }

    #[test]
    fn l011_lock_order_cycle_is_flagged_and_consistent_order_is_clean() {
        let cfg = Config::default();
        let bad = run_globals(
            &[(
                "crates/a/src/x.rs",
                "fn f(a: &M, b: &M) {\n    let ga = a.lock();\n    let gb = b.lock();\n}\nfn g(a: &M, b: &M) {\n    let gb = b.lock();\n    let ga = a.lock();\n}\n",
            )],
            &cfg,
        );
        assert!(all(&bad)
            .iter()
            .any(|d| d.lint == "L011" && d.message.contains("lock-order cycle")));
        let good = run_globals(
            &[(
                "crates/a/src/x.rs",
                "fn f(a: &M, b: &M) {\n    let ga = a.lock();\n    let gb = b.lock();\n}\nfn g(a: &M, b: &M) {\n    let ga = a.lock();\n    let gb = b.lock();\n}\n",
            )],
            &cfg,
        );
        assert!(all(&good).is_empty(), "{good:?}");
    }

    #[test]
    fn l011_normalizes_receivers_through_self_and_indexing() {
        assert_eq!(
            lock_receivers("let g = self.stages[b].lock();"),
            vec!["stages".to_string()]
        );
        assert_eq!(
            lock_receivers("let g = lock(&self.rows[i]);"),
            vec!["rows".to_string()]
        );
        assert_eq!(
            lock_receivers("let g = audit::recover(\"site\", &REGISTRY);"),
            // The scrubbed string literal leaves spaces; second arg is the lock.
            vec!["REGISTRY".to_string()]
        );
    }

    #[test]
    fn l012_flags_uncovered_exchange_writes_and_accepts_dominating_fault_points() {
        let cfg = Config {
            exchange_paths: vec!["crates/s/src/exec.rs".into()],
            exchange_buffers: vec!["stage".into()],
            ..Config::default()
        };
        let bad = run_globals(
            &[(
                "crates/s/src/exec.rs",
                "pub fn gather(stage: &mut M) {\n    stage.row_mut(0).copy_from_slice(&[1.0]);\n}\n",
            )],
            &cfg,
        );
        assert!(all(&bad)
            .iter()
            .any(|d| d.lint == "L012" && d.message.contains("stage.row_mut")));
        let good = run_globals(
            &[(
                "crates/s/src/exec.rs",
                "pub fn gather(stage: &mut M) {\n    resilience::fault_point!(\"s.x\");\n    stage.row_mut(0).copy_from_slice(&[1.0]);\n}\n",
            )],
            &cfg,
        );
        assert!(all(&good).is_empty(), "{good:?}");
    }

    #[test]
    fn l012_coverage_propagates_through_callees() {
        let cfg = Config {
            exchange_paths: vec!["crates/s/src/runner.rs".into()],
            exchange_buffers: vec!["mid".into()],
            ..Config::default()
        };
        let d = run_globals(
            &[
                (
                    "crates/s/src/runner.rs",
                    "fn layer(mid: &mut M) {\n    faulty_copy();\n    mid.row_mut(0).copy_from_slice(&[1.0]);\n}\n",
                ),
                (
                    "crates/s/src/exec.rs",
                    "pub fn faulty_copy() {\n    resilience::fault_point!(\"s.copy\");\n}\n",
                ),
            ],
            &cfg,
        );
        assert!(all(&d).is_empty(), "{d:?}");
    }

    #[test]
    fn globals_skip_test_code() {
        let cfg = Config {
            hot_paths: vec!["crates/k/src/hot.rs".into()],
            ..Config::default()
        };
        let d = run_globals(
            &[
                ("crates/k/src/hot.rs", "pub fn kernel() { helper(); }\n"),
                (
                    "crates/k/src/helpers.rs",
                    "pub fn helper() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        x.load(Ordering::SeqCst);\n        y.lock().unwrap();\n    }\n}\n",
                ),
            ],
            &cfg,
        );
        assert!(all(&d).is_empty(), "{d:?}");
    }
}
