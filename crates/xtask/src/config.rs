//! `lint.toml` — per-crate scoping for the repo lints.
//!
//! The environment is offline and `toml`/`serde` are not vendored as full
//! implementations, so this module carries a minimal TOML-subset parser:
//! `[section]` headers, `key = "string"`, `key = true/false`, and string
//! arrays (which may span multiple lines). That subset is exactly what the
//! schema below needs — anything fancier in the file is a hard error, on
//! the theory that a silently misparsed lint config is worse than none.
//!
//! Schema (all paths workspace-relative, `/`-separated):
//!
//! ```toml
//! [scan]
//! roots = ["crates", "src"]        # directories to walk for .rs files
//! skip  = ["crates/xtask/fixtures"] # pruned subtrees (target/vendor always)
//!
//! [tests]
//! exempt = ["L003", "L005"]        # lints that ignore test/bench code
//!
//! [spawn]                           # L002
//! allowed = ["crates/pool"]        # crates allowed to spawn threads
//!
//! [hot]                             # L003 + L005 scope
//! paths = ["crates/kernels/src/spmm.rs"]
//!
//! [dim-check]                       # L004
//! crates  = ["crates/kernels"]
//! helpers = ["check", "check_shapes"]
//!
//! [relaxed]                         # L006
//! allowed = ["crates/pool"]        # crates allowed Ordering::Relaxed
//!
//! [docs]                            # L007
//! crates = ["crates/kernels"]      # library crates requiring doc comments
//!
//! [locks]                           # L011
//! helpers = ["crates/resilience/src/audit.rs"] # files allowed raw poison handling
//!
//! [exchange]                        # L012
//! paths   = ["crates/shard/src/exec.rs"] # files whose buffer writes need fault cover
//! buffers = ["stage", "hblk"]      # exchange-buffer names (receivers of writes)
//!
//! [disabled]
//! lints = []                        # lint IDs switched off entirely
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Parsed lint configuration (see module docs for the schema).
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) walked for `.rs` files.
    pub scan_roots: Vec<String>,
    /// Subtrees pruned from the walk.
    pub scan_skip: Vec<String>,
    /// Lint IDs exempt inside test/bench code.
    pub tests_exempt: Vec<String>,
    /// Crates allowed to spawn threads (L002).
    pub spawn_allowed: Vec<String>,
    /// Hot-path files under the panic-freedom / zero-alloc rules.
    pub hot_paths: Vec<String>,
    /// Crates whose `pub fn *_into` must call a dimension-check helper.
    pub dim_check_crates: Vec<String>,
    /// Recognized dimension-check helper names.
    pub dim_check_helpers: Vec<String>,
    /// Crates allowed `Ordering::Relaxed` (L006).
    pub relaxed_allowed: Vec<String>,
    /// Crates whose `pub` items must carry doc comments (L007).
    pub docs_crates: Vec<String>,
    /// Files allowed to handle lock poisoning directly (L011) — the
    /// `resilience::audit` helpers themselves.
    pub lock_helpers: Vec<String>,
    /// Files whose exchange-buffer writes need fault-point cover (L012).
    pub exchange_paths: Vec<String>,
    /// Exchange-buffer names — write receivers L012 tracks.
    pub exchange_buffers: Vec<String>,
    /// Lints disabled outright.
    pub disabled: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scan_roots: vec!["crates".into(), "src".into(), "tests".into()],
            scan_skip: Vec::new(),
            tests_exempt: vec!["L002".into(), "L003".into(), "L005".into(), "L006".into()],
            spawn_allowed: vec!["crates/pool".into()],
            hot_paths: Vec::new(),
            dim_check_crates: Vec::new(),
            dim_check_helpers: vec!["check".into(), "check_shapes".into()],
            relaxed_allowed: vec!["crates/pool".into()],
            docs_crates: Vec::new(),
            lock_helpers: vec!["crates/resilience/src/audit.rs".into()],
            exchange_paths: Vec::new(),
            exchange_buffers: Vec::new(),
            disabled: Vec::new(),
        }
    }
}

/// A `lint.toml` parse failure with its line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let tables = parse_tables(text)?;
        let mut cfg = Config::default();
        let get = |tables: &BTreeMap<String, BTreeMap<String, Value>>,
                   table: &str,
                   key: &str|
         -> Option<Value> { tables.get(table).and_then(|t| t.get(key)).cloned() };

        let assign = |table: &str, key: &str, dst: &mut Vec<String>| {
            if let Some(Value::Array(items)) = get(&tables, table, key) {
                *dst = items;
            }
        };
        assign("scan", "roots", &mut cfg.scan_roots);
        assign("scan", "skip", &mut cfg.scan_skip);
        assign("tests", "exempt", &mut cfg.tests_exempt);
        assign("spawn", "allowed", &mut cfg.spawn_allowed);
        assign("hot", "paths", &mut cfg.hot_paths);
        assign("dim-check", "crates", &mut cfg.dim_check_crates);
        assign("dim-check", "helpers", &mut cfg.dim_check_helpers);
        assign("relaxed", "allowed", &mut cfg.relaxed_allowed);
        assign("docs", "crates", &mut cfg.docs_crates);
        assign("locks", "helpers", &mut cfg.lock_helpers);
        assign("exchange", "paths", &mut cfg.exchange_paths);
        assign("exchange", "buffers", &mut cfg.exchange_buffers);
        assign("disabled", "lints", &mut cfg.disabled);
        Ok(cfg)
    }

    /// Loads and parses `lint.toml` from `root`, falling back to the
    /// built-in defaults when the file does not exist.
    pub fn load(root: &Path) -> Result<Config, ConfigError> {
        match std::fs::read_to_string(root.join("lint.toml")) {
            Ok(text) => Config::parse(&text),
            Err(_) => Ok(Config::default()),
        }
    }

    /// Is `path` (workspace-relative, `/`-separated) inside any of the
    /// listed prefixes? Prefixes match whole path components.
    pub fn path_in(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            path == p
                || path
                    .strip_prefix(p.as_str())
                    .is_some_and(|r| r.starts_with('/'))
        })
    }
}

/// A parsed TOML value (the subset this config needs).
#[derive(Debug, Clone)]
enum Value {
    #[allow(dead_code)]
    Str(String),
    Array(Vec<String>),
    #[allow(dead_code)]
    Bool(bool),
}

fn parse_tables(text: &str) -> Result<BTreeMap<String, BTreeMap<String, Value>>, ConfigError> {
    let mut tables: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
    let mut current = String::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]);
        let line = line.trim();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            current = name.trim().to_string();
            tables.entry(current.clone()).or_default();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected `key = value` or `[table]`, got `{line}`"),
            });
        };
        let key = line[..eq].trim().to_string();
        let mut rhs = line[eq + 1..].trim().to_string();
        // Multi-line arrays: accumulate until brackets balance.
        while rhs.starts_with('[') && !brackets_balanced(&rhs) {
            let Some(next) = lines.get(i) else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unterminated array for key `{key}`"),
                });
            };
            rhs.push(' ');
            rhs.push_str(strip_comment(next).trim());
            i += 1;
        }
        let value = parse_value(&rhs, lineno)?;
        tables
            .entry(current.clone())
            .or_default()
            .insert(key, value);
    }
    Ok(tables)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(rhs: &str, lineno: usize) -> Result<Value, ConfigError> {
    let rhs = rhs.trim();
    if rhs == "true" {
        return Ok(Value::Bool(true));
    }
    if rhs == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = parse_string(rhs) {
        return Ok(Value::Str(s));
    }
    if let Some(body) = rhs.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_commas(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some(s) = parse_string(part) else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("array items must be strings, got `{part}`"),
                });
            };
            items.push(s);
        }
        return Ok(Value::Array(items));
    }
    Err(ConfigError {
        line: lineno,
        message: format!("unsupported value `{rhs}` (strings, bools, and string arrays only)"),
    })
}

fn parse_string(s: &str) -> Option<String> {
    let body = s.strip_prefix('"')?.strip_suffix('"')?;
    // The schema has no need for escapes in paths/IDs; reject rather than
    // misinterpret.
    if body.contains('\\') || body.contains('"') {
        return None;
    }
    Some(body.to_string())
}

fn split_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_schema() {
        let cfg = Config::parse(
            r#"
# comment
[scan]
roots = ["crates", "src"]   # trailing comment
skip = [
    "crates/xtask/fixtures",
    "examples",
]

[hot]
paths = ["crates/kernels/src/spmm.rs"]

[dim-check]
crates = ["crates/kernels"]
helpers = ["check"]

[disabled]
lints = []
"#,
        )
        .unwrap();
        assert_eq!(cfg.scan_roots, ["crates", "src"]);
        assert_eq!(cfg.scan_skip, ["crates/xtask/fixtures", "examples"]);
        assert_eq!(cfg.hot_paths, ["crates/kernels/src/spmm.rs"]);
        assert_eq!(cfg.dim_check_helpers, ["check"]);
        assert!(cfg.disabled.is_empty());
    }

    #[test]
    fn missing_tables_keep_defaults() {
        let cfg = Config::parse("[hot]\npaths = []\n").unwrap();
        assert_eq!(cfg.spawn_allowed, ["crates/pool"]);
        assert!(cfg.tests_exempt.contains(&"L003".to_string()));
    }

    #[test]
    fn malformed_entries_are_hard_errors() {
        assert!(Config::parse("[scan]\nroots = [1, 2]\n").is_err());
        assert!(Config::parse("just text\n").is_err());
        assert!(Config::parse("[scan]\nroots = [\"unterminated\"\n").is_err());
    }

    #[test]
    fn path_prefix_matching_respects_components() {
        let prefixes = vec!["crates/pool".to_string()];
        assert!(Config::path_in("crates/pool/src/lib.rs", &prefixes));
        assert!(Config::path_in("crates/pool", &prefixes));
        assert!(!Config::path_in("crates/pool-extras/src/lib.rs", &prefixes));
    }
}
