//! End-to-end GCN timing models for the paper's three platforms.
//!
//! Sections III and V of the paper break GCN execution time into phases —
//! SpMM, Dense MM, Glue Code, plus Offload and Sampling on GPU — and compare
//! a dual-socket Xeon 8380, an NVIDIA A100, and a PIUMA node. The real
//! machines are not available here, so each platform is a *calibrated
//! analytical model* over the shared [`analytic::workload::GcnWorkload`]
//! accounting:
//!
//! * [`xeon::XeonModel`] — cache-aware SpMM traffic over a STREAM-like
//!   bandwidth curve (including the hyper-threading dip past 80 threads),
//!   an AVX-512 GEMM roofline, and per-kernel framework overhead;
//! * [`gpu::GpuModel`] — PCIe offload volume, HBM-bound SpMM, FP32-peak
//!   Dense MM, and the host-side full-neighbourhood sampling cliff when the
//!   graph exceeds device memory;
//! * [`piuma::PiumaModel`] — the Eq. 1–5 bandwidth model at the node's
//!   aggregate bandwidth degraded by the measured DMA-kernel efficiency,
//!   plus the calibrated dense throughput of
//!   [`piuma_kernels::dense_model::PiumaDenseModel`].
//!
//! Calibration constants are documented on each field; the reproduction
//! targets the paper's *relative* results (who wins, by what factor, where
//! the crossovers sit), not absolute milliseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod distributed;
pub mod gpu;
pub mod hetero;
pub mod piuma;
pub mod xeon;

pub use breakdown::{GcnPhaseTimes, Phase};
pub use distributed::DistributedXeonModel;
pub use gpu::GpuModel;
pub use hetero::HeterogeneousSoc;
pub use piuma::PiumaModel;
pub use xeon::XeonModel;
