//! Distributed-memory CPU scaling with message passing.
//!
//! Section V-A: "Traditional CPU systems such as Xeon can not scale their
//! memory bandwidth by increasing the number of systems ... communication
//! overheads of MPI significantly reduce performance relative to an
//! at-scale DGAS system" (citing the COST critique, ref. [24]). This module
//! models a cluster of Xeon nodes running 1-D row-partitioned SpMM with a
//! bulk-synchronous feature gather, so the DGAS-vs-MPI contrast the paper
//! asserts can be measured.

use crate::breakdown::GcnPhaseTimes;
use crate::xeon::XeonModel;
use analytic::workload::{GcnWorkload, LayerWorkload};
use analytic::ElementSizes;
use serde::{Deserialize, Serialize};

/// A cluster of identical Xeon nodes with an MPI-style interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedXeonModel {
    /// The per-node machine.
    pub node: XeonModel,
    /// Number of nodes.
    pub nodes: usize,
    /// Effective per-node injection bandwidth in GB/s (e.g. one 200 Gb/s
    /// HDR InfiniBand port ~ 23 GB/s after protocol overheads).
    pub interconnect_gbps: f64,
    /// Per-message software latency in nanoseconds (MPI stack).
    pub message_latency_ns: f64,
}

impl DistributedXeonModel {
    /// A cluster of `nodes` default Xeon nodes over 200 Gb/s links.
    pub fn cluster(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        DistributedXeonModel {
            node: XeonModel::default(),
            nodes,
            interconnect_gbps: 23.0,
            message_latency_ns: 5_000.0,
        }
    }

    /// Bytes each node must *receive* per SpMM for the feature gather:
    /// with 1-D row partitioning and a uniformly random graph, a fraction
    /// `(nodes-1)/nodes` of each node's `|E|/nodes` in-edges reference rows
    /// owned by other nodes.
    pub fn gather_bytes_per_node(&self, layer: &LayerWorkload) -> f64 {
        if self.nodes <= 1 {
            return 0.0;
        }
        let remote_fraction = (self.nodes - 1) as f64 / self.nodes as f64;
        let edges_per_node = layer.edges as f64 / self.nodes as f64;
        // Gather is deduplicated per owned vertex in the best case, but for
        // a scale-free graph most referenced remote rows are distinct at
        // realistic partition sizes; charge the deduplicated volume:
        // min(distinct rows, referencing edges).
        let distinct_rows = (layer.vertices as f64).min(edges_per_node * remote_fraction);
        distinct_rows * layer.k_agg() as f64 * ElementSizes::default().feature as f64
    }

    /// Communication time (ns) of one SpMM's gather phase.
    pub fn gather_time_ns(&self, layer: &LayerWorkload) -> f64 {
        if self.nodes <= 1 {
            return 0.0;
        }
        let bytes = self.gather_bytes_per_node(layer);
        // All-to-all: each node exchanges with every other node.
        let messages = (self.nodes - 1) as f64;
        bytes / self.interconnect_gbps + messages * self.message_latency_ns
    }

    /// GCN phase times on the cluster: per-node compute on `1/nodes` of the
    /// work plus the gather on the critical path of every layer (charged to
    /// the SpMM phase, where the paper's discussion places it).
    pub fn gcn_times(&self, workload: &GcnWorkload) -> GcnPhaseTimes {
        let mut t = GcnPhaseTimes::default();
        let threads = self.node.physical_cores();
        for layer in workload.layers() {
            let local = LayerWorkload {
                vertices: (layer.vertices / self.nodes).max(1),
                edges: (layer.edges / self.nodes).max(1),
                ..*layer
            };
            t.spmm_ns += self.node.spmm_time_ns(&local, threads) + self.gather_time_ns(layer);
            t.dense_ns += self.node.dense_time_ns(&local, threads);
            t.glue_ns += self.node.glue_time_ns(&local, threads);
        }
        t
    }

    /// Parallel efficiency on `workload` relative to a single node
    /// (`T(1) / (nodes * T(nodes))`).
    pub fn parallel_efficiency(&self, workload: &GcnWorkload) -> f64 {
        let single = DistributedXeonModel {
            nodes: 1,
            ..self.clone()
        };
        let t1 = single.gcn_times(workload).total_ns();
        let tn = self.gcn_times(workload).total_ns();
        t1 / (self.nodes as f64 * tn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::OgbDataset;

    fn workload(d: OgbDataset, hidden: usize) -> GcnWorkload {
        let s = d.stats();
        GcnWorkload::paper_model(s.vertices, s.edges, s.input_dim, hidden, s.output_dim)
    }

    #[test]
    fn single_node_matches_plain_xeon() {
        let w = workload(OgbDataset::Products, 64);
        let cluster = DistributedXeonModel::cluster(1);
        let plain = XeonModel::default().gcn_times_full(&w);
        let dist = cluster.gcn_times(&w);
        assert!((dist.total_ns() - plain.total_ns()).abs() / plain.total_ns() < 1e-9);
    }

    #[test]
    fn communication_erodes_scaling() {
        // The MPI gather keeps distributed CPU efficiency well below 1,
        // which is the paper's argument for DGAS.
        let w = workload(OgbDataset::Products, 64);
        let eff4 = DistributedXeonModel::cluster(4).parallel_efficiency(&w);
        assert!(eff4 < 0.8, "4-node efficiency {eff4:.2} suspiciously good");
        assert!(eff4 > 0.05, "4-node efficiency {eff4:.2} suspiciously bad");
        let eff16 = DistributedXeonModel::cluster(16).parallel_efficiency(&w);
        assert!(eff16 < eff4, "efficiency must fall with node count");
    }

    #[test]
    fn distributed_cpu_still_beats_nothing_but_loses_to_piuma_scaling() {
        // 4 Xeon nodes vs a 4x-larger PIUMA system on a bandwidth-bound
        // workload: PIUMA's DGAS scales ~linearly, MPI does not.
        let w = workload(OgbDataset::Papers, 64);
        let xeon1 = DistributedXeonModel::cluster(1).gcn_times(&w).total_ns();
        let xeon4 = DistributedXeonModel::cluster(4).gcn_times(&w).total_ns();
        let cpu_speedup = xeon1 / xeon4;

        let piuma8 = crate::PiumaModel::with_cores(8).gcn_times(&w).total_ns();
        let piuma32 = crate::PiumaModel::with_cores(32).gcn_times(&w).total_ns();
        let piuma_speedup = piuma8 / piuma32;
        assert!(
            piuma_speedup > cpu_speedup,
            "PIUMA 4x scaling {piuma_speedup:.2} should beat MPI 4x scaling {cpu_speedup:.2}"
        );
    }

    #[test]
    fn gather_volume_is_zero_on_one_node_and_grows_with_k() {
        let w = workload(OgbDataset::Products, 64);
        let layer = w.layers()[1];
        assert_eq!(
            DistributedXeonModel::cluster(1).gather_bytes_per_node(&layer),
            0.0
        );
        let c = DistributedXeonModel::cluster(4);
        let wide = workload(OgbDataset::Products, 256);
        assert!(c.gather_bytes_per_node(&wide.layers()[1]) > c.gather_bytes_per_node(&layer));
    }
}
