//! PIUMA-node GCN timing model (Section V-B).
//!
//! The paper prices GCN on PIUMA by combining (a) the measured DMA-SpMM
//! kernel, which achieves 80–90 % of the Eq. 1–5 bandwidth model, with
//! (b) the observed dense peak FLOPS from prior work [21]. This module does
//! the same composition: the analytical SpMM roofline at the node's
//! aggregate bandwidth degraded by a measured efficiency, plus the
//! calibrated [`PiumaDenseModel`]. For full-size Table-I graphs this is the
//! only tractable path (the event-driven simulator runs scaled twins); a
//! test pins the model against the simulator on a scaled graph.

use crate::breakdown::GcnPhaseTimes;
use analytic::workload::{GcnWorkload, LayerWorkload};
use analytic::ElementSizes;
use piuma_kernels::dense_model::PiumaDenseModel;
use piuma_sim::MachineConfig;
use serde::{Deserialize, Serialize};

/// Calibrated timing model of one PIUMA node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiumaModel {
    /// The node configuration (cores x slices set the aggregate bandwidth).
    pub machine: MachineConfig,
    /// Fraction of the bandwidth-bound model the DMA SpMM kernel achieves
    /// (the paper reports 80–90 %; our simulator lands in the same band —
    /// see `piuma_kernels::runner` tests).
    pub dma_efficiency: f64,
    /// Dense-update throughput model.
    pub dense: PiumaDenseModel,
}

impl Default for PiumaModel {
    /// A 32-core node: with 32 GB/s per slice this gives ~1 TB/s aggregate,
    /// crossing the dual-socket Xeon's ~410 GB/s at ~16 cores, exactly the
    /// Figure 8 (left) crossover.
    fn default() -> Self {
        PiumaModel {
            machine: MachineConfig::node(32),
            dma_efficiency: 0.85,
            dense: PiumaDenseModel::default(),
        }
    }
}

impl PiumaModel {
    /// A model over an explicit machine size (for scaling studies).
    pub fn with_cores(cores: usize) -> Self {
        PiumaModel {
            machine: MachineConfig::node(cores),
            ..Default::default()
        }
    }

    /// Effective SpMM bandwidth in GB/s (aggregate x DMA efficiency).
    pub fn effective_bandwidth_gbps(&self) -> f64 {
        self.machine.aggregate_bandwidth_gbps() * self.dma_efficiency
    }

    /// SpMM time (ns) for one layer: Eq. 5 at the effective bandwidth.
    /// PIUMA has no L2/L3, so no cache term exists — the model the paper
    /// validates against its simulator applies directly.
    pub fn spmm_time_ns(&self, layer: &LayerWorkload) -> f64 {
        let traffic = layer.spmm(ElementSizes::default());
        let bw = self.effective_bandwidth_gbps() * 1e9;
        traffic.time_seconds(bw, bw) * 1e9
    }

    /// Dense-update time (ns) for one layer: the slower of the calibrated
    /// compute ceiling and the aggregate-bandwidth ceiling (tall-skinny
    /// updates are memory-bound at small K on PIUMA too).
    pub fn dense_time_ns(&self, layer: &LayerWorkload) -> f64 {
        let compute_ns = self.dense.time_ns(&self.machine, layer.dense_flops());
        let bytes_ns = layer.dense_bytes(ElementSizes::default().feature)
            / self.machine.aggregate_bandwidth_gbps();
        compute_ns.max(bytes_ns)
    }

    /// Glue time (ns): one elementwise pass at aggregate bandwidth. PIUMA
    /// runs bare-metal kernels, so no framework dispatch overhead applies.
    pub fn glue_time_ns(&self, layer: &LayerWorkload) -> f64 {
        layer.glue_bytes(ElementSizes::default().feature) / self.machine.aggregate_bandwidth_gbps()
    }

    /// Full-model GCN phase times.
    pub fn gcn_times(&self, workload: &GcnWorkload) -> GcnPhaseTimes {
        let mut t = GcnPhaseTimes::default();
        for layer in workload.layers() {
            t.spmm_ns += self.spmm_time_ns(layer);
            t.dense_ns += self.dense_time_ns(layer);
            t.glue_ns += self.glue_time_ns(layer);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Phase, XeonModel};

    fn workload(d: graph::OgbDataset, hidden: usize) -> GcnWorkload {
        let s = d.stats();
        GcnWorkload::paper_model(s.vertices, s.edges, s.input_dim, hidden, s.output_dim)
    }

    #[test]
    fn piuma_always_beats_cpu_on_gcn() {
        // Fig. 9 key takeaway 2: a single PIUMA node always outperforms the
        // CPU system, at every dataset and embedding dimension.
        let piuma = PiumaModel::default();
        let xeon = XeonModel::default();
        for d in graph::OgbDataset::FIGURE9 {
            for k in [8usize, 64, 256] {
                let w = workload(d, k);
                let speedup = piuma.gcn_times(&w).speedup_over(&xeon.gcn_times_full(&w));
                assert!(speedup > 1.0, "{d} K={k}: PIUMA speedup {speedup:.2} <= 1");
            }
        }
    }

    #[test]
    fn piuma_speedup_decreases_with_embedding_dimension() {
        // Fig. 9: dense pressure grows with K, eroding PIUMA's edge. For
        // datasets whose CPU baseline is cache-insensitive the decrease
        // holds across the whole sweep; for `products` the CPU's cache
        // behaviour at K=8 makes the low end noisy, so the dense-pressure
        // effect is asserted on the 64 -> 256 segment (see EXPERIMENTS.md).
        let piuma = PiumaModel::default();
        let xeon = XeonModel::default();
        let speedup = |d: graph::OgbDataset, k: usize| {
            piuma
                .gcn_times(&workload(d, k))
                .speedup_over(&xeon.gcn_times_full(&workload(d, k)))
        };
        for d in [
            graph::OgbDataset::Arxiv,
            graph::OgbDataset::Mag,
            graph::OgbDataset::Citation2,
            graph::OgbDataset::Papers,
        ] {
            let (s8, s256) = (speedup(d, 8), speedup(d, 256));
            assert!(
                s8 > s256,
                "{d}: speedup should fall with K ({s8:.2} -> {s256:.2})"
            );
        }
        let (s64, s256) = (
            speedup(graph::OgbDataset::Products, 64),
            speedup(graph::OgbDataset::Products, 256),
        );
        assert!(
            s64 > s256,
            "products: speedup should fall 64 -> 256 ({s64:.2} -> {s256:.2})"
        );
    }

    #[test]
    fn sparse_graphs_become_dense_dominated_at_k256() {
        // Fig. 10: arxiv, collab, mag, citation2 and papers spend >75% in
        // Dense MM at K = 256 on PIUMA. Our fused kernels aggregate at
        // min(k_in, k_out), which trims the SpMM share of the boundary
        // layers, so the bar here is slightly lower (>65%); EXPERIMENTS.md
        // records the deviation.
        let piuma = PiumaModel::default();
        for d in [
            graph::OgbDataset::Arxiv,
            graph::OgbDataset::Collab,
            graph::OgbDataset::Mag,
            graph::OgbDataset::Citation2,
            graph::OgbDataset::Papers,
        ] {
            let frac = piuma.gcn_times(&workload(d, 256)).fraction(Phase::Dense);
            assert!(frac > 0.65, "{d}: dense fraction {frac:.2}");
        }
    }

    #[test]
    fn dense_graphs_keep_substantial_spmm_share() {
        // Fig. 10: ddi / proteins / ppa / products remain SpMM-heavy longer.
        let piuma = PiumaModel::default();
        for d in [graph::OgbDataset::Ddi, graph::OgbDataset::Proteins] {
            let frac = piuma.gcn_times(&workload(d, 256)).fraction(Phase::Spmm);
            assert!(frac > 0.4, "{d}: spmm fraction {frac:.2}");
        }
    }

    #[test]
    fn effective_bandwidth_crosses_xeon_near_16_cores() {
        // Fig. 8 (left): PIUMA's aggregate bandwidth passes the dual-socket
        // Xeon's STREAM plateau at ~16 cores.
        let xeon_plateau = XeonModel::default().stream_bandwidth_gbps(80);
        let below = PiumaModel::with_cores(8).machine.aggregate_bandwidth_gbps();
        let above = PiumaModel::with_cores(16)
            .machine
            .aggregate_bandwidth_gbps();
        assert!(below < xeon_plateau);
        assert!(above >= xeon_plateau * 0.95);
    }

    #[test]
    fn spmm_time_is_linear_in_node_size() {
        let w = workload(graph::OgbDataset::Products, 64);
        let t8: f64 = PiumaModel::with_cores(8).gcn_times(&w).spmm_ns;
        let t32: f64 = PiumaModel::with_cores(32).gcn_times(&w).spmm_ns;
        assert!((t8 / t32 - 4.0).abs() < 0.01);
    }
}
