//! The per-phase execution-time breakdown shared by all platform models.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

/// An execution phase of GCN inference, as categorized by the paper's
/// breakdown figures (Figs. 3, 4, and 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Sparse aggregation (`A_hat * H`).
    Spmm,
    /// Dense update (`(..) * W`).
    Dense,
    /// Activations, bias, framework wrappers ("Glue Code").
    Glue,
    /// Host-to-device data movement (GPU only).
    Offload,
    /// Host-side neighbourhood sampling when the graph does not fit on the
    /// device (GPU only).
    Sampling,
}

impl Phase {
    /// All phases in display order.
    pub const ALL: [Phase; 5] = [
        Phase::Spmm,
        Phase::Dense,
        Phase::Glue,
        Phase::Offload,
        Phase::Sampling,
    ];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Spmm => "spmm",
            Phase::Dense => "dense_mm",
            Phase::Glue => "glue",
            Phase::Offload => "offload",
            Phase::Sampling => "sampling",
        };
        f.write_str(s)
    }
}

/// Per-phase execution time of one GCN inference, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GcnPhaseTimes {
    /// Sparse aggregation time.
    pub spmm_ns: f64,
    /// Dense update time.
    pub dense_ns: f64,
    /// Glue-code time.
    pub glue_ns: f64,
    /// Offload time (zero on non-GPU platforms).
    pub offload_ns: f64,
    /// Sampling time (zero unless the GPU falls back to sampling).
    pub sampling_ns: f64,
}

impl GcnPhaseTimes {
    /// Total execution time.
    pub fn total_ns(&self) -> f64 {
        self.spmm_ns + self.dense_ns + self.glue_ns + self.offload_ns + self.sampling_ns
    }

    /// Time of one phase.
    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Spmm => self.spmm_ns,
            Phase::Dense => self.dense_ns,
            Phase::Glue => self.glue_ns,
            Phase::Offload => self.offload_ns,
            Phase::Sampling => self.sampling_ns,
        }
    }

    /// Fraction of total time spent in `phase` (0 if the total is zero).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let t = self.total_ns();
        if t <= 0.0 {
            return 0.0;
        }
        self.get(phase) / t
    }

    /// Speedup of this breakdown relative to `baseline`
    /// (`baseline.total / self.total`).
    pub fn speedup_over(&self, baseline: &GcnPhaseTimes) -> f64 {
        let t = self.total_ns();
        if t <= 0.0 {
            return 0.0;
        }
        baseline.total_ns() / t
    }
}

impl Add for GcnPhaseTimes {
    type Output = GcnPhaseTimes;

    fn add(self, rhs: GcnPhaseTimes) -> GcnPhaseTimes {
        GcnPhaseTimes {
            spmm_ns: self.spmm_ns + rhs.spmm_ns,
            dense_ns: self.dense_ns + rhs.dense_ns,
            glue_ns: self.glue_ns + rhs.glue_ns,
            offload_ns: self.offload_ns + rhs.offload_ns,
            sampling_ns: self.sampling_ns + rhs.sampling_ns,
        }
    }
}

impl fmt::Display for GcnPhaseTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total {:.3} ms (", self.total_ns() / 1e6)?;
        let mut first = true;
        for phase in Phase::ALL {
            let frac = self.fraction(phase);
            if frac > 0.0005 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{phase} {:.0}%", frac * 100.0)?;
                first = false;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GcnPhaseTimes {
        GcnPhaseTimes {
            spmm_ns: 600.0,
            dense_ns: 300.0,
            glue_ns: 100.0,
            offload_ns: 0.0,
            sampling_ns: 0.0,
        }
    }

    #[test]
    fn total_and_fractions_are_consistent() {
        let t = sample();
        assert_eq!(t.total_ns(), 1000.0);
        assert!((t.fraction(Phase::Spmm) - 0.6).abs() < 1e-12);
        let s: f64 = Phase::ALL.iter().map(|&p| t.fraction(p)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let fast = sample();
        let slow = GcnPhaseTimes {
            spmm_ns: 2000.0,
            ..Default::default()
        };
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_is_elementwise() {
        let t = sample() + sample();
        assert_eq!(t.spmm_ns, 1200.0);
        assert_eq!(t.total_ns(), 2000.0);
    }

    #[test]
    fn display_reports_percentages() {
        let text = sample().to_string();
        assert!(text.contains("spmm 60%"));
        assert!(!text.contains("sampling"));
    }
}
