//! NVIDIA A100 GCN timing model (the paper's GPU comparison, from its
//! companion study, ref. [16]).

use crate::breakdown::GcnPhaseTimes;
use analytic::workload::GcnWorkload;
use analytic::ElementSizes;
use serde::{Deserialize, Serialize};

/// Calibrated timing model of an NVIDIA A100-40GB attached over PCIe 4.0,
/// running inductive GCN inference: the adjacency matrix and vertex
/// embeddings are offloaded for every inference (Section III-C), and graphs
/// that do not fit in the 40 GB of device memory fall back to host-side
/// full-neighbourhood sampling — the `papers` cliff of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Device memory capacity in bytes (40 GB on the paper's A100).
    pub memory_bytes: f64,
    /// Sustained HBM2e bandwidth in GB/s (~1555 on the A100).
    pub hbm_gbps: f64,
    /// Fraction of HBM bandwidth the SpMM kernel sustains (coalescing
    /// losses on irregular gathers).
    pub spmm_efficiency: f64,
    /// Peak FP32 throughput in GFLOP/s (19 500 on the A100).
    pub fp32_peak_gflops: f64,
    /// Fraction of FP32 peak sustained on tall-skinny GEMM.
    pub dense_efficiency: f64,
    /// Effective host-to-device PCIe 4.0 x16 bandwidth in GB/s.
    pub pcie_gbps: f64,
    /// Host-side cost per edge of full-neighbourhood sampling, in
    /// nanoseconds (pointer chasing + batch assembly on the CPU).
    pub sample_ns_per_edge: f64,
    /// Kernel-launch overhead in nanoseconds.
    pub launch_overhead_ns: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            memory_bytes: 40e9,
            hbm_gbps: 1555.0,
            spmm_efficiency: 0.55,
            fp32_peak_gflops: 19_500.0,
            dense_efficiency: 0.60,
            pcie_gbps: 22.0,
            sample_ns_per_edge: 18.0,
            launch_overhead_ns: 10_000.0,
        }
    }
}

impl GpuModel {
    /// Whether the inference working set fits in device memory.
    pub fn fits(&self, workload: &GcnWorkload) -> bool {
        workload.inference_footprint_bytes(ElementSizes::default()) <= self.memory_bytes
    }

    /// Bytes that must cross PCIe for one inductive inference: the CSR
    /// adjacency, the input features, and the result read-back.
    pub fn offload_bytes(&self, workload: &GcnWorkload) -> f64 {
        let sizes = ElementSizes::default();
        let first = workload.layers().first().expect("at least one layer");
        let last = workload.layers().last().expect("at least one layer");
        let v = first.vertices as f64;
        let e = first.edges as f64;
        let csr = (v + 1.0) * sizes.row_ptr as f64 + e * (sizes.col_idx + sizes.value) as f64;
        let input = v * first.k_in as f64 * sizes.feature as f64;
        let output = v * last.k_out as f64 * sizes.feature as f64;
        csr + input + output
    }

    /// Full-model GCN phase times.
    ///
    /// For graphs that fit on the device: offload + on-device compute. The
    /// offload volume is independent of the hidden dimension (only the
    /// input/output layers cross PCIe), which is why the GPU's *relative*
    /// compute share grows with K (Fig. 4). For graphs that do not fit:
    /// host-side full-neighbourhood sampling dominates, with mini-batch
    /// offload on top — the >99 % combined sampling+offload share the paper
    /// reports for `papers`.
    pub fn gcn_times(&self, workload: &GcnWorkload) -> GcnPhaseTimes {
        let mut t = GcnPhaseTimes::default();
        let sizes = ElementSizes::default();

        // On-device (or per-batch) compute phases.
        for layer in workload.layers() {
            let traffic = layer.spmm(sizes);
            t.spmm_ns += traffic.total_bytes() / (self.hbm_gbps * self.spmm_efficiency)
                + self.launch_overhead_ns;
            t.dense_ns += layer.dense_flops() / (self.fp32_peak_gflops * self.dense_efficiency)
                + self.launch_overhead_ns;
            t.glue_ns += layer.glue_bytes(sizes.feature) / self.hbm_gbps + self.launch_overhead_ns;
        }

        t.offload_ns = self.offload_bytes(workload) / self.pcie_gbps;

        if !self.fits(workload) {
            // Full-neighbourhood sampling walks every in-edge of every layer
            // on the host.
            let edges: f64 = workload.layers().iter().map(|l| l.edges as f64).sum();
            t.sampling_ns = edges * self.sample_ns_per_edge;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn products(hidden: usize) -> GcnWorkload {
        GcnWorkload::paper_model(2_449_029, 61_859_140, 100, hidden, 47)
    }

    fn papers(hidden: usize) -> GcnWorkload {
        GcnWorkload::paper_model(111_059_956, 1_615_685_872, 128, hidden, 172)
    }

    #[test]
    fn products_fits_but_papers_does_not() {
        let m = GpuModel::default();
        assert!(m.fits(&products(256)));
        assert!(!m.fits(&papers(8)));
    }

    #[test]
    fn offload_dominates_fitting_graphs_at_small_k() {
        // Fig. 4: for graphs that fit, offload is the main contributor.
        let m = GpuModel::default();
        let t = m.gcn_times(&products(8));
        assert!(
            t.fraction(Phase::Offload) > 0.5,
            "offload fraction {:.2}",
            t.fraction(Phase::Offload)
        );
        assert_eq!(t.sampling_ns, 0.0);
    }

    #[test]
    fn compute_share_grows_with_k() {
        // Offload volume is constant in K, so SpMM+Dense share rises.
        let m = GpuModel::default();
        let share = |k| {
            let t = m.gcn_times(&products(k));
            t.fraction(Phase::Spmm) + t.fraction(Phase::Dense)
        };
        assert!(share(256) > share(8));
    }

    #[test]
    fn offload_bytes_do_not_depend_on_hidden_dim() {
        let m = GpuModel::default();
        assert_eq!(
            m.offload_bytes(&products(8)),
            m.offload_bytes(&products(256))
        );
    }

    #[test]
    fn papers_is_sampling_bound() {
        // Fig. 4: papers spends >75% sampling; sampling+offload >99%.
        let m = GpuModel::default();
        let t = m.gcn_times(&papers(64));
        assert!(
            t.fraction(Phase::Sampling) > 0.75,
            "sampling fraction {:.2}",
            t.fraction(Phase::Sampling)
        );
        assert!(
            t.fraction(Phase::Sampling) + t.fraction(Phase::Offload) > 0.9,
            "sampling+offload {:.2}",
            t.fraction(Phase::Sampling) + t.fraction(Phase::Offload)
        );
    }

    #[test]
    fn phase_times_are_finite_and_nonnegative() {
        let m = GpuModel::default();
        for t in [m.gcn_times(&products(64)), m.gcn_times(&papers(64))] {
            for p in Phase::ALL {
                assert!(t.get(p).is_finite() && t.get(p) >= 0.0, "{p}");
            }
        }
    }
}
