//! Dual-socket Xeon Platinum 8380 GCN timing model (the paper's CPU
//! baseline, Section III-A).

use crate::breakdown::GcnPhaseTimes;
use analytic::workload::{GcnWorkload, LayerWorkload};
use analytic::ElementSizes;
use serde::{Deserialize, Serialize};

/// Calibrated timing model of the paper's CPU platform: a dual-socket
/// Intel Xeon Platinum 8380 (40 cores/socket, AVX-512 with 2 FMA units,
/// 512 GB DDR4) running PyTorch-Geometric.
///
/// Every rate below is a calibration constant with its provenance in the
/// doc comment; the defaults were chosen so the model reproduces the
/// paper's Figure 2/3/8 shapes, not any absolute measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XeonModel {
    /// Sockets in the system.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Sustained STREAM triad bandwidth per socket in GB/s (8-channel
    /// DDR4-3200 sustains ~205 GB/s).
    pub stream_gbps_per_socket: f64,
    /// Number of cores per socket needed to saturate that bandwidth.
    pub saturation_cores: usize,
    /// Fractional bandwidth loss at full 2-way hyper-threading (the Fig. 8
    /// left dip past 80 threads: SMT siblings contend for queues).
    pub ht_penalty: f64,
    /// Last-level cache per socket in bytes (60 MB on the 8380).
    pub llc_bytes_per_socket: f64,
    /// Aggregate LLC bandwidth in GB/s (bounds cache-resident SpMM).
    pub llc_gbps: f64,
    /// Peak dense FP32 throughput in GFLOP/s
    /// (80 cores x 2 AVX-512 FMA x 16 lanes x 2 flops x 2.3 GHz ~ 5.9 TF).
    pub dense_peak_gflops: f64,
    /// Fraction of dense peak sustained by the framework's GEMM on
    /// tall-skinny GCN shapes.
    pub dense_efficiency: f64,
    /// Fraction of STREAM bandwidth the torch-sparse SpMM sustains on
    /// DRAM-resident data (irregular gathers, partial vectorization).
    pub spmm_efficiency: f64,
    /// Compute ceiling for SpMM in GFLOP/s (gather-limited MACs), binding
    /// when the working set is cache-resident.
    pub sparse_compute_gflops: f64,
    /// Fixed framework overhead per launched kernel in nanoseconds
    /// (PyTorch dispatcher + allocator).
    pub kernel_overhead_ns: f64,
}

impl Default for XeonModel {
    fn default() -> Self {
        XeonModel {
            sockets: 2,
            cores_per_socket: 40,
            stream_gbps_per_socket: 205.0,
            saturation_cores: 14,
            ht_penalty: 0.12,
            llc_bytes_per_socket: 60e6,
            llc_gbps: 700.0,
            dense_peak_gflops: 5900.0,
            dense_efficiency: 0.75,
            spmm_efficiency: 0.20,
            sparse_compute_gflops: 1400.0,
            kernel_overhead_ns: 30_000.0,
        }
    }
}

impl XeonModel {
    /// Total physical cores.
    pub fn physical_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total LLC bytes.
    pub fn llc_bytes(&self) -> f64 {
        self.sockets as f64 * self.llc_bytes_per_socket
    }

    /// STREAM-like sustained bandwidth (GB/s) at a given thread count —
    /// the Figure 8 (left) curve. Bandwidth ramps until `saturation_cores`
    /// per socket, plateaus through the physical-core count, then *drops*
    /// under hyper-threading contention.
    pub fn stream_bandwidth_gbps(&self, threads: usize) -> f64 {
        if threads == 0 {
            return 0.0;
        }
        let phys = self.physical_cores();
        let threads_per_socket = (threads as f64 / self.sockets as f64).max(1.0);
        let ramp = (threads_per_socket / self.saturation_cores as f64).min(1.0);
        let base = self.sockets as f64 * self.stream_gbps_per_socket * ramp;
        if threads <= phys {
            base
        } else {
            // Every SMT sibling past the physical cores adds contention.
            let excess = (threads - phys) as f64 / phys as f64;
            base * (1.0 - self.ht_penalty * excess.min(1.0))
        }
    }

    /// Fraction of *repeat* feature-row accesses served by the cache, given
    /// the SpMM working set (feature matrix bytes).
    ///
    /// Reuse of feature rows is as skewed as the in-degree distribution:
    /// the LLC retains the hub rows first, so covering a small fraction of
    /// the rows covers a large fraction of the accesses. The quarter-power
    /// law models that coverage curve — e.g. caching 10 % of the working
    /// set still serves ~56 % of repeat accesses. Only about half the LLC
    /// is effectively available to feature rows; the streamed CSR arrays,
    /// the output rows and framework buffers compete for the rest.
    pub fn cache_hit_fraction(&self, working_set_bytes: f64) -> f64 {
        if working_set_bytes <= 0.0 {
            return 1.0;
        }
        let effective = self.llc_bytes() * 0.5;
        let ratio = (effective / working_set_bytes).min(1.0);
        ratio.powf(0.25).min(0.98)
    }

    /// SpMM execution time (ns) for one layer at a given thread count:
    /// the maximum of the DRAM-traffic bound (with cache-served repeat
    /// accesses removed), the LLC-traffic bound, and the gather-compute
    /// bound — whichever resource binds.
    pub fn spmm_time_ns(&self, layer: &LayerWorkload, threads: usize) -> f64 {
        let sizes = ElementSizes::default();
        let traffic = layer.spmm(sizes);
        let k = layer.k_agg() as f64;
        let v = layer.vertices as f64;
        let e = layer.edges.max(1) as f64;

        let working_set = v * k * sizes.feature as f64;
        let hit = self.cache_hit_fraction(working_set);
        // First touch of each row always misses; repeats hit with p = hit.
        let first_touch = (v / e).min(1.0);
        let miss_fraction = first_touch + (1.0 - first_touch) * (1.0 - hit);
        let dram_bytes =
            traffic.csr_bytes + traffic.feature_bytes * miss_fraction + traffic.write_bytes;
        let bw = self.stream_bandwidth_gbps(threads) * self.spmm_efficiency;
        let dram_ns = dram_bytes / bw;

        let llc_ns = traffic.total_bytes() / self.llc_gbps;
        let compute_ns = traffic.flops
            / (self.sparse_compute_gflops
                * (threads as f64 / self.physical_cores() as f64).min(1.0));

        dram_ns.max(llc_ns).max(compute_ns) + self.kernel_overhead_ns
    }

    /// Dense-update time (ns) for one layer: a GEMM roofline. Tall-skinny
    /// GCN updates are *bandwidth*-bound at small K (arithmetic intensity
    /// ~K/4 FLOP/byte) and compute-bound at large K, so the model takes the
    /// slower of the two ceilings.
    pub fn dense_time_ns(&self, layer: &LayerWorkload, threads: usize) -> f64 {
        let scale = (threads as f64 / self.physical_cores() as f64).min(1.0);
        let rate = self.dense_peak_gflops * self.dense_efficiency * scale;
        let compute_ns = layer.dense_flops() / rate;
        let bytes_ns = layer.dense_bytes(ElementSizes::default().feature)
            / self.stream_bandwidth_gbps(threads);
        compute_ns.max(bytes_ns) + self.kernel_overhead_ns
    }

    /// Glue-code time (ns) for one layer: one elementwise pass over the
    /// activation at STREAM bandwidth, plus wrapper overhead.
    pub fn glue_time_ns(&self, layer: &LayerWorkload, threads: usize) -> f64 {
        let bytes = layer.glue_bytes(ElementSizes::default().feature);
        bytes / self.stream_bandwidth_gbps(threads) + 2.0 * self.kernel_overhead_ns
    }

    /// Full-model GCN phase times at a thread count.
    pub fn gcn_times(&self, workload: &GcnWorkload, threads: usize) -> GcnPhaseTimes {
        let mut t = GcnPhaseTimes::default();
        for layer in workload.layers() {
            t.spmm_ns += self.spmm_time_ns(layer, threads);
            t.dense_ns += self.dense_time_ns(layer, threads);
            t.glue_ns += self.glue_time_ns(layer, threads);
        }
        t
    }

    /// Convenience: phase times using every physical core.
    pub fn gcn_times_full(&self, workload: &GcnWorkload) -> GcnPhaseTimes {
        self.gcn_times(workload, self.physical_cores())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn products(hidden: usize) -> GcnWorkload {
        GcnWorkload::paper_model(2_449_029, 61_859_140, 100, hidden, 47)
    }

    fn arxiv(hidden: usize) -> GcnWorkload {
        GcnWorkload::paper_model(169_343, 1_166_243, 128, hidden, 40)
    }

    #[test]
    fn bandwidth_ramps_saturates_and_dips() {
        let m = XeonModel::default();
        assert!(m.stream_bandwidth_gbps(4) < m.stream_bandwidth_gbps(16));
        let plateau = m.stream_bandwidth_gbps(80);
        assert!((plateau - 410.0).abs() < 1.0);
        // Hyper-threading contention: >80 threads is *slower* (Fig. 8 left).
        assert!(m.stream_bandwidth_gbps(160) < plateau);
        assert_eq!(m.stream_bandwidth_gbps(0), 0.0);
    }

    #[test]
    fn large_dense_graphs_are_spmm_dominated_at_k256() {
        // Fig. 3: products spends >=75-80% of time in SpMM at K = 256.
        let m = XeonModel::default();
        let t = m.gcn_times_full(&products(256));
        assert!(
            t.fraction(crate::Phase::Spmm) > 0.70,
            "products spmm fraction {:.2}",
            t.fraction(crate::Phase::Spmm)
        );
    }

    #[test]
    fn sparse_graphs_have_lower_spmm_share() {
        // Fig. 2/3: arxiv and collab sit below ~60% SpMM at K = 256.
        let m = XeonModel::default();
        let arxiv_frac = m.gcn_times_full(&arxiv(256)).fraction(crate::Phase::Spmm);
        let products_frac = m
            .gcn_times_full(&products(256))
            .fraction(crate::Phase::Spmm);
        assert!(arxiv_frac < products_frac);
        assert!(arxiv_frac < 0.65, "arxiv spmm fraction {arxiv_frac:.2}");
    }

    #[test]
    fn cache_resident_graphs_gain_spmm_share_with_k() {
        // ddi fits in LLC at small K; as K grows the cache stops helping and
        // the SpMM share rises (Fig. 3's ddi/proteins trend).
        let m = XeonModel::default();
        let ddi = |k| GcnWorkload::paper_model(4_267, 1_334_889, 128, k, 128);
        let small = m.gcn_times_full(&ddi(8)).fraction(crate::Phase::Spmm);
        let large = m.gcn_times_full(&ddi(256)).fraction(crate::Phase::Spmm);
        assert!(
            large > small,
            "ddi spmm share should grow with K: {small:.2} -> {large:.2}"
        );
    }

    #[test]
    fn spmm_time_decreases_with_threads_until_saturation() {
        let m = XeonModel::default();
        let layer = products(256).layers()[1];
        let few = m.spmm_time_ns(&layer, 4);
        let many = m.spmm_time_ns(&layer, 80);
        assert!(many < few);
        // Past saturation, hyper-threading makes it slightly worse.
        assert!(m.spmm_time_ns(&layer, 160) >= many);
    }

    #[test]
    fn cache_hit_fraction_is_monotone_in_working_set() {
        let m = XeonModel::default();
        assert!(m.cache_hit_fraction(1e6) > m.cache_hit_fraction(1e9));
        assert!(m.cache_hit_fraction(1e12) > 0.0);
        assert!(m.cache_hit_fraction(0.0) == 1.0);
    }

    #[test]
    fn phase_times_are_positive_and_finite() {
        let m = XeonModel::default();
        let t = m.gcn_times_full(&products(64));
        assert!(t.spmm_ns > 0.0 && t.spmm_ns.is_finite());
        assert!(t.dense_ns > 0.0 && t.dense_ns.is_finite());
        assert!(t.glue_ns > 0.0 && t.glue_ns.is_finite());
        assert_eq!(t.offload_ns, 0.0);
        assert_eq!(t.sampling_ns, 0.0);
    }
}
