//! Heterogeneous SoC: PIUMA dies plus dense-compute accelerator tiles.
//!
//! Section VI of the paper proposes "a heterogeneous SoC combining PIUMA
//! dies with dense compute accelerators that can improve the dense matrix
//! multiplication performance", noting that "the ratio of PIUMA dies to
//! dense units will largely depend on the application requirements". This
//! module makes that proposal quantitative: a fixed tile budget is split
//! between PIUMA dies (bandwidth + sparse throughput) and systolic dense
//! tiles (GEMM throughput), and [`HeterogeneousSoc::best_split`] finds the
//! ratio that minimizes GCN time for a given workload.

use crate::breakdown::GcnPhaseTimes;
use crate::piuma::PiumaModel;
use analytic::workload::GcnWorkload;
use serde::{Deserialize, Serialize};

/// Cores contributed by one PIUMA die tile (one 8-core die).
const CORES_PER_DIE: usize = 8;

/// A tiled SoC: `total_tiles` sockets filled with either a PIUMA die or a
/// dense accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneousSoc {
    /// Total tile budget on the package.
    pub total_tiles: usize,
    /// Tiles spent on dense accelerators (the rest are PIUMA dies).
    pub dense_tiles: usize,
    /// Sustained GEMM throughput of one dense tile, in GFLOP/s. The default
    /// (4 TFLOP/s) is a small systolic array — a fraction of one A100.
    pub dense_tile_gflops: f64,
    /// Baseline PIUMA model providing per-die bandwidth and dense rates.
    pub piuma: PiumaModel,
}

impl HeterogeneousSoc {
    /// A homogeneous all-PIUMA package of `total_tiles` dies.
    pub fn all_piuma(total_tiles: usize) -> Self {
        HeterogeneousSoc {
            total_tiles,
            dense_tiles: 0,
            dense_tile_gflops: 4000.0,
            piuma: PiumaModel::default(),
        }
    }

    /// Returns a copy with `dense_tiles` tiles converted to accelerators.
    ///
    /// # Panics
    ///
    /// Panics if `dense_tiles >= total_tiles` (at least one PIUMA die must
    /// remain — something has to run the sparse phase).
    pub fn with_dense_tiles(&self, dense_tiles: usize) -> Self {
        assert!(
            dense_tiles < self.total_tiles,
            "need at least one PIUMA die"
        );
        HeterogeneousSoc {
            dense_tiles,
            ..self.clone()
        }
    }

    /// PIUMA dies on the package.
    pub fn piuma_tiles(&self) -> usize {
        self.total_tiles - self.dense_tiles
    }

    /// The PIUMA side of the package as a [`PiumaModel`] of the right size.
    fn piuma_side(&self) -> PiumaModel {
        let mut m = PiumaModel::with_cores(self.piuma_tiles() * CORES_PER_DIE);
        m.dma_efficiency = self.piuma.dma_efficiency;
        m.dense = self.piuma.dense;
        m
    }

    /// GCN phase times on this package: SpMM and glue run on the PIUMA
    /// dies; the dense update runs on PIUMA *and* accelerator tiles
    /// combined (the accelerators read operands over the same DGAS).
    pub fn gcn_times(&self, workload: &GcnWorkload) -> GcnPhaseTimes {
        let piuma = self.piuma_side();
        let mut t = GcnPhaseTimes::default();
        let accel_flops = self.dense_tiles as f64 * self.dense_tile_gflops * 1e9;
        let piuma_dense_flops = piuma.dense.node_flops_per_second(&piuma.machine);
        for layer in workload.layers() {
            t.spmm_ns += piuma.spmm_time_ns(layer);
            t.glue_ns += piuma.glue_time_ns(layer);
            // Dense work splits across both engines; it remains bounded by
            // the DGAS bandwidth exactly as on the homogeneous node.
            let compute_ns = layer.dense_flops() / (piuma_dense_flops + accel_flops) * 1e9;
            let bytes_ns = layer.dense_bytes(4) / piuma.machine.aggregate_bandwidth_gbps();
            t.dense_ns += compute_ns.max(bytes_ns);
        }
        t
    }

    /// Finds the dense-tile count (0..total_tiles-1) minimizing GCN time
    /// for `workload`, returning `(dense_tiles, times)`.
    pub fn best_split(&self, workload: &GcnWorkload) -> (usize, GcnPhaseTimes) {
        (0..self.total_tiles)
            .map(|d| (d, self.with_dense_tiles(d).gcn_times(workload)))
            .min_by(|a, b| a.1.total_ns().total_cmp(&b.1.total_ns()))
            .expect("at least one split exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::OgbDataset;

    fn workload(d: OgbDataset, hidden: usize) -> GcnWorkload {
        let s = d.stats();
        GcnWorkload::paper_model(s.vertices, s.edges, s.input_dim, hidden, s.output_dim)
    }

    #[test]
    fn dense_tiles_help_dense_bound_workloads() {
        // arxiv at K=256 is >70% Dense MM on the homogeneous node (Fig. 10);
        // converting a die to an accelerator must cut total time.
        let soc = HeterogeneousSoc::all_piuma(4);
        let w = workload(OgbDataset::Arxiv, 256);
        let homo = soc.gcn_times(&w).total_ns();
        let hetero = soc.with_dense_tiles(1).gcn_times(&w).total_ns();
        assert!(
            hetero < homo,
            "1 dense tile should help arxiv@256: {hetero:.0} vs {homo:.0}"
        );
    }

    #[test]
    fn dense_tiles_hurt_sparse_bound_workloads() {
        // ddi at K=8 is SpMM-bound; giving up bandwidth for dense compute
        // must cost time.
        let soc = HeterogeneousSoc::all_piuma(4);
        let w = workload(OgbDataset::Ddi, 8);
        let homo = soc.gcn_times(&w).total_ns();
        let hetero = soc.with_dense_tiles(2).gcn_times(&w).total_ns();
        assert!(hetero > homo);
    }

    #[test]
    fn best_split_depends_on_embedding_dimension() {
        // The paper: "the ratio ... will largely depend on the application
        // requirements". Small K wants all dies; large K wants accelerators.
        let soc = HeterogeneousSoc::all_piuma(4);
        let (small_k, _) = soc.best_split(&workload(OgbDataset::Products, 8));
        let (large_k, _) = soc.best_split(&workload(OgbDataset::Mag, 256));
        assert!(
            large_k > small_k,
            "K=256 split {large_k} vs K=8 split {small_k}"
        );
    }

    #[test]
    fn best_split_is_never_worse_than_homogeneous() {
        let soc = HeterogeneousSoc::all_piuma(4);
        for d in [OgbDataset::Arxiv, OgbDataset::Products, OgbDataset::Papers] {
            for k in [8usize, 256] {
                let w = workload(d, k);
                let (_, best) = soc.best_split(&w);
                assert!(best.total_ns() <= soc.gcn_times(&w).total_ns() + 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one PIUMA die")]
    fn all_dense_is_rejected() {
        HeterogeneousSoc::all_piuma(2).with_dense_tiles(2);
    }
}
