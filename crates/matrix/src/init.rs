//! Weight-initialization schemes for dense matrices.

use crate::dense::DenseMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Random weight-initialization scheme used when constructing GCN layers.
///
/// # Examples
///
/// ```
/// use matrix::WeightInit;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let w = WeightInit::Glorot.build(16, 8, &mut rng);
/// assert_eq!(w.shape(), (16, 8));
/// assert!(w.all_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum WeightInit {
    /// Glorot / Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    #[default]
    Glorot,
    /// Uniform on a caller-specified symmetric interval `U(-scale, scale)`.
    Uniform {
        /// Half-width of the sampling interval.
        scale: f32,
    },
    /// All weights set to a constant; useful for deterministic tests.
    Constant {
        /// The constant value.
        value: f32,
    },
}

impl WeightInit {
    /// Builds a `fan_in x fan_out` weight matrix with this scheme.
    pub fn build<R: Rng + ?Sized>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(fan_in, fan_out);
        match self {
            WeightInit::Glorot => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                for x in m.as_mut_slice() {
                    *x = rng.gen_range(-a..=a);
                }
            }
            WeightInit::Uniform { scale } => {
                for x in m.as_mut_slice() {
                    *x = rng.gen_range(-scale..=scale);
                }
            }
            WeightInit::Constant { value } => {
                for x in m.as_mut_slice() {
                    *x = value;
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_stays_in_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = WeightInit::Glorot.build(100, 50, &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= a + 1e-6));
    }

    #[test]
    fn glorot_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = WeightInit::Glorot.build(10, 10, &mut rng);
        let distinct = w
            .as_slice()
            .iter()
            .filter(|&&x| x != w.as_slice()[0])
            .count();
        assert!(distinct > 0, "all weights identical");
    }

    #[test]
    fn constant_fills_uniformly() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = WeightInit::Constant { value: 0.25 }.build(4, 4, &mut rng);
        assert!(w.as_slice().iter().all(|&x| x == 0.25));
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = WeightInit::Uniform { scale: 0.1 }.build(30, 30, &mut rng);
        assert!(w.as_slice().iter().all(|&x| x.abs() <= 0.1));
    }

    #[test]
    fn seeded_builds_are_reproducible() {
        let w1 = WeightInit::Glorot.build(8, 8, &mut StdRng::seed_from_u64(9));
        let w2 = WeightInit::Glorot.build(8, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(w1, w2);
    }
}
