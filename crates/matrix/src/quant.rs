//! Narrow-precision storage for dense operands: bf16 / f16 / int8 with
//! round-to-nearest-even conversion, saturating casts, and per-row scale
//! calibration.
//!
//! The paper's characterization shows both GCN pillars — SpMM aggregation
//! and the dense update — are bandwidth-bound at the feature widths it
//! sweeps, so halving (bf16/f16) or quartering (int8) the bytes moved per
//! feature element is the dominant lever once the f32 SIMD engine is in
//! place. The contract throughout this module (and the micro-kernels that
//! consume its payloads) is **storage narrows, arithmetic does not**:
//!
//! * bf16 / f16 values are decoded to `f32` lanes before every
//!   multiply-accumulate; accumulators are always `f32`;
//! * int8 values carry a per-row scale ([`QuantMatrix`]) or per-row /
//!   per-column scales (the packed GEMM path) and accumulate in `i32`
//!   (GEMM) or `f32` with the scale folded into the AXPY coefficient
//!   (SpMM), dequantized on write-back.
//!
//! Conversions round to nearest-even ([`f32_to_bf16`], [`f32_to_f16`],
//! [`saturating_cast_i8`]) and saturate rather than wrap: out-of-range
//! int8 inputs clamp to ±127, NaN quantizes to 0, and f16 overflow goes
//! to ±inf exactly as IEEE 754 binary16 prescribes.

// BOUNDS: all `[]` indexing in this module is over row slices carved as
// `[r * cols .. (r + 1) * cols]` from payload buffers that `encode`
// resizes to exactly `rows * cols` elements (and `scales` to `rows`), with
// `r < rows` checked by the callers' loop bounds; `decode` writes through
// the same row carving after `resize_zeroed(rows, cols)`.

use crate::dense::DenseMatrix;
use crate::error::MatrixError;

/// Storage precision for a dense operand on the inference hot path.
///
/// `F32` is the reference path (no quantization); the narrow variants
/// store 2 or 1 bytes per element and decode/dequantize into `f32`
/// arithmetic inside the micro-kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full-precision `f32` storage — the reference path.
    #[default]
    F32,
    /// bfloat16: the top 16 bits of an `f32`, round-to-nearest-even.
    /// Same exponent range as `f32`, 8-bit significand.
    Bf16,
    /// IEEE 754 binary16: 5-bit exponent, 11-bit significand. Narrow
    /// range (max ~65504) but more mantissa than bf16.
    F16,
    /// Symmetric int8 with per-row (feature) / per-column (weight)
    /// scales; accumulation widens to `i32` (GEMM) or folds the scale
    /// into the `f32` AXPY coefficient (SpMM).
    Int8,
}

impl Precision {
    /// Human-readable name (used by benches, reports, and `parse`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }

    /// Parses a precision name as produced by [`Precision::name`]
    /// (`"f32"` / `"bf16"` / `"f16"` / `"int8"`); `None` for anything else.
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f32" => Some(Precision::F32),
            "bf16" => Some(Precision::Bf16),
            "f16" => Some(Precision::F16),
            "int8" => Some(Precision::Int8),
            _ => None,
        }
    }

    /// Bytes of storage per element (4 / 2 / 2 / 1).
    pub fn storage_bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::Bf16 | Precision::F16 => 2,
            Precision::Int8 => 1,
        }
    }

    /// True for the narrow (sub-f32) storage variants.
    pub fn is_narrow(self) -> bool {
        self != Precision::F32
    }

    /// Next rung of the graceful-degradation chain, mirroring the kernel
    /// backend chain: int8 falls back to bf16 (wider storage, same
    /// exponent range as f32), bf16 and f16 fall back to full f32, and
    /// f32 is the last resort (`None`).
    pub fn fallback(self) -> Option<Precision> {
        match self {
            Precision::Int8 => Some(Precision::Bf16),
            Precision::Bf16 | Precision::F16 => Some(Precision::F32),
            Precision::F32 => None,
        }
    }

    /// All precisions, widest first — the sweep order used by benches and
    /// the accuracy harness.
    pub fn all() -> [Precision; 4] {
        [
            Precision::F32,
            Precision::Bf16,
            Precision::F16,
            Precision::Int8,
        ]
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Largest int8 magnitude used by the symmetric quantizer. ±127 (not
/// -128) keeps the grid symmetric so negating a value never saturates
/// asymmetrically.
pub const I8_MAX_Q: f32 = 127.0;

// ---------------------------------------------------------------------------
// Scalar conversions
// ---------------------------------------------------------------------------

/// `f32` → bfloat16 with round-to-nearest-even. NaN maps to a quiet NaN
/// (payload top bit forced so the result cannot round to infinity);
/// ±inf is preserved exactly.
#[inline]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep the sign, force a quiet-NaN mantissa bit.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round-to-nearest-even at bit 16: add 0x7FFF plus the parity of the
    // bit that will become the LSB; mantissa carries propagate into the
    // exponent exactly as rounding-up requires.
    let round = 0x7FFF + ((bits >> 16) & 1);
    ((bits.wrapping_add(round)) >> 16) as u16
}

/// bfloat16 → `f32` (exact: bf16 is a prefix of the f32 encoding).
#[inline]
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// `2^24` as `f32`, the scale between binary16 subnormal steps and units.
const F16_SUBNORMAL_SCALE: f32 = 16_777_216.0;

/// `f32` → IEEE 754 binary16 with round-to-nearest-even. Values past the
/// half range saturate to ±inf, subnormal halves are rounded on the
/// `2^-24` grid, NaN maps to a quiet NaN with the sign preserved.
#[inline]
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7FFF_FFFF;
    if abs >= 0x7F80_0000 {
        // NaN → quiet NaN; ±inf → ±inf.
        return if abs > 0x7F80_0000 {
            sign | 0x7E00
        } else {
            sign | 0x7C00
        };
    }
    if abs < 0x3880_0000 {
        // |x| < 2^-14: subnormal half (or zero). Count 2^-24 steps with
        // ties-to-even; 1024 steps lands exactly on the smallest normal.
        let q = (f32::from_bits(abs) * F16_SUBNORMAL_SCALE).round_ties_even() as u16;
        return sign | q;
    }
    // Normal range: round the 23-bit mantissa to 10 bits at bit 13, then
    // rebias the exponent (127 → 15). A mantissa carry ripples into the
    // exponent, which also turns values ≥ 65520 into ±inf — the correct
    // nearest-even result at the top of the half range.
    let mant_odd = (abs >> 13) & 1;
    let rounded = abs + 0x0FFF + mant_odd;
    if rounded >= 0x4780_0000 {
        return sign | 0x7C00;
    }
    sign | ((rounded.wrapping_sub(112 << 23) >> 13) as u16)
}

/// IEEE 754 binary16 → `f32` (exact for every half value).
#[inline]
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;
    if exp == 0x1F {
        // Inf / NaN: widen the payload into the f32 mantissa.
        return f32::from_bits(sign | 0x7F80_0000 | (man << 13));
    }
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign); // ±0
        }
        let v = (man as f32) / F16_SUBNORMAL_SCALE;
        return if sign != 0 { -v } else { v };
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (man << 13))
}

/// Saturating `f32` → int8 on the symmetric grid: round-to-nearest-even,
/// clamp to ±127, NaN → 0, ±inf → ±127.
#[inline]
pub fn saturating_cast_i8(x: f32) -> i8 {
    if x.is_nan() {
        return 0;
    }
    let r = x.round_ties_even();
    if r <= -I8_MAX_Q {
        -127
    } else if r >= I8_MAX_Q {
        127
    } else {
        r as i8
    }
}

/// Calibrates a symmetric int8 scale from data: `max |v| / 127` over the
/// finite entries, or `1.0` when there are none (so all-zero and
/// all-non-finite inputs still get a usable scale). Dequantization is
/// `q * scale`; quantization multiplies by the reciprocal.
pub fn calibrate_scale(values: &[f32]) -> f32 {
    let max_abs = values
        .iter()
        .filter(|v| v.is_finite())
        .fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs > 0.0 {
        max_abs / I8_MAX_Q
    } else {
        1.0
    }
}

/// Quantizes a slice onto the symmetric int8 grid with a precomputed
/// reciprocal scale (`dst[i] = saturating_cast_i8(src[i] * inv_scale)`).
/// Lengths beyond the shorter slice are left untouched.
pub fn quantize_i8_slice(src: &[f32], inv_scale: f32, dst: &mut [i8]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = saturating_cast_i8(s * inv_scale);
    }
}

// ---------------------------------------------------------------------------
// Quantized feature storage
// ---------------------------------------------------------------------------

/// Borrowed view of one quantized row: the payload plus whatever the
/// consumer needs to dequantize it. Int8 rows carry their per-row scale;
/// the SpMM kernels fold it into the AXPY coefficient so accumulation
/// stays in `f32`.
#[derive(Debug, Clone, Copy)]
pub enum QuantRow<'a> {
    /// bfloat16 payload.
    Bf16(&'a [u16]),
    /// IEEE binary16 payload.
    F16(&'a [u16]),
    /// Symmetric int8 payload with its dequantization scale.
    Int8(f32, &'a [i8]),
}

/// A row-major matrix stored at a narrow [`Precision`], with per-row
/// scales for int8. Buffers are reused across [`QuantMatrix::encode`]
/// calls, so steady-state re-encoding at a fixed shape never touches the
/// allocator — the same contract the pool scratch gives the kernels.
#[derive(Debug, Clone, Default)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    precision: Precision,
    /// bf16 / f16 payload (`rows * cols` entries when active).
    wide: Vec<u16>,
    /// int8 payload (`rows * cols` entries when active).
    narrow: Vec<i8>,
    /// Per-row dequantization scales (int8 only).
    scales: Vec<f32>,
}

impl QuantMatrix {
    /// An empty quantized matrix; [`QuantMatrix::encode`] gives it shape.
    pub fn new() -> QuantMatrix {
        QuantMatrix::default()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The precision the payload is currently encoded at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Raw bf16/f16 payload (`rows * cols` entries when active, empty for
    /// int8) — the register-tiled SpMM row accumulator indexes rows
    /// directly instead of matching a [`QuantRow`] per non-zero.
    pub(crate) fn wide_payload(&self) -> &[u16] {
        &self.wide
    }

    /// Raw int8 payload plus per-row scales (empty for bf16/f16).
    pub(crate) fn int8_payload(&self) -> (&[i8], &[f32]) {
        (&self.narrow, &self.scales)
    }

    /// Re-encodes `src` at `precision`, reusing the payload buffers.
    /// Int8 rows are calibrated independently ([`calibrate_scale`]).
    ///
    /// # Errors
    ///
    /// [`MatrixError::UnsupportedPrecision`] when `precision` is
    /// [`Precision::F32`] — full-precision operands stay in their
    /// [`DenseMatrix`]; this container only holds narrowed payloads.
    pub fn encode(&mut self, src: &DenseMatrix, precision: Precision) -> crate::Result<()> {
        let (rows, cols) = src.shape();
        self.rows = rows;
        self.cols = cols;
        self.precision = precision;
        match precision {
            Precision::F32 => Err(MatrixError::UnsupportedPrecision {
                op: "quant.encode",
                precision: precision.name(),
            }),
            Precision::Bf16 => {
                self.narrow.clear();
                self.scales.clear();
                self.wide.resize(rows * cols, 0);
                for (d, &s) in self.wide.iter_mut().zip(src.as_slice()) {
                    *d = f32_to_bf16(s);
                }
                Ok(())
            }
            Precision::F16 => {
                self.narrow.clear();
                self.scales.clear();
                self.wide.resize(rows * cols, 0);
                for (d, &s) in self.wide.iter_mut().zip(src.as_slice()) {
                    *d = f32_to_f16(s);
                }
                Ok(())
            }
            Precision::Int8 => {
                self.wide.clear();
                self.narrow.resize(rows * cols, 0);
                self.scales.resize(rows, 1.0);
                for r in 0..rows {
                    let src_row = src.row(r);
                    let scale = calibrate_scale(src_row);
                    self.scales[r] = scale;
                    let dst_row = &mut self.narrow[r * cols..(r + 1) * cols];
                    quantize_i8_slice(src_row, 1.0 / scale, dst_row);
                }
                Ok(())
            }
        }
    }

    /// Borrowed view of row `r` (panics in debug builds if `r` is out of
    /// range, like slice indexing would).
    #[inline]
    pub fn row(&self, r: usize) -> QuantRow<'_> {
        self.row_range(r, 0, self.cols)
    }

    /// Borrowed view of columns `[c0, c1)` of row `r` — the feature-tiled
    /// kernels slice rows to their active tile.
    #[inline]
    pub fn row_range(&self, r: usize, c0: usize, c1: usize) -> QuantRow<'_> {
        let base = r * self.cols;
        match self.precision {
            Precision::Int8 => QuantRow::Int8(self.scales[r], &self.narrow[base + c0..base + c1]),
            Precision::F16 => QuantRow::F16(&self.wide[base + c0..base + c1]),
            // Bf16 is also the decode used for an (unreachable in the
            // kernels) F32-tagged container, keeping `row` total.
            _ => QuantRow::Bf16(&self.wide[base + c0..base + c1]),
        }
    }

    /// Dequantizes the whole payload back to `f32` (test / harness aid;
    /// the kernels never round-trip through this).
    pub fn decode(&self, out: &mut DenseMatrix) {
        out.resize_zeroed(self.rows, self.cols);
        match self.precision {
            Precision::Int8 => {
                for r in 0..self.rows {
                    let scale = self.scales[r];
                    let src = &self.narrow[r * self.cols..(r + 1) * self.cols];
                    for (d, &q) in out.row_mut(r).iter_mut().zip(src) {
                        *d = q as f32 * scale;
                    }
                }
            }
            Precision::F16 => {
                for (d, &w) in out.as_mut_slice().iter_mut().zip(&self.wide) {
                    *d = f16_to_f32(w);
                }
            }
            _ => {
                for (d, &w) in out.as_mut_slice().iter_mut().zip(&self.wide) {
                    *d = bf16_to_f32(w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_round_trip_is_exact_for_representable_values() {
        for v in [0.0f32, -0.0, 1.0, -2.5, 0.15625, 3.0e38, -1.0e-30] {
            let b = f32_to_bf16(v);
            let back = bf16_to_f32(b);
            // Representable values (8-bit significand) survive exactly.
            if (v.to_bits() & 0xFFFF) == 0 {
                assert_eq!(back.to_bits(), v.to_bits(), "v={v}");
            }
            assert!((back - v).abs() <= v.abs() / 128.0, "v={v} back={back}");
        }
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-9 sits exactly between two bf16 values; ties go to the
        // even mantissa (1.0 here).
        let tie = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_to_f32(f32_to_bf16(tie)), 1.0);
        // One ULP above the tie rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert!(bf16_to_f32(f32_to_bf16(above)) > 1.0);
    }

    #[test]
    fn bf16_preserves_inf_and_quiets_nan() {
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(
            bf16_to_f32(f32_to_bf16(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_round_trip_matches_known_encodings() {
        // Spot-check against the IEEE binary16 table.
        for (v, h) in [
            (0.0f32, 0x0000u16),
            (1.0, 0x3C00),
            (-2.0, 0xC000),
            (65504.0, 0x7BFF),        // largest normal half
            (6.103_515_6e-5, 0x0400), // smallest normal half
            (5.960_464_5e-8, 0x0001), // smallest subnormal half
        ] {
            assert_eq!(f32_to_f16(v), h, "encode {v}");
            assert_eq!(f16_to_f32(h), v, "decode {h:#06x}");
        }
    }

    #[test]
    fn f16_saturates_overflow_and_flushes_tiny_to_zero() {
        assert_eq!(f16_to_f32(f32_to_f16(1.0e6)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(-1.0e6)), f32::NEG_INFINITY);
        // 65520 is the round-to-inf threshold; 65519.996 rounds down.
        assert_eq!(f16_to_f32(f32_to_f16(65520.0)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(65519.0)), 65504.0);
        // Below half the smallest subnormal → zero.
        assert_eq!(f16_to_f32(f32_to_f16(1.0e-9)), 0.0);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
    }

    #[test]
    fn saturating_cast_handles_edges() {
        assert_eq!(saturating_cast_i8(f32::NAN), 0);
        assert_eq!(saturating_cast_i8(f32::INFINITY), 127);
        assert_eq!(saturating_cast_i8(f32::NEG_INFINITY), -127);
        assert_eq!(saturating_cast_i8(1.0e9), 127);
        assert_eq!(saturating_cast_i8(-1.0e9), -127);
        assert_eq!(saturating_cast_i8(0.5), 0); // ties to even
        assert_eq!(saturating_cast_i8(1.5), 2);
        assert_eq!(saturating_cast_i8(-0.5), 0);
        assert_eq!(saturating_cast_i8(2.4), 2);
    }

    #[test]
    fn calibrate_scale_ignores_non_finite_and_handles_zeros() {
        assert_eq!(calibrate_scale(&[0.0, 0.0]), 1.0);
        assert_eq!(calibrate_scale(&[]), 1.0);
        assert_eq!(calibrate_scale(&[f32::NAN, f32::INFINITY]), 1.0);
        let s = calibrate_scale(&[-254.0, 1.0, f32::NAN]);
        assert!((s - 2.0).abs() < 1e-6);
    }

    #[test]
    fn quant_matrix_round_trip_error_is_bounded() {
        let src = DenseMatrix::from_vec(
            3,
            4,
            vec![
                0.0, 1.0, -1.0, 0.5, 100.0, -50.0, 25.0, -12.5, 1e-3, -2e-3, 3e-3, 0.0,
            ],
        )
        .unwrap();
        let mut q = QuantMatrix::new();
        let mut back = DenseMatrix::default();
        for p in [Precision::Bf16, Precision::F16, Precision::Int8] {
            q.encode(&src, p).unwrap();
            assert_eq!(q.shape(), src.shape());
            q.decode(&mut back);
            for r in 0..src.rows() {
                let row_max = src.row(r).iter().fold(0.0f32, |m, v| m.max(v.abs()));
                for (a, b) in src.row(r).iter().zip(back.row(r)) {
                    let tol = match p {
                        // Relative per-element for the float formats …
                        Precision::Bf16 => a.abs() / 128.0 + 1e-9,
                        Precision::F16 => a.abs() / 1024.0 + 1e-9,
                        // … absolute half-step against the row max for int8.
                        _ => row_max / 127.0 * 0.5 + 1e-9,
                    };
                    assert!((a - b).abs() <= tol, "p={p} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn encode_rejects_f32() {
        let src = DenseMatrix::zeros(2, 2);
        let mut q = QuantMatrix::new();
        assert!(matches!(
            q.encode(&src, Precision::F32),
            Err(MatrixError::UnsupportedPrecision { .. })
        ));
    }

    #[test]
    fn precision_parse_and_fallback_chain() {
        for p in Precision::all() {
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::parse("fp64"), None);
        assert_eq!(Precision::Int8.fallback(), Some(Precision::Bf16));
        assert_eq!(Precision::Bf16.fallback(), Some(Precision::F32));
        assert_eq!(Precision::F16.fallback(), Some(Precision::F32));
        assert_eq!(Precision::F32.fallback(), None);
    }

    #[test]
    fn row_range_slices_the_tile() {
        let src =
            DenseMatrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -4.0, -3.0, -2.0, -1.0]).unwrap();
        let mut q = QuantMatrix::new();
        q.encode(&src, Precision::Int8).unwrap();
        match q.row_range(1, 1, 3) {
            QuantRow::Int8(scale, payload) => {
                assert_eq!(payload.len(), 2);
                assert!((payload[0] as f32 * scale + 3.0).abs() < 0.05);
            }
            other => panic!("unexpected row view {other:?}"),
        }
    }
}
