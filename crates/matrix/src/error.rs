//! Error types for dense-matrix operations.

use std::error::Error;
use std::fmt;

/// Error produced by dense-matrix construction and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two operands had incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The provided backing buffer does not match `rows * cols`.
    BufferSize {
        /// Expected element count (`rows * cols`).
        expected: usize,
        /// Actual element count supplied.
        actual: usize,
    },
    /// Row slices of unequal length were supplied to `from_rows`.
    RaggedRows {
        /// Length of the first row, which sets the expected width.
        expected: usize,
        /// Index of the offending row.
        row: usize,
        /// Its length.
        actual: usize,
    },
    /// A thread count of zero was requested for a parallel kernel.
    ZeroThreads,
    /// A non-finite value (NaN or ±Inf) was found where finite data is
    /// required — e.g. feature or weight matrices at an inference boundary.
    NonFinite {
        /// Which operand contained the value.
        what: &'static str,
        /// Row of the first offending element.
        row: usize,
        /// Column of the first offending element.
        col: usize,
    },
    /// A fault-injection site fired (`resilience::fault_point_err!` sites
    /// in kernels report through this variant; never produced in
    /// production runs with injection disarmed).
    Fault {
        /// Name of the fault site that fired.
        site: &'static str,
    },
    /// An operation was asked to run at a storage precision it does not
    /// support (e.g. encoding a `QuantMatrix` at `f32`, which stays in
    /// its `DenseMatrix`).
    UnsupportedPrecision {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Name of the offending precision.
        precision: &'static str,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::BufferSize { expected, actual } => write!(
                f,
                "buffer size mismatch: expected {expected} elements, got {actual}"
            ),
            MatrixError::RaggedRows {
                expected,
                row,
                actual,
            } => write!(
                f,
                "ragged rows: row {row} has {actual} elements, expected {expected}"
            ),
            MatrixError::ZeroThreads => write!(f, "parallel kernel requires at least one thread"),
            MatrixError::NonFinite { what, row, col } => {
                write!(f, "non-finite value in {what} at ({row}, {col})")
            }
            MatrixError::Fault { site } => write!(f, "injected fault at `{site}`"),
            MatrixError::UnsupportedPrecision { op, precision } => {
                write!(f, "{op} does not support precision `{precision}`")
            }
        }
    }
}

impl Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = MatrixError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MatrixError>();
    }
}
