//! Dense GEMM kernels: naive reference, cache-blocked, and multi-threaded.
//!
//! The GCN "update" phase is `H * W` where `H` is `|V| x K_in` (tall and
//! skinny) and `W` is `K_in x K_out` (small). All kernels here compute
//! `C = A * B` for arbitrary conforming shapes; the blocked and parallel
//! variants are tuned for the tall-skinny case.

use crate::dense::DenseMatrix;
use crate::error::MatrixError;
use crate::Result;

// BOUNDS: all `[]` indexing reads operand rows via `DenseMatrix::row`
// (length-checked by construction) or output chunks carved by
// `chunks_mut(rows_per * n)` from a buffer sized `m * n`; `check_shapes`
// ties the operand dimensions together at every entry point.

/// Cache-block edge (elements) used by [`gemm_into`]. 64 `f32` = 256 B
/// per row block keeps three blocks of typical GCN operand widths in L1.
const BLOCK: usize = 64;

pub(crate) fn check_shapes(op: &'static str, a: &DenseMatrix, b: &DenseMatrix) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

/// Dimension check for the transpose-GEMM path: `A^T * B` needs the two
/// operands to agree on their *row* count (the contraction dimension).
fn check_rows(op: &'static str, a: &DenseMatrix, b: &DenseMatrix) -> Result<()> {
    if a.rows() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

/// Naive triple-loop GEMM. The correctness reference for everything else.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn matmul_naive(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    check_shapes("matmul_naive", a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    Ok(c)
}

/// Single-threaded GEMM through the packed micro-kernel engine.
///
/// This entry point used to run the scalar cache-blocked ikj loop, but at
/// 512³ that loop measured *slower* than [`matmul_naive`] (block-edge
/// bookkeeping with no bandwidth win at L2-resident sizes), so it now
/// routes through [`crate::microkernel::matmul_packed_with`] with one
/// thread — no shipped kernel is slower than naive. The scalar blocked
/// loop survives as [`gemm_into`] for [`matmul_parallel_spawn`] and the
/// pool-overhead benchmark.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn matmul_blocked(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    check_shapes("matmul_blocked", a, b)?;
    let mut c = DenseMatrix::default();
    crate::microkernel::matmul_packed_with(
        crate::microkernel::KernelDispatch::get(),
        a,
        b,
        1,
        &mut c,
    )?;
    Ok(c)
}

/// Writes `A[row_start..row_end] * B` into `c_rows` (row-major,
/// `(row_end-row_start) * n` elements). Shared by the blocked and parallel
/// kernels.
fn gemm_into(
    a: &DenseMatrix,
    b: &DenseMatrix,
    c_rows: &mut [f32],
    row_start: usize,
    row_end: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(c_rows.len(), (row_end - row_start) * n);
    for pb in (0..k).step_by(BLOCK) {
        let pe = (pb + BLOCK).min(k);
        for i in row_start..row_end {
            // Slice the depth block directly: an `enumerate().take().skip()`
            // chain here re-walks the iterator from index 0 for every block,
            // which is what regressed `blocked` below `naive` at 512^3.
            let ablock = &a.row(i)[pb..pe];
            let crow = &mut c_rows[(i - row_start) * n..(i - row_start + 1) * n];
            for (off, &aip) in ablock.iter().enumerate() {
                if aip == 0.0 {
                    continue;
                }
                let brow = b.row(pb + off);
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aip * bj;
                }
            }
        }
    }
}

/// Multi-threaded GEMM that partitions rows of `A` across `threads`
/// executors of the process-wide [`pool::global`] thread pool. Each share
/// owns a disjoint slice of `C`, so no synchronization is needed beyond the
/// pool's completion barrier.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()` and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn matmul_parallel(a: &DenseMatrix, b: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
    let mut c = DenseMatrix::default();
    matmul_parallel_into(a, b, threads, &mut c)?;
    Ok(c)
}

/// [`matmul_parallel`] writing into a caller-owned output matrix.
///
/// `c` is reshaped to `(a.rows(), b.cols())` with
/// [`DenseMatrix::resize_zeroed`], so in steady state (same shapes every
/// call) the output is computed without touching the allocator. On error
/// `c` is left unchanged.
///
/// Since the micro-kernel engine landed this routes through
/// [`crate::microkernel::matmul_packed_with`] — panel-packed, register-tiled
/// inner loops on the process-wide [`crate::microkernel::KernelDispatch`] —
/// rather than the scalar cache-blocked loop (which survives as
/// [`gemm_into`], exercised by [`matmul_parallel_spawn`]).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()` and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn matmul_parallel_into(
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
    c: &mut DenseMatrix,
) -> Result<()> {
    check_shapes("matmul_parallel", a, b)?;
    crate::microkernel::matmul_packed_with(
        crate::microkernel::KernelDispatch::get(),
        a,
        b,
        threads,
        c,
    )
}

/// Spawn-per-call GEMM baseline: identical partitioning to
/// [`matmul_parallel`], but creating fresh scoped threads on every
/// invocation instead of reusing the persistent pool. Kept public so the
/// `pool_overhead` benchmark can quantify what pooling saves; all
/// production call sites use [`matmul_parallel`].
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()` and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn matmul_parallel_spawn(
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
) -> Result<DenseMatrix> {
    check_shapes("matmul_parallel", a, b)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = DenseMatrix::zeros(m, n);
    let threads = threads.min(m.max(1));
    if threads <= 1 || m == 0 {
        gemm_into(a, b, c.as_mut_slice(), 0, m, k, n);
        return Ok(c);
    }

    let rows_per = m.div_ceil(threads);
    // lint:allow(L005): spawn-per-call baseline exists to measure exactly
    // this kind of per-invocation cost; it is not on the steady-state path.
    let mut chunks: Vec<&mut [f32]> = c.as_mut_slice().chunks_mut(rows_per * n).collect();
    // lint:allow(L002): deliberate spawn-per-call baseline kept so the
    // pool_overhead benchmark can quantify what the persistent pool saves.
    crossbeam::scope(|s| {
        for (t, chunk) in chunks.drain(..).enumerate() {
            let row_start = t * rows_per;
            let row_end = (row_start + rows_per).min(m);
            s.spawn(move |_| {
                gemm_into(a, b, chunk, row_start, row_end, k, n);
            });
        }
    })
    .expect("gemm worker panicked");
    Ok(c)
}

/// Computes `A^T * B` without materializing the transpose: for each row
/// `p` of `A` and `B`, accumulates the outer-product contribution
/// `A[p, :]^T * B[p, :]`. This walks both operands row-major — exactly the
/// weight-gradient computation `dW = (A_hat H)^T dZ` of GCN training,
/// where an explicit transpose would double the traffic.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.rows() != b.rows()`.
pub fn matmul_at(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    let mut c = DenseMatrix::default();
    matmul_at_into(a, b, &mut c)?;
    Ok(c)
}

/// [`matmul_at`] writing into a caller-owned output matrix.
///
/// `c` is reshaped to `(a.cols(), b.cols())` with
/// [`DenseMatrix::resize_zeroed`], so the per-step weight-gradient GEMM of
/// the training loop reuses one buffer instead of allocating every call.
/// The outer-product row accumulation runs through the micro-kernel AXPY
/// ([`crate::microkernel::KernelDispatch::axpy`]), vectorizing over the
/// output width. On error `c` is left unchanged.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.rows() != b.rows()`.
pub fn matmul_at_into(a: &DenseMatrix, b: &DenseMatrix, c: &mut DenseMatrix) -> Result<()> {
    check_rows("matmul_at", a, b)?;
    let (rows, m) = a.shape();
    let n = b.cols();
    c.resize_zeroed(m, n);
    let kd = crate::microkernel::KernelDispatch::get();
    for p in 0..rows {
        let arow = a.row(p);
        let brow = b.row(p);
        for (i, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            kd.axpy(c.row_mut(i), aip, brow);
        }
    }
    Ok(())
}

/// FLOP count of a GEMM with these operand shapes (`2 * m * k * n`),
/// saturating instead of overflowing on huge synthetic shapes: the product
/// is formed in `u128` with saturating multiplies before the final `f64`
/// conversion, so `usize::MAX`-scale inputs report `u128::MAX` FLOPs
/// (~3.4e38) rather than a wrapped garbage count.
pub fn gemm_flops(m: usize, k: usize, n: usize) -> f64 {
    (m as u128)
        .saturating_mul(k as u128)
        .saturating_mul(n as u128)
        .saturating_mul(2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn naive_matches_hand_example() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = matmul_naive(&a, &b).unwrap();
        let expected = DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn blocked_matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (64, 64, 64),
            (65, 129, 33),
            (100, 17, 200),
        ] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let c0 = matmul_naive(&a, &b).unwrap();
            let c1 = matmul_blocked(&a, &b).unwrap();
            assert!(c0.max_abs_diff(&c1) < 1e-4, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn parallel_matches_naive_for_various_thread_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_matrix(&mut rng, 97, 43);
        let b = random_matrix(&mut rng, 43, 21);
        let reference = matmul_naive(&a, &b).unwrap();
        for threads in [1, 2, 3, 8, 200] {
            let c = matmul_parallel(&a, &b, threads).unwrap();
            assert!(
                reference.max_abs_diff(&c) < 1e-4,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn parallel_into_reuses_buffer_and_clears_stale_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 33, 17);
        let b = random_matrix(&mut rng, 17, 9);
        let reference = matmul_naive(&a, &b).unwrap();
        // Pre-poison the output with a larger stale matrix.
        let mut c = DenseMatrix::filled(50, 50, f32::NAN);
        let ptr = c.as_slice().as_ptr();
        matmul_parallel_into(&a, &b, 4, &mut c).unwrap();
        assert!(reference.max_abs_diff(&c) < 1e-4);
        assert_eq!(
            c.as_slice().as_ptr(),
            ptr,
            "capacity was large enough: no realloc"
        );
        // Second call with identical shapes must also be correct.
        matmul_parallel_into(&a, &b, 4, &mut c).unwrap();
        assert!(reference.max_abs_diff(&c) < 1e-4);
    }

    #[test]
    fn spawn_baseline_matches_pooled_kernel() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_matrix(&mut rng, 61, 29);
        let b = random_matrix(&mut rng, 29, 13);
        let pooled = matmul_parallel(&a, &b, 5).unwrap();
        let spawned = matmul_parallel_spawn(&a, &b, 5).unwrap();
        assert!(pooled.max_abs_diff(&spawned) < 1e-5);
    }

    #[test]
    fn zero_width_outputs_are_handled() {
        let a = DenseMatrix::zeros(4, 3);
        let b = DenseMatrix::zeros(3, 0);
        let c = matmul_parallel(&a, &b, 4).unwrap();
        assert_eq!(c.shape(), (4, 0));
    }

    #[test]
    fn shape_mismatch_is_rejected_by_all_kernels() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        assert!(matmul_naive(&a, &b).is_err());
        assert!(matmul_blocked(&a, &b).is_err());
        assert!(matmul_parallel(&a, &b, 2).is_err());
    }

    #[test]
    fn zero_threads_is_rejected() {
        let a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::zeros(2, 2);
        assert_eq!(
            matmul_parallel(&a, &b, 0).unwrap_err(),
            MatrixError::ZeroThreads
        );
    }

    #[test]
    fn empty_matrices_multiply_to_empty() {
        let a = DenseMatrix::zeros(0, 3);
        let b = DenseMatrix::zeros(3, 4);
        let c = matmul_parallel(&a, &b, 4).unwrap();
        assert_eq!(c.shape(), (0, 4));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(rows, m, n) in &[(1usize, 1usize, 1usize), (13, 7, 5), (64, 32, 48)] {
            let a = random_matrix(&mut rng, rows, m);
            let b = random_matrix(&mut rng, rows, n);
            let direct = matmul_at(&a, &b).unwrap();
            let explicit = a.transpose().matmul(&b).unwrap();
            assert!(
                direct.max_abs_diff(&explicit) < 1e-4,
                "shape ({rows},{m},{n})"
            );
        }
    }

    #[test]
    fn matmul_at_rejects_mismatched_row_counts() {
        let a = DenseMatrix::zeros(3, 2);
        let b = DenseMatrix::zeros(4, 2);
        assert!(matmul_at(&a, &b).is_err());
    }

    #[test]
    fn matmul_at_into_reuses_buffer_and_clears_stale_values() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_matrix(&mut rng, 19, 11);
        let b = random_matrix(&mut rng, 19, 7);
        let reference = matmul_at(&a, &b).unwrap();
        let mut c = DenseMatrix::filled(30, 30, f32::NAN);
        let ptr = c.as_slice().as_ptr();
        matmul_at_into(&a, &b, &mut c).unwrap();
        assert!(reference.max_abs_diff(&c) < 1e-4);
        assert_eq!(
            c.as_slice().as_ptr(),
            ptr,
            "capacity was large enough: no realloc"
        );
        matmul_at_into(&a, &b, &mut c).unwrap();
        assert!(reference.max_abs_diff(&c) < 1e-4);
    }

    #[test]
    fn matmul_at_into_rejects_mismatched_rows_and_preserves_output() {
        let a = DenseMatrix::zeros(3, 2);
        let b = DenseMatrix::zeros(4, 2);
        let mut c = DenseMatrix::filled(1, 1, 42.0);
        assert!(matmul_at_into(&a, &b, &mut c).is_err());
        assert_eq!(c.shape(), (1, 1));
        assert_eq!(c.as_slice()[0], 42.0);
    }

    #[test]
    fn gemm_flop_count_matches_formula() {
        assert_eq!(gemm_flops(10, 20, 30), 12000.0);
    }

    #[test]
    fn gemm_flop_count_saturates_on_huge_shapes() {
        let huge = gemm_flops(usize::MAX, usize::MAX, usize::MAX);
        assert!(huge.is_finite());
        assert_eq!(huge, u128::MAX as f64);
        // Saturation must not disturb realistic shapes.
        assert_eq!(gemm_flops(512, 512, 512), 2.0 * 512.0f64.powi(3));
    }
}
