//! Dense row-major matrices and the kernels that operate on them.
//!
//! This crate is the "update phase" substrate of the GCN reproduction: a GCN
//! layer computes `H' = sigma(A_hat * H * W)` and everything after the sparse
//! aggregation — the dense multiply by `W`, the bias add and the activation —
//! lives here.
//!
//! The centerpiece is [`DenseMatrix`], a row-major `f32` matrix, together
//! with GEMM implementations of increasing sophistication:
//!
//! * [`gemm::matmul_naive`] — triple loop, the correctness reference,
//! * [`gemm::matmul_blocked`] — single-threaded entry into the packed
//!   engine (the scalar cache-blocked loop it replaced regressed below
//!   naive at L2-resident sizes),
//! * [`gemm::matmul_parallel`] — row-partitioned multi-threaded GEMM,
//! * [`microkernel::matmul_packed`] — panel-packed, register-tiled GEMM with
//!   runtime SIMD dispatch; [`DenseMatrix::matmul`] and the parallel `_into`
//!   entry points route through it.
//!
//! # Examples
//!
//! ```
//! use matrix::DenseMatrix;
//!
//! let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
//! let b = DenseMatrix::identity(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c, a);
//! ```

// `unsafe` is denied crate-wide; only `microkernel` opts back in for its
// runtime-dispatched `std::arch` SIMD paths, each with a SAFETY argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Elementwise activations (ReLU, softmax, …).
pub mod activation;
/// Row-major [`DenseMatrix`] storage.
pub mod dense;
/// Shape-mismatch and dimension errors.
pub mod error;
/// Sequential and pool-parallel dense GEMM.
pub mod gemm;
/// Weight initialization schemes (Xavier/Glorot, …).
pub mod init;
/// Register-tiled SIMD micro-kernels (packed GEMM, widened AXPY) with
/// runtime backend dispatch.
pub mod microkernel;
/// Narrow-precision storage (bf16 / f16 / int8): round-to-nearest-even
/// conversions, saturating casts, scale calibration, and the
/// [`quant::QuantMatrix`] payload container the quantized kernels read.
pub mod quant;

pub use activation::Activation;
pub use dense::DenseMatrix;
pub use error::MatrixError;
pub use init::WeightInit;
pub use quant::{Precision, QuantMatrix, QuantRow};

/// Convenience result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, MatrixError>;
