//! Element-wise activation functions (the `sigma` in a GCN layer).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An element-wise non-linearity applied after the dense update.
///
/// The paper's GCN model uses ReLU between layers and no activation on the
/// output layer; both are representable here.
///
/// # Examples
///
/// ```
/// use matrix::Activation;
///
/// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
/// assert_eq!(Activation::Relu.apply(3.0), 3.0);
/// assert_eq!(Activation::Identity.apply(-2.0), -2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — the default hidden-layer activation.
    #[default]
    Relu,
    /// Leaky ReLU with a fixed negative slope of 0.01.
    LeakyRelu,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// No-op; used on output layers that feed a softmax/loss elsewhere.
    Identity,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Applies the activation to every element of `data`, in place.
    ///
    /// [`Activation::Identity`] is a true no-op (no pass over the data), so
    /// output layers pay nothing.
    pub fn apply_in_place(self, data: &mut [f32]) {
        if self == Activation::Identity {
            return;
        }
        for x in data.iter_mut() {
            *x = self.apply(*x);
        }
    }

    /// Derivative of the activation with respect to its input, evaluated at
    /// pre-activation value `x` (used by backpropagation).
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }

    /// Approximate FLOPs charged per element, used by the platform timing
    /// models to cost the "glue code" phase.
    pub fn flops_per_element(self) -> f64 {
        match self {
            Activation::Identity => 0.0,
            Activation::Relu | Activation::LeakyRelu => 1.0,
            Activation::Sigmoid | Activation::Tanh => 4.0,
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::Relu => "relu",
            Activation::LeakyRelu => "leaky_relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn leaky_relu_preserves_small_negative_signal() {
        assert!((Activation::LeakyRelu.apply(-1.0) + 0.01).abs() < 1e-7);
        assert_eq!(Activation::LeakyRelu.apply(5.0), 5.0);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(s.apply(100.0) <= 1.0);
        assert!(s.apply(-100.0) >= 0.0);
    }

    #[test]
    fn tanh_is_odd() {
        let t = Activation::Tanh;
        assert!((t.apply(0.7) + t.apply(-0.7)).abs() < 1e-6);
    }

    #[test]
    fn apply_in_place_matches_scalar_apply() {
        let mut v = vec![-2.0, -0.5, 0.0, 0.5, 2.0];
        let expected: Vec<f32> = v.iter().map(|&x| Activation::Relu.apply(x)).collect();
        Activation::Relu.apply_in_place(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn identity_apply_in_place_is_noop() {
        let mut v = vec![-1.0, 2.0];
        Activation::Identity.apply_in_place(&mut v);
        assert_eq!(v, vec![-1.0, 2.0]);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for x in [-1.5f32, -0.4, 0.3, 2.0] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::Identity.to_string(), "identity");
    }

    #[test]
    fn flop_costs_are_ordered() {
        assert_eq!(Activation::Identity.flops_per_element(), 0.0);
        assert!(Activation::Relu.flops_per_element() < Activation::Sigmoid.flops_per_element());
    }
}
