//! Register-tiled SIMD micro-kernels: packed GEMM and widened AXPY.
//!
//! This module is the dense-arithmetic engine behind both pillars of a GCN
//! layer. The paper's characterization makes the case directly: SpMM inner
//! work is dense row accumulation over the feature dimension, and the dense
//! update `H * W` is the second pillar — so one set of micro-kernels can
//! serve both if it exposes (a) a packed, cache-blocked GEMM and (b) a
//! feature-panel AXPY (`y += alpha * x`) for the sparse row loops.
//!
//! # Kernel backends
//!
//! Three implementations of the same 8x8-register-tile contract, selected
//! **once per process** by [`KernelDispatch::get`] and cached:
//!
//! * [`Backend::Avx2Fma`] — `std::arch` intrinsics behind a runtime
//!   `is_x86_feature_detected!("avx2")` + `"fma"` check; 8 YMM accumulators,
//!   one `vbroadcastss` + `vfmadd` per packed A lane.
//! * [`Backend::Portable`] — safe Rust written so LLVM autovectorizes it
//!   (fixed 8-wide inner loops over packed panels); the default everywhere
//!   AVX2 is absent and the forced path in CI's `MICROKERNEL_FORCE=portable`
//!   job.
//! * [`Backend::Scalar`] — the deliberately plain reference used by the
//!   dispatch-agreement tests.
//!
//! The environment variable `MICROKERNEL_FORCE` (`portable` / `scalar` /
//! `avx2`) overrides detection; forcing `avx2` on hardware without it
//! silently falls back to `portable` so a [`KernelDispatch`] can never name
//! an unavailable instruction set — that invariant is what makes calling
//! the `#[target_feature]` functions sound.
//!
//! # Packing layout
//!
//! The blocked GEMM follows the classic Goto/BLIS decomposition: `KC`-deep
//! slices of the operands are packed into pool-owned scratch
//! ([`pool::ScratchArena::with_f32`], 64-byte aligned) as **micro-panels**:
//!
//! * A panels: `MR = 8` rows interleaved lane-major — element `(r, p)` of
//!   the block lands at `p * 8 + r`, so the micro-kernel broadcasts one
//!   contiguous lane group per depth step;
//! * B panels: `NR = 8` columns row-major — element `(p, j)` at `p * 8 + j`,
//!   one aligned 8-float vector load per depth step.
//!
//! Partial edge tiles are zero-padded inside the panels, so the inner
//! kernel always runs the full 8x8 shape and the write-back masks rows and
//! columns that fall outside `C`. `B` is packed once per `(jc, pc)` block
//! and shared read-only by every executor; each executor owns a private A
//! panel carved from the same scratch borrow.

// Explicit SIMD intrinsics are the point of this module; the crate-level
// deny stays in force for everything else in `matrix`.
#![allow(unsafe_code)]

// BOUNDS: all `[]` indexing here is over (a) packed panels sliced as
// `[idx * kc * 8 .. (idx + 1) * kc * 8]` from buffers sized `>= panels * kc
// * 8` at the single `with_f32` call, (b) operand rows via
// `DenseMatrix::row` (length-checked by construction) with sub-ranges
// clamped by `.min(..)` against the operand shape, (c) the fixed
// `[f32; 64]` accumulator tile indexed by `r * 8 + j` with `r, j < 8`, and
// (d) output chunks carved by `chunks_mut(rows_per * n)` from a buffer
// sized `m * n`; `check_shapes` ties the operand dimensions together at
// every entry point.

use crate::dense::DenseMatrix;
use crate::error::MatrixError;
use crate::gemm::check_shapes;
use crate::Result;
use std::sync::{Mutex, OnceLock};

/// Register-tile height: rows of `A` (and `C`) per micro-kernel call. Eight
/// rows = eight YMM accumulators on AVX2, the full logical register budget
/// with room for the broadcast and the `B` vector.
pub const MR: usize = 8;

/// Register-tile width: columns of `B` (and `C`) per micro-kernel call.
/// Eight `f32` = one 256-bit vector, so a tile row is exactly one register.
pub const NR: usize = 8;

/// Depth (`k`) block: how many A/B lanes are packed per panel. 256 keeps an
/// 8-lane B micro-panel at 8 KB — resident in L1 across all A panels of an
/// `MC` block.
const KC: usize = 256;

/// Row block: rows of `A` packed per executor per depth block. `MC * KC`
/// floats = 64 KB of packed A, sized for L2.
const MC: usize = 64;

/// Column block: columns of `B` packed per depth block (bounds the shared
/// B panel at `KC * NC` floats = 512 KB).
const NC: usize = 512;

/// Which micro-kernel implementation a [`KernelDispatch`] routes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `std::arch` AVX2 + FMA intrinsics (runtime-detected, x86-64 only).
    Avx2Fma,
    /// Safe autovectorizable Rust — default wherever AVX2 is unavailable.
    Portable,
    /// Plain scalar reference implementation.
    Scalar,
}

impl Backend {
    /// Detects the best available backend, honouring the
    /// `MICROKERNEL_FORCE` environment variable (`portable` / `scalar` /
    /// `avx2`; unknown values are ignored).
    pub fn detect() -> Backend {
        match std::env::var("MICROKERNEL_FORCE").ok().as_deref() {
            Some("portable") => return Backend::Portable,
            Some("scalar") => return Backend::Scalar,
            // "avx2" falls through to detection: forcing it cannot bypass
            // the hardware check, only request it explicitly.
            _ => {}
        }
        if avx2_available() {
            Backend::Avx2Fma
        } else {
            Backend::Portable
        }
    }

    /// Human-readable backend name (used by benches and reports).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx2Fma => "avx2+fma",
            Backend::Portable => "portable",
            Backend::Scalar => "scalar",
        }
    }
}

/// True when the CPU supports AVX2 and FMA (always false off x86-64).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Next backend in the graceful-degradation chain, `None` after the last
/// resort ([`Backend::Scalar`], which has no SIMD or autovectorization
/// assumptions left to violate).
fn downgrade(b: Backend) -> Option<Backend> {
    match b {
        Backend::Avx2Fma => Some(Backend::Portable),
        Backend::Portable => Some(Backend::Scalar),
        Backend::Scalar => None,
    }
}

static PROBE_FALLBACK: OnceLock<Option<(Backend, Backend)>> = OnceLock::new();

/// The `(preferred, chosen)` downgrade the dispatch probe took when
/// [`KernelDispatch::get`] first ran, or `None` if the preferred backend
/// passed its probe (or `get` has not run yet). Surfaced in
/// `kernels::ExecutionReport`.
pub fn probe_fallback() -> Option<(Backend, Backend)> {
    PROBE_FALLBACK.get().copied().flatten()
}

/// Fault-injection hook for the probe, one named site per backend so chaos
/// tests can fail a specific rung of the chain.
fn probe_site(b: Backend) -> Result<()> {
    match b {
        Backend::Avx2Fma => {
            // lint:allow(L008): probe path, runs once per process at
            // dispatch selection — never on the per-call kernel path.
            resilience::fault_point_err!(
                "microkernel.probe.avx2",
                MatrixError::Fault {
                    site: "microkernel.probe.avx2",
                }
            );
        }
        Backend::Portable => {
            // lint:allow(L008): probe path, see above.
            resilience::fault_point_err!(
                "microkernel.probe.portable",
                MatrixError::Fault {
                    site: "microkernel.probe.portable",
                }
            );
        }
        Backend::Scalar => {}
    }
    Ok(())
}

/// `true` when `kd`'s backend survives a tiny correctness probe: a 16-wide
/// AXPY run under `catch_unwind`, checked elementwise against the analytic
/// answer. Panics, wrong values, and non-finite output all fail the probe.
/// Stack arrays only — the probe allocates nothing.
fn probe(kd: KernelDispatch) -> bool {
    if probe_site(kd.backend()).is_err() {
        return false;
    }
    std::panic::catch_unwind(|| {
        let mut y = [1.0f32; 16];
        let mut x = [0.0f32; 16];
        for (j, v) in x.iter_mut().enumerate() {
            *v = j as f32 + 0.5;
        }
        kd.axpy(&mut y, 2.0, &x);
        y.iter().enumerate().all(|(j, &v)| {
            let want = 1.0 + 2.0 * (j as f32 + 0.5);
            v.is_finite() && (v - want).abs() <= 1e-5
        })
    })
    .unwrap_or(false)
}

/// Run the detection + probe chain from scratch (uncached): the backend
/// [`Backend::detect`] prefers, degraded along [`downgrade`] until a rung
/// passes [`probe`]. Returns the chosen dispatch and the `(preferred,
/// chosen)` pair when a downgrade happened. [`KernelDispatch::get`] calls
/// this once and caches; tests call it directly under armed injection.
pub fn resolve_probed() -> (KernelDispatch, Option<(Backend, Backend)>) {
    let preferred = Backend::detect();
    let mut candidate = preferred;
    loop {
        let kd = KernelDispatch { backend: candidate };
        if probe(kd) {
            let fallback = (candidate != preferred).then_some((preferred, candidate));
            return (kd, fallback);
        }
        match downgrade(candidate) {
            Some(next) => candidate = next,
            // Even a failing scalar probe (only reachable via injection on
            // every rung) must yield a usable dispatch: scalar is the
            // reference implementation.
            None => return (kd, Some((preferred, Backend::Scalar))),
        }
    }
}

/// A resolved micro-kernel selection, cheap to copy and pass down call
/// chains (e.g. cached inside `kernels::plan::SpmmPlan`).
///
/// Invariant: `backend == Backend::Avx2Fma` only when [`avx2_available`]
/// returned true at construction — both constructors enforce it, which is
/// what makes the `unsafe` AVX2 calls below sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDispatch {
    backend: Backend,
}

impl KernelDispatch {
    /// The process-wide dispatch, selected once (detection + env override +
    /// sanity probe) and cached for every later call.
    ///
    /// The preferred backend is *probed* before being cached: a tiny AXPY
    /// is run under `catch_unwind` and its result checked against the
    /// analytic answer. A backend that panics or produces wrong/non-finite
    /// values is degraded along the Avx2Fma → Portable → Scalar chain
    /// ([`probe_fallback`] reports a taken downgrade). In practice only
    /// injected faults (`resilience`) trigger this; it exists so a
    /// miscompiled or misdetected SIMD path degrades instead of corrupting
    /// inference.
    pub fn get() -> KernelDispatch {
        static DISPATCH: OnceLock<KernelDispatch> = OnceLock::new();
        *DISPATCH.get_or_init(|| {
            let (kd, fallback) = resolve_probed();
            let _ = PROBE_FALLBACK.set(fallback);
            kd
        })
    }

    /// A dispatch handle for an explicit backend — the hook the
    /// dispatch-agreement tests and the `microkernel` bench use to compare
    /// implementations side by side. Requesting [`Backend::Avx2Fma`] on
    /// hardware without it downgrades to [`Backend::Portable`].
    pub fn with_backend(backend: Backend) -> KernelDispatch {
        let backend = match backend {
            Backend::Avx2Fma if !avx2_available() => Backend::Portable,
            b => b,
        };
        KernelDispatch { backend }
    }

    /// The backend this handle routes to.
    pub fn backend(self) -> Backend {
        self.backend
    }

    /// Widened AXPY over a feature panel: `y[j] += alpha * x[j]` for
    /// `j < min(y.len(), x.len())`. This is the SpMM inner loop — one call
    /// per non-zero, vectorized over the feature width.
    #[inline]
    pub fn axpy(self, y: &mut [f32], alpha: f32, x: &[f32]) {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the struct invariant guarantees `Avx2Fma` is only
            // present when `avx2_available()` held at construction, so the
            // target features of `axpy_avx2` are supported here.
            Backend::Avx2Fma => unsafe { axpy_avx2(y, alpha, x) },
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2Fma => axpy_portable(y, alpha, x),
            Backend::Portable => axpy_portable(y, alpha, x),
            Backend::Scalar => axpy_scalar(y, alpha, x),
        }
    }

    /// Runs the 8x`kc` register-tiled inner kernel: `acc` is overwritten
    /// with the product of one packed A micro-panel and one packed B
    /// micro-panel (both `kc * 8` elements).
    #[inline]
    fn mk8x8(self, ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the struct invariant guarantees `Avx2Fma` is only
            // present when `avx2_available()` held at construction, and the
            // callers below slice `ap`/`bp` to exactly `kc * 8` elements.
            Backend::Avx2Fma => unsafe { mk8x8_avx2(ap, bp, kc, acc) },
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2Fma => mk8x8_portable(ap, bp, kc, acc),
            Backend::Portable => mk8x8_portable(ap, bp, kc, acc),
            Backend::Scalar => mk8x8_scalar(ap, bp, kc, acc),
        }
    }
}

/// Convenience wrapper: [`KernelDispatch::axpy`] through the process-wide
/// cached dispatch.
#[inline]
pub fn axpy_f32(y: &mut [f32], alpha: f32, x: &[f32]) {
    KernelDispatch::get().axpy(y, alpha, x)
}

// ---------------------------------------------------------------------------
// AXPY backends
// ---------------------------------------------------------------------------

/// Autovectorizable AXPY: fixed 8-wide chunks so LLVM emits vector
/// mul/add at whatever width the build targets.
fn axpy_portable(y: &mut [f32], alpha: f32, x: &[f32]) {
    // Truncate both sides to the common length up front: the two
    // `chunks_exact` remainders only describe the same lanes when the
    // slices are equally long.
    let n = y.len().min(x.len());
    let (y, x) = (&mut y[..n], &x[..n]);
    let mut yc = y.chunks_exact_mut(8);
    let mut xc = x.chunks_exact(8);
    for (yv, xv) in yc.by_ref().zip(xc.by_ref()) {
        for (yi, &xi) in yv.iter_mut().zip(xv) {
            *yi += alpha * xi;
        }
    }
    for (yi, &xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += alpha * xi;
    }
}

/// Plain scalar AXPY reference.
fn axpy_scalar(y: &mut [f32], alpha: f32, x: &[f32]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// AVX2 + FMA AXPY: 8-float vectors with a scalar tail.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 and FMA (the
/// [`KernelDispatch`] invariant).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above via the `KernelDispatch` backend invariant.
unsafe fn axpy_avx2(y: &mut [f32], alpha: f32, x: &[f32]) {
    use std::arch::x86_64::*;
    let n = y.len().min(x.len());
    let av = _mm256_set1_ps(alpha);
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n <= y.len()` and `n <= x.len()`, so both
        // 8-float loads and the store stay inside their slices.
        unsafe {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(av, xv, yv));
        }
        i += 8;
    }
    for (yi, &xi) in y[i..n].iter_mut().zip(&x[i..n]) {
        *yi += alpha * xi;
    }
}

// ---------------------------------------------------------------------------
// 8x8 register-tile micro-kernels
// ---------------------------------------------------------------------------

/// Portable register-tile kernel: the loops are shaped (fixed 8-wide inner
/// trip counts over contiguous packed panels) so LLVM autovectorizes them.
fn mk8x8_portable(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
    *acc = [0.0; MR * NR];
    for p in 0..kc {
        let a8 = &ap[p * MR..p * MR + MR];
        let b8 = &bp[p * NR..p * NR + NR];
        for (r, &ar) in a8.iter().enumerate() {
            let row = &mut acc[r * NR..r * NR + NR];
            for (c, &bv) in row.iter_mut().zip(b8) {
                *c += ar * bv;
            }
        }
    }
}

/// Scalar register-tile reference: index arithmetic kept deliberately
/// plain so it stays the easy-to-audit baseline of the agreement tests.
// The indexed form *is* the point here — it mirrors the textbook loop.
#[allow(clippy::needless_range_loop)]
fn mk8x8_scalar(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
    *acc = [0.0; MR * NR];
    for p in 0..kc {
        for r in 0..MR {
            let ar = ap[p * MR + r];
            for j in 0..NR {
                acc[r * NR + j] += ar * bp[p * NR + j];
            }
        }
    }
}

/// AVX2 + FMA register-tile kernel: 8 YMM accumulators (one per A lane),
/// one vector load of B and 8 broadcast+FMA per depth step.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 and FMA (the
/// [`KernelDispatch`] invariant) and that `ap.len() >= kc * 8` and
/// `bp.len() >= kc * 8`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above via the `KernelDispatch` backend invariant.
unsafe fn mk8x8_avx2(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut c0 = _mm256_setzero_ps();
    let mut c1 = _mm256_setzero_ps();
    let mut c2 = _mm256_setzero_ps();
    let mut c3 = _mm256_setzero_ps();
    let mut c4 = _mm256_setzero_ps();
    let mut c5 = _mm256_setzero_ps();
    let mut c6 = _mm256_setzero_ps();
    let mut c7 = _mm256_setzero_ps();
    let a_ptr = ap.as_ptr();
    let b_ptr = bp.as_ptr();
    for p in 0..kc {
        // SAFETY: `p < kc` and both panels hold at least `kc * 8` floats
        // (caller contract, debug-asserted above), so every offset below is
        // in bounds.
        unsafe {
            let b = _mm256_loadu_ps(b_ptr.add(p * NR));
            let al = a_ptr.add(p * MR);
            c0 = _mm256_fmadd_ps(_mm256_set1_ps(*al), b, c0);
            c1 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(1)), b, c1);
            c2 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(2)), b, c2);
            c3 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(3)), b, c3);
            c4 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(4)), b, c4);
            c5 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(5)), b, c5);
            c6 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(6)), b, c6);
            c7 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(7)), b, c7);
        }
    }
    // SAFETY: `acc` is exactly 64 floats; the eight stores cover
    // `[0, 64)` in disjoint 8-float rows.
    unsafe {
        let out = acc.as_mut_ptr();
        _mm256_storeu_ps(out, c0);
        _mm256_storeu_ps(out.add(8), c1);
        _mm256_storeu_ps(out.add(16), c2);
        _mm256_storeu_ps(out.add(24), c3);
        _mm256_storeu_ps(out.add(32), c4);
        _mm256_storeu_ps(out.add(40), c5);
        _mm256_storeu_ps(out.add(48), c6);
        _mm256_storeu_ps(out.add(56), c7);
    }
}

// ---------------------------------------------------------------------------
// Panel packing
// ---------------------------------------------------------------------------

/// Packs rows `[ic, ie)` x depth `[pc, pe)` of `a` into lane-major A
/// micro-panels: element `(r, p)` of micro-panel `ir` lands at
/// `ir * kc * MR + p * MR + r`. Rows beyond `ie` are zero-padded so the
/// inner kernel always sees a full `MR`-lane group.
fn pack_a_block(a: &DenseMatrix, ic: usize, ie: usize, pc: usize, pe: usize, dst: &mut [f32]) {
    let kc = pe - pc;
    let panels = (ie - ic).div_ceil(MR);
    for ir in 0..panels {
        let panel = &mut dst[ir * kc * MR..(ir + 1) * kc * MR];
        let i0 = ic + ir * MR;
        let rows = (ie - i0).min(MR);
        if rows < MR {
            panel.fill(0.0);
        }
        for r in 0..rows {
            let arow = &a.row(i0 + r)[pc..pe];
            for (p, &v) in arow.iter().enumerate() {
                panel[p * MR + r] = v;
            }
        }
    }
}

/// Packs depth `[pc, pe)` x columns `[jc, je)` of `b` into row-major B
/// micro-panels: element `(p, j)` of micro-panel `jr` lands at
/// `jr * kc * NR + p * NR + j`. Columns beyond `je` are zero-padded.
fn pack_b_block(b: &DenseMatrix, pc: usize, pe: usize, jc: usize, je: usize, dst: &mut [f32]) {
    let kc = pe - pc;
    let panels = (je - jc).div_ceil(NR);
    for jr in 0..panels {
        let panel = &mut dst[jr * kc * NR..(jr + 1) * kc * NR];
        let j0 = jc + jr * NR;
        let cols = (je - j0).min(NR);
        if cols < NR {
            panel.fill(0.0);
        }
        for p in 0..kc {
            let brow = &b.row(pc + p)[j0..j0 + cols];
            panel[p * NR..p * NR + cols].copy_from_slice(brow);
        }
    }
}

/// Adds the masked `rows x cols` corner of a full accumulator tile into
/// the output chunk (`row0` is chunk-local, `col0` global; `n` is the
/// output row stride).
fn add_tile(
    c_chunk: &mut [f32],
    n: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    acc: &[f32; MR * NR],
) {
    for r in 0..rows {
        let base = (row0 + r) * n + col0;
        let dst = &mut c_chunk[base..base + cols];
        for (d, &v) in dst.iter_mut().zip(&acc[r * NR..r * NR + cols]) {
            *d += v;
        }
    }
}

/// One executor's work for one `(jc, pc)` block: packs its own A panels
/// (`MC` rows at a time) and accumulates every micro-tile of its row range
/// against the shared packed B panel.
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    kd: KernelDispatch,
    a: &DenseMatrix,
    c_chunk: &mut [f32],
    row_start: usize,
    row_end: usize,
    n: usize,
    jc: usize,
    je: usize,
    pc: usize,
    pe: usize,
    apanel: &mut [f32],
    bpanel: &[f32],
) {
    let kc = pe - pc;
    let jpanels = (je - jc).div_ceil(NR);
    let mut acc = [0.0f32; MR * NR];
    let mut ic = row_start;
    while ic < row_end {
        let ie = (ic + MC).min(row_end);
        pack_a_block(a, ic, ie, pc, pe, apanel);
        let ipanels = (ie - ic).div_ceil(MR);
        // B micro-panel outermost: it stays hot in L1 across every A panel
        // of this MC block.
        for jr in 0..jpanels {
            let bp = &bpanel[jr * kc * NR..(jr + 1) * kc * NR];
            let j0 = jc + jr * NR;
            let cols = (je - j0).min(NR);
            for ir in 0..ipanels {
                let ap = &apanel[ir * kc * MR..(ir + 1) * kc * MR];
                let i0 = ic + ir * MR;
                let rows = (ie - i0).min(MR);
                kd.mk8x8(ap, bp, kc, &mut acc);
                add_tile(c_chunk, n, i0 - row_start, j0, rows, cols, &acc);
            }
        }
        ic = ie;
    }
}

// ---------------------------------------------------------------------------
// Blocked drivers
// ---------------------------------------------------------------------------

/// Packed register-tiled GEMM through the process-wide cached dispatch;
/// see [`matmul_packed_with`].
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn matmul_packed(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    let mut c = DenseMatrix::default();
    matmul_packed_with(KernelDispatch::get(), a, b, 1, &mut c)?;
    Ok(c)
}

/// [`matmul_packed`] writing into a caller-owned output across `threads`
/// executors of the global pool.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()` and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn matmul_packed_into(
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
    c: &mut DenseMatrix,
) -> Result<()> {
    check_shapes("matmul_packed", a, b)?;
    matmul_packed_with(KernelDispatch::get(), a, b, threads, c)
}

/// Cache-blocked, panel-packed GEMM `C = A * B` running its inner tiles on
/// an explicit [`KernelDispatch`].
///
/// Rows of `A` are split contiguously across `threads` pool executors;
/// each executor packs its own A micro-panels into a private slice of one
/// pool-owned, 64-byte-aligned scratch borrow, while the B panel for the
/// current `(jc, pc)` block is packed once and shared read-only. `c` is
/// reshaped with [`DenseMatrix::resize_zeroed`], so steady-state calls at
/// fixed shapes never touch the allocator for the output.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()` and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn matmul_packed_with(
    kd: KernelDispatch,
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
    c: &mut DenseMatrix,
) -> Result<()> {
    check_shapes("matmul_packed", a, b)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let (m, k) = a.shape();
    let n = b.cols();
    c.resize_zeroed(m, n);
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let pool = pool::global();
    let executors = threads.clamp(1, pool.width()).min(m);
    let rows_per = m.div_ceil(executors);
    // Each executor owns a contiguous row range of C exclusively; the
    // mutexes never contend, they only hand `&mut` slices through `Fn`.
    let chunks: Vec<Mutex<&mut [f32]>> = c
        .as_mut_slice()
        .chunks_mut(rows_per * n)
        .map(Mutex::new)
        // lint:allow(L005): per-call chunk table of <= threads pointers —
        // orders of magnitude below the counting-allocator budget.
        .collect();
    let executors = chunks.len();

    let kc_max = KC.min(k);
    let bp_len = kc_max * (NC.min(n)).div_ceil(NR) * NR;
    let ap_len = kc_max * MC;
    pool.scratch()
        .with_f32(bp_len + executors * ap_len, |scratch| {
            let (bpanel, ap_all) = scratch.split_at_mut(bp_len);
            let apanels: Vec<Mutex<&mut [f32]>> = ap_all
                .chunks_mut(ap_len)
                .take(executors)
                .map(Mutex::new)
                // lint:allow(L005): per-call panel table of <= threads
                // pointers into the single pool scratch borrow.
                .collect();
            let mut jc = 0;
            while jc < n {
                let je = (jc + NC).min(n);
                let mut pc = 0;
                while pc < k {
                    let pe = (pc + KC).min(k);
                    pack_b_block(b, pc, pe, jc, je, bpanel);
                    let bp: &[f32] = bpanel;
                    pool.broadcast(executors, executors, |t| {
                        let row_start = t * rows_per;
                        let row_end = (row_start + rows_per).min(m);
                        // Share index t locks only its own chunk and panel, so
                        // neither lock ever contends; a poisoned lock only means
                        // another worker panicked and the guarded slice is still
                        // structurally valid to hand back.
                        let mut chunk = chunks[t].lock().unwrap_or_else(|e| e.into_inner());
                        let mut ap = apanels[t].lock().unwrap_or_else(|e| e.into_inner());
                        gemm_block(
                            kd, a, &mut chunk, row_start, row_end, n, jc, je, pc, pe, &mut ap, bp,
                        );
                    });
                    pc = pe;
                }
                jc = je;
            }
        });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    fn all_backends() -> Vec<KernelDispatch> {
        let mut v = vec![
            KernelDispatch::with_backend(Backend::Portable),
            KernelDispatch::with_backend(Backend::Scalar),
        ];
        if avx2_available() {
            v.push(KernelDispatch::with_backend(Backend::Avx2Fma));
        }
        v
    }

    #[test]
    fn packed_matches_naive_across_shapes_and_backends() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (8, 8, 8),
            (3, 5, 7),
            (17, 0, 9),
            (65, 129, 33),
            (100, 300, 50),
            (70, 64, 1),
        ] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let reference = matmul_naive(&a, &b).unwrap();
            for kd in all_backends() {
                for threads in [1, 4] {
                    let mut c = DenseMatrix::filled(3, 3, f32::NAN);
                    matmul_packed_with(kd, &a, &b, threads, &mut c).unwrap();
                    assert!(
                        reference.max_abs_diff(&c) < 1e-4,
                        "({m},{k},{n}) backend={} threads={threads}",
                        kd.backend().name()
                    );
                }
            }
        }
    }

    #[test]
    fn axpy_backends_agree_including_tails() {
        let mut rng = StdRng::seed_from_u64(12);
        // Mismatched (y_len, x_len) pairs included on purpose: the update
        // covers only the common prefix, and the vector remainders must
        // still pair identical lanes when the lengths differ.
        for (y_len, x_len) in [
            (0usize, 0usize),
            (1, 1),
            (7, 7),
            (8, 8),
            (9, 9),
            (31, 31),
            (64, 64),
            (100, 100),
            (58, 69),
            (69, 58),
            (10, 3),
        ] {
            let x: Vec<f32> = (0..x_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let base: Vec<f32> = (0..y_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let alpha = rng.gen_range(-2.0..2.0);
            let mut want = base.clone();
            axpy_scalar(&mut want, alpha, &x);
            for kd in all_backends() {
                let mut y = base.clone();
                kd.axpy(&mut y, alpha, &x);
                for (w, g) in want.iter().zip(&y) {
                    assert!(
                        (w - g).abs() < 1e-5,
                        "y_len={y_len} x_len={x_len} backend={}",
                        kd.backend().name()
                    );
                }
            }
        }
    }

    #[test]
    fn forced_backend_downgrade_never_yields_unavailable_avx2() {
        let kd = KernelDispatch::with_backend(Backend::Avx2Fma);
        if !avx2_available() {
            assert_eq!(kd.backend(), Backend::Portable);
        } else {
            assert_eq!(kd.backend(), Backend::Avx2Fma);
        }
    }

    #[test]
    fn global_dispatch_is_stable() {
        assert_eq!(KernelDispatch::get(), KernelDispatch::get());
    }
}
