//! Register-tiled SIMD micro-kernels: packed GEMM and widened AXPY.
//!
//! This module is the dense-arithmetic engine behind both pillars of a GCN
//! layer. The paper's characterization makes the case directly: SpMM inner
//! work is dense row accumulation over the feature dimension, and the dense
//! update `H * W` is the second pillar — so one set of micro-kernels can
//! serve both if it exposes (a) a packed, cache-blocked GEMM and (b) a
//! feature-panel AXPY (`y += alpha * x`) for the sparse row loops.
//!
//! # Kernel backends
//!
//! Three implementations of the same 8x8-register-tile contract, selected
//! **once per process** by [`KernelDispatch::get`] and cached:
//!
//! * [`Backend::Avx2Fma`] — `std::arch` intrinsics behind a runtime
//!   `is_x86_feature_detected!("avx2")` + `"fma"` check; 8 YMM accumulators,
//!   one `vbroadcastss` + `vfmadd` per packed A lane.
//! * [`Backend::Portable`] — safe Rust written so LLVM autovectorizes it
//!   (fixed 8-wide inner loops over packed panels); the default everywhere
//!   AVX2 is absent and the forced path in CI's `MICROKERNEL_FORCE=portable`
//!   job.
//! * [`Backend::Scalar`] — the deliberately plain reference used by the
//!   dispatch-agreement tests.
//!
//! The environment variable `MICROKERNEL_FORCE` (`portable` / `scalar` /
//! `avx2`) overrides detection; forcing `avx2` on hardware without it
//! silently falls back to `portable` so a [`KernelDispatch`] can never name
//! an unavailable instruction set — that invariant is what makes calling
//! the `#[target_feature]` functions sound.
//!
//! # Packing layout
//!
//! The blocked GEMM follows the classic Goto/BLIS decomposition: `KC`-deep
//! slices of the operands are packed into pool-owned scratch
//! ([`pool::ScratchArena::with_f32`], 64-byte aligned) as **micro-panels**:
//!
//! * A panels: `MR = 8` rows interleaved lane-major — element `(r, p)` of
//!   the block lands at `p * 8 + r`, so the micro-kernel broadcasts one
//!   contiguous lane group per depth step;
//! * B panels: `NR = 8` columns row-major — element `(p, j)` at `p * 8 + j`,
//!   one aligned 8-float vector load per depth step.
//!
//! Partial edge tiles are zero-padded inside the panels, so the inner
//! kernel always runs the full 8x8 shape and the write-back masks rows and
//! columns that fall outside `C`. `B` is packed once per `(jc, pc)` block
//! and shared read-only by every executor; each executor owns a private A
//! panel carved from the same scratch borrow.

// Explicit SIMD intrinsics are the point of this module; the crate-level
// deny stays in force for everything else in `matrix`.
#![allow(unsafe_code)]

// BOUNDS: all `[]` indexing here is over (a) packed panels sliced as
// `[idx * kc * 8 .. (idx + 1) * kc * 8]` from buffers sized `>= panels * kc
// * 8` at the single `with_f32` call — narrow panels use the same carving
// divided by the elements-per-slot ratio (2 for bf16/f16, 4 for int8),
// exact because MR = NR = 8 — (b) operand rows via `DenseMatrix::row`
// (length-checked by construction) with sub-ranges clamped by `.min(..)`
// against the operand shape, (c) the fixed `[f32; 64]` / `[i32; 64]`
// accumulator tiles and `[f32; 8]` lane spills indexed by `r * 8 + j` with
// `r, j < 8`, (d) output chunks carved by `chunks_mut(rows_per * n)` from
// a buffer sized `m * n`, and (e) int8 scale slices carved as
// `[..m]`/`[..n]` from a scratch prefix sized `2 * (m + n)` and indexed by
// row/column ids bounded by the operand shape, and (f) raw quant payload
// rows carved as `[vi * stride + c0 .. vi * stride + k]` with
// `vi < payload_len / stride` (checked per non-zero) and `k <= stride`;
// `check_shapes` ties the operand dimensions together at every entry
// point.

use crate::dense::DenseMatrix;
use crate::error::MatrixError;
use crate::gemm::check_shapes;
use crate::quant::{
    bf16_to_f32, calibrate_scale, f16_to_f32, f32_to_bf16, f32_to_f16, saturating_cast_i8,
    Precision, QuantMatrix, QuantRow, I8_MAX_Q,
};
use crate::Result;
use resilience::audit;
use std::sync::{Mutex, OnceLock};

/// Register-tile height: rows of `A` (and `C`) per micro-kernel call. Eight
/// rows = eight YMM accumulators on AVX2, the full logical register budget
/// with room for the broadcast and the `B` vector.
pub const MR: usize = 8;

/// Register-tile width: columns of `B` (and `C`) per micro-kernel call.
/// Eight `f32` = one 256-bit vector, so a tile row is exactly one register.
pub const NR: usize = 8;

/// Depth (`k`) block: how many A/B lanes are packed per panel. 256 keeps an
/// 8-lane B micro-panel at 8 KB — resident in L1 across all A panels of an
/// `MC` block.
const KC: usize = 256;

/// Row block: rows of `A` packed per executor per depth block. `MC * KC`
/// floats = 64 KB of packed A, sized for L2.
const MC: usize = 64;

/// Column block: columns of `B` packed per depth block (bounds the shared
/// B panel at `KC * NC` floats = 512 KB).
const NC: usize = 512;

/// Output lanes held in registers per tile of the quantized SpMM row
/// accumulator ([`KernelDispatch::accumulate_row_quant`]): 64 `f32` =
/// eight YMM accumulators, the same register budget as the GEMM tile.
pub const ACC_LANES: usize = 64;

/// How many non-zeros ahead the quantized row accumulators prefetch the
/// feature-row payload. The rows land at graph-random addresses the
/// hardware prefetcher cannot predict, and a 64-lane int8 chunk is exactly
/// one cache line — without the hint every edge eats a demand miss.
const PREFETCH_AHEAD: usize = 4;

/// Which micro-kernel implementation a [`KernelDispatch`] routes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `std::arch` AVX2 + FMA intrinsics (runtime-detected, x86-64 only).
    Avx2Fma,
    /// Safe autovectorizable Rust — default wherever AVX2 is unavailable.
    Portable,
    /// Plain scalar reference implementation.
    Scalar,
}

impl Backend {
    /// Detects the best available backend, honouring the
    /// `MICROKERNEL_FORCE` environment variable (`portable` / `scalar` /
    /// `avx2`; unknown values are ignored).
    pub fn detect() -> Backend {
        match std::env::var("MICROKERNEL_FORCE").ok().as_deref() {
            Some("portable") => return Backend::Portable,
            Some("scalar") => return Backend::Scalar,
            // "avx2" falls through to detection: forcing it cannot bypass
            // the hardware check, only request it explicitly.
            _ => {}
        }
        if avx2_available() {
            Backend::Avx2Fma
        } else {
            Backend::Portable
        }
    }

    /// Human-readable backend name (used by benches and reports).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx2Fma => "avx2+fma",
            Backend::Portable => "portable",
            Backend::Scalar => "scalar",
        }
    }
}

/// True when the CPU supports AVX2 and FMA (always false off x86-64).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the CPU additionally supports the F16C half-float conversion
/// instructions (`vcvtph2ps`); gates the hardware f16 decode inside the
/// AVX2 paths. Always false off x86-64.
pub fn f16c_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("f16c")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Next backend in the graceful-degradation chain, `None` after the last
/// resort ([`Backend::Scalar`], which has no SIMD or autovectorization
/// assumptions left to violate).
fn downgrade(b: Backend) -> Option<Backend> {
    match b {
        Backend::Avx2Fma => Some(Backend::Portable),
        Backend::Portable => Some(Backend::Scalar),
        Backend::Scalar => None,
    }
}

static PROBE_FALLBACK: OnceLock<Option<(Backend, Backend)>> = OnceLock::new();

/// The `(preferred, chosen)` downgrade the dispatch probe took when
/// [`KernelDispatch::get`] first ran, or `None` if the preferred backend
/// passed its probe (or `get` has not run yet). Surfaced in
/// `kernels::ExecutionReport`.
pub fn probe_fallback() -> Option<(Backend, Backend)> {
    PROBE_FALLBACK.get().copied().flatten()
}

/// Fault-injection hook for the probe, one named site per backend so chaos
/// tests can fail a specific rung of the chain.
fn probe_site(b: Backend) -> Result<()> {
    match b {
        Backend::Avx2Fma => {
            // lint:allow(L008): probe path, runs once per process at
            // dispatch selection — never on the per-call kernel path.
            resilience::fault_point_err!(
                "microkernel.probe.avx2",
                MatrixError::Fault {
                    site: "microkernel.probe.avx2",
                }
            );
        }
        Backend::Portable => {
            // lint:allow(L008): probe path, see above.
            resilience::fault_point_err!(
                "microkernel.probe.portable",
                MatrixError::Fault {
                    site: "microkernel.probe.portable",
                }
            );
        }
        Backend::Scalar => {}
    }
    Ok(())
}

/// `true` when `kd`'s backend survives a tiny correctness probe: a 16-wide
/// AXPY run under `catch_unwind`, checked elementwise against the analytic
/// answer. Panics, wrong values, and non-finite output all fail the probe.
/// Stack arrays only — the probe allocates nothing.
fn probe(kd: KernelDispatch) -> bool {
    if probe_site(kd.backend()).is_err() {
        return false;
    }
    std::panic::catch_unwind(|| {
        let mut y = [1.0f32; 16];
        let mut x = [0.0f32; 16];
        for (j, v) in x.iter_mut().enumerate() {
            *v = j as f32 + 0.5;
        }
        kd.axpy(&mut y, 2.0, &x);
        y.iter().enumerate().all(|(j, &v)| {
            let want = 1.0 + 2.0 * (j as f32 + 0.5);
            v.is_finite() && (v - want).abs() <= 1e-5
        })
    })
    .unwrap_or(false)
}

/// Run the detection + probe chain from scratch (uncached): the backend
/// [`Backend::detect`] prefers, degraded along [`downgrade`] until a rung
/// passes [`probe`]. Returns the chosen dispatch and the `(preferred,
/// chosen)` pair when a downgrade happened. [`KernelDispatch::get`] calls
/// this once and caches; tests call it directly under armed injection.
pub fn resolve_probed() -> (KernelDispatch, Option<(Backend, Backend)>) {
    let preferred = Backend::detect();
    let mut candidate = preferred;
    loop {
        let kd = KernelDispatch { backend: candidate };
        if probe(kd) {
            let fallback = (candidate != preferred).then_some((preferred, candidate));
            return (kd, fallback);
        }
        match downgrade(candidate) {
            Some(next) => candidate = next,
            // Even a failing scalar probe (only reachable via injection on
            // every rung) must yield a usable dispatch: scalar is the
            // reference implementation.
            None => return (kd, Some((preferred, Backend::Scalar))),
        }
    }
}

/// A resolved micro-kernel selection, cheap to copy and pass down call
/// chains (e.g. cached inside `kernels::plan::SpmmPlan`).
///
/// Invariant: `backend == Backend::Avx2Fma` only when [`avx2_available`]
/// returned true at construction — both constructors enforce it, which is
/// what makes the `unsafe` AVX2 calls below sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDispatch {
    backend: Backend,
}

impl KernelDispatch {
    /// The process-wide dispatch, selected once (detection + env override +
    /// sanity probe) and cached for every later call.
    ///
    /// The preferred backend is *probed* before being cached: a tiny AXPY
    /// is run under `catch_unwind` and its result checked against the
    /// analytic answer. A backend that panics or produces wrong/non-finite
    /// values is degraded along the Avx2Fma → Portable → Scalar chain
    /// ([`probe_fallback`] reports a taken downgrade). In practice only
    /// injected faults (`resilience`) trigger this; it exists so a
    /// miscompiled or misdetected SIMD path degrades instead of corrupting
    /// inference.
    pub fn get() -> KernelDispatch {
        static DISPATCH: OnceLock<KernelDispatch> = OnceLock::new();
        *DISPATCH.get_or_init(|| {
            let (kd, fallback) = resolve_probed();
            let _ = PROBE_FALLBACK.set(fallback);
            kd
        })
    }

    /// A dispatch handle for an explicit backend — the hook the
    /// dispatch-agreement tests and the `microkernel` bench use to compare
    /// implementations side by side. Requesting [`Backend::Avx2Fma`] on
    /// hardware without it downgrades to [`Backend::Portable`].
    pub fn with_backend(backend: Backend) -> KernelDispatch {
        let backend = match backend {
            Backend::Avx2Fma if !avx2_available() => Backend::Portable,
            b => b,
        };
        KernelDispatch { backend }
    }

    /// The backend this handle routes to.
    pub fn backend(self) -> Backend {
        self.backend
    }

    /// Widened AXPY over a feature panel: `y[j] += alpha * x[j]` for
    /// `j < min(y.len(), x.len())`. This is the SpMM inner loop — one call
    /// per non-zero, vectorized over the feature width.
    #[inline]
    pub fn axpy(self, y: &mut [f32], alpha: f32, x: &[f32]) {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the struct invariant guarantees `Avx2Fma` is only
            // present when `avx2_available()` held at construction, so the
            // target features of `axpy_avx2` are supported here.
            Backend::Avx2Fma => unsafe { axpy_avx2(y, alpha, x) },
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2Fma => axpy_portable(y, alpha, x),
            Backend::Portable => axpy_portable(y, alpha, x),
            Backend::Scalar => axpy_scalar(y, alpha, x),
        }
    }

    /// Widened AXPY over a bfloat16 feature panel: each stored element is
    /// decoded to `f32` before the multiply-accumulate, so only storage
    /// narrows — `y[j] += alpha * decode(x[j])` for the common prefix.
    #[inline]
    pub fn axpy_bf16(self, y: &mut [f32], alpha: f32, x: &[u16]) {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the struct invariant guarantees `Avx2Fma` is only
            // present when `avx2_available()` held at construction, so the
            // target features of `axpy_bf16_avx2` are supported here.
            Backend::Avx2Fma => unsafe { axpy_bf16_avx2(y, alpha, x) },
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2Fma => axpy_decoded(y, alpha, x, bf16_to_f32),
            Backend::Portable => axpy_decoded(y, alpha, x, bf16_to_f32),
            Backend::Scalar => axpy_decoded_scalar(y, alpha, x, bf16_to_f32),
        }
    }

    /// Widened AXPY over an IEEE binary16 feature panel. The AVX2 path
    /// uses hardware F16C conversion when the CPU reports it and falls
    /// back to the software decode otherwise.
    #[inline]
    pub fn axpy_f16(self, y: &mut [f32], alpha: f32, x: &[u16]) {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the struct invariant guarantees AVX2+FMA, and the
            // guard verifies F16C — together the target features of
            // `axpy_f16_avx2` are supported here.
            Backend::Avx2Fma if f16c_available() => unsafe { axpy_f16_avx2(y, alpha, x) },
            Backend::Scalar => axpy_decoded_scalar(y, alpha, x, f16_to_f32),
            _ => axpy_decoded(y, alpha, x, f16_to_f32),
        }
    }

    /// Widened AXPY over a symmetric int8 feature panel. `alpha` must
    /// already carry the row's dequantization scale (the SpMM loops fold
    /// it in), so accumulation stays in `f32`:
    /// `y[j] += alpha * (x[j] as f32)`.
    #[inline]
    pub fn axpy_i8(self, y: &mut [f32], alpha: f32, x: &[i8]) {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the struct invariant guarantees `Avx2Fma` is only
            // present when `avx2_available()` held at construction, so the
            // target features of `axpy_i8_avx2` are supported here.
            Backend::Avx2Fma => unsafe { axpy_i8_avx2(y, alpha, x) },
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2Fma => axpy_decoded(y, alpha, x, |v| v as f32),
            Backend::Portable => axpy_decoded(y, alpha, x, |v| v as f32),
            Backend::Scalar => axpy_decoded_scalar(y, alpha, x, |v| v as f32),
        }
    }

    /// Dispatches a quantized-row AXPY on the row's own precision tag —
    /// the single entry point the sparse feature loops use so one code
    /// path serves every storage precision.
    #[inline]
    pub fn axpy_quant(self, y: &mut [f32], alpha: f32, row: QuantRow<'_>) {
        match row {
            QuantRow::Bf16(x) => self.axpy_bf16(y, alpha, x),
            QuantRow::F16(x) => self.axpy_f16(y, alpha, x),
            QuantRow::Int8(scale, x) => self.axpy_i8(y, alpha * scale, x),
        }
    }

    /// Accumulates one SpMM output row over quantized features:
    /// `y[j] += sum_i weights[i] * decode(Q[cols[i], j])`.
    ///
    /// On the AVX2+FMA backend the row is processed in [`ACC_LANES`]-wide
    /// register tiles held in YMM accumulators across the *whole* non-zero
    /// loop, so each output lane round-trips to memory once per tile
    /// instead of once per non-zero — per-edge cost drops to pure
    /// decode + FMA, which is what lets narrow storage run
    /// bandwidth-bound instead of issue-bound. Other backends (and F16
    /// without F16C) take one [`KernelDispatch::axpy_quant`] per non-zero.
    /// Column ids at or beyond `q.rows()` are skipped.
    pub fn accumulate_row_quant(
        self,
        y: &mut [f32],
        cols: &[u32],
        weights: &[f32],
        q: &QuantMatrix,
    ) {
        self.row_quant::<true>(y, cols, weights, q);
    }

    /// [`KernelDispatch::accumulate_row_quant`] with overwrite semantics:
    /// `y[j] = sum_i weights[i] * decode(Q[cols[i], j])`, ignoring `y`'s
    /// prior contents. When the caller owns a row's entire non-zero loop
    /// (the whole-row SpMM kernels do), this elides the initial tile load —
    /// the output row round-trips to memory half as often.
    pub fn fill_row_quant(self, y: &mut [f32], cols: &[u32], weights: &[f32], q: &QuantMatrix) {
        self.row_quant::<false>(y, cols, weights, q);
    }

    fn row_quant<const LOAD_Y: bool>(
        self,
        y: &mut [f32],
        cols: &[u32],
        weights: &[f32],
        q: &QuantMatrix,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.backend == Backend::Avx2Fma && q.cols() > 0 {
            match q.precision() {
                Precision::Bf16 => {
                    // SAFETY: the struct invariant guarantees `Avx2Fma` is
                    // only present when `avx2_available()` held at
                    // construction.
                    unsafe {
                        acc_row_bf16_avx2::<LOAD_Y>(y, cols, weights, q.wide_payload(), q.cols())
                    };
                    return;
                }
                Precision::F16 if f16c_available() => {
                    // SAFETY: struct invariant (AVX2+FMA) plus the explicit
                    // F16C guard — together the target features of
                    // `acc_row_f16_avx2` are supported here.
                    unsafe {
                        acc_row_f16_avx2::<LOAD_Y>(y, cols, weights, q.wide_payload(), q.cols())
                    };
                    return;
                }
                Precision::Int8 => {
                    let (data, scales) = q.int8_payload();
                    // SAFETY: struct invariant, as for the bf16 arm.
                    unsafe { acc_row_i8_avx2::<LOAD_Y>(y, cols, weights, data, scales, q.cols()) };
                    return;
                }
                _ => {}
            }
        }
        if !LOAD_Y {
            for yi in y.iter_mut() {
                *yi = 0.0;
            }
        }
        for (&v, &w) in cols.iter().zip(weights) {
            if (v as usize) < q.rows() {
                self.axpy_quant(y, w, q.row(v as usize));
            }
        }
    }

    /// Runs the 8x`kc` register-tiled inner kernel: `acc` is overwritten
    /// with the product of one packed A micro-panel and one packed B
    /// micro-panel (both `kc * 8` elements).
    #[inline]
    fn mk8x8(self, ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the struct invariant guarantees `Avx2Fma` is only
            // present when `avx2_available()` held at construction, and the
            // callers below slice `ap`/`bp` to exactly `kc * 8` elements.
            Backend::Avx2Fma => unsafe { mk8x8_avx2(ap, bp, kc, acc) },
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2Fma => mk8x8_portable(ap, bp, kc, acc),
            Backend::Portable => mk8x8_portable(ap, bp, kc, acc),
            Backend::Scalar => mk8x8_scalar(ap, bp, kc, acc),
        }
    }

    /// 16-bit-storage register-tile kernel: panels hold two encoded
    /// elements per `f32` scratch slot (`kc * 4` slots each); lanes are
    /// decoded to `f32` before every FMA. bf16 has a native AVX2 decode
    /// (integer shift); f16 uses F16C when available and the portable
    /// decode otherwise.
    #[inline]
    fn mk8x8_w16(self, w: W16, ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
        match (self.backend, w) {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the struct invariant guarantees `Avx2Fma` is only
            // present when `avx2_available()` held at construction, and
            // the callers slice `ap`/`bp` to exactly `kc * 4` slots.
            (Backend::Avx2Fma, W16::Bf16) => unsafe { mk8x8_bf16_avx2(ap, bp, kc, acc) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: AVX2+FMA via the struct invariant plus the F16C
            // guard cover every target feature of `mk8x8_f16_avx2`.
            (Backend::Avx2Fma, W16::F16) if f16c_available() => unsafe {
                mk8x8_f16_avx2(ap, bp, kc, acc)
            },
            (_, w) => mk8x8_w16_portable(ap, bp, kc, acc, |u| dec_w16(w, u)),
        }
    }

    /// int8 register-tile kernel with widened `i32` accumulation: panels
    /// hold four encoded elements per `f32` scratch slot (`kc * 2` slots
    /// each). Dequantization happens at write-back, not here.
    #[inline]
    fn mk8x8_i8(self, ap: &[f32], bp: &[f32], kc: usize, acc: &mut [i32; MR * NR]) {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the struct invariant guarantees `Avx2Fma` is only
            // present when `avx2_available()` held at construction, and
            // the callers slice `ap`/`bp` to exactly `kc * 2` slots.
            Backend::Avx2Fma => unsafe { mk8x8_i8_avx2(ap, bp, kc, acc) },
            _ => mk8x8_i8_portable(ap, bp, kc, acc),
        }
    }
}

/// The two 16-bit storage formats the shared w16 GEMM driver serves; the
/// tag threads through packing (encode) and the micro-kernel (decode) so
/// both sides always agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum W16 {
    Bf16,
    F16,
}

/// Encode one `f32` at the tagged 16-bit format (round-to-nearest-even).
#[inline(always)]
fn enc_w16(w: W16, v: f32) -> u16 {
    match w {
        W16::Bf16 => f32_to_bf16(v),
        W16::F16 => f32_to_f16(v),
    }
}

/// Decode one stored 16-bit element back to `f32`.
#[inline(always)]
fn dec_w16(w: W16, u: u16) -> f32 {
    match w {
        W16::Bf16 => bf16_to_f32(u),
        W16::F16 => f16_to_f32(u),
    }
}

/// Convenience wrapper: [`KernelDispatch::axpy`] through the process-wide
/// cached dispatch.
#[inline]
pub fn axpy_f32(y: &mut [f32], alpha: f32, x: &[f32]) {
    KernelDispatch::get().axpy(y, alpha, x)
}

// ---------------------------------------------------------------------------
// AXPY backends
// ---------------------------------------------------------------------------

/// Autovectorizable AXPY: fixed 8-wide chunks so LLVM emits vector
/// mul/add at whatever width the build targets.
fn axpy_portable(y: &mut [f32], alpha: f32, x: &[f32]) {
    // Truncate both sides to the common length up front: the two
    // `chunks_exact` remainders only describe the same lanes when the
    // slices are equally long.
    let n = y.len().min(x.len());
    let (y, x) = (&mut y[..n], &x[..n]);
    let mut yc = y.chunks_exact_mut(8);
    let mut xc = x.chunks_exact(8);
    for (yv, xv) in yc.by_ref().zip(xc.by_ref()) {
        for (yi, &xi) in yv.iter_mut().zip(xv) {
            *yi += alpha * xi;
        }
    }
    for (yi, &xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += alpha * xi;
    }
}

/// Plain scalar AXPY reference.
fn axpy_scalar(y: &mut [f32], alpha: f32, x: &[f32]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// AVX2 + FMA AXPY: 8-float vectors with a scalar tail.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 and FMA (the
/// [`KernelDispatch`] invariant).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above via the `KernelDispatch` backend invariant.
unsafe fn axpy_avx2(y: &mut [f32], alpha: f32, x: &[f32]) {
    use std::arch::x86_64::*;
    let n = y.len().min(x.len());
    let av = _mm256_set1_ps(alpha);
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n <= y.len()` and `n <= x.len()`, so both
        // 8-float loads and the store stay inside their slices.
        unsafe {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(av, xv, yv));
        }
        i += 8;
    }
    for (yi, &xi) in y[i..n].iter_mut().zip(&x[i..n]) {
        *yi += alpha * xi;
    }
}

/// Shared shape of the narrow portable AXPY backends: decode each stored
/// element to `f32`, then `y += alpha * decoded`, in fixed 8-wide chunks
/// so LLVM can vectorize the decode + FMA together. Monomorphized per
/// decoder, so the `decode` call inlines.
#[inline(always)]
fn axpy_decoded<T: Copy>(y: &mut [f32], alpha: f32, x: &[T], decode: impl Fn(T) -> f32) {
    let n = y.len().min(x.len());
    let (y, x) = (&mut y[..n], &x[..n]);
    let mut yc = y.chunks_exact_mut(8);
    let mut xc = x.chunks_exact(8);
    for (yv, xv) in yc.by_ref().zip(xc.by_ref()) {
        for (yi, &xi) in yv.iter_mut().zip(xv) {
            *yi += alpha * decode(xi);
        }
    }
    for (yi, &xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += alpha * decode(xi);
    }
}

/// Plain scalar reference for the narrow AXPYs.
#[inline(always)]
fn axpy_decoded_scalar<T: Copy>(y: &mut [f32], alpha: f32, x: &[T], decode: impl Fn(T) -> f32) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * decode(xi);
    }
}

/// AVX2 + FMA AXPY over bfloat16 storage: eight `u16` lanes are widened
/// to `u32` and shifted left 16 bits — bf16 is a bit-prefix of f32, so
/// that *is* the decode — then FMA'd against `f32` accumulators.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 and FMA (the
/// [`KernelDispatch`] invariant).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above via the `KernelDispatch` backend invariant.
unsafe fn axpy_bf16_avx2(y: &mut [f32], alpha: f32, x: &[u16]) {
    use std::arch::x86_64::*;
    let n = y.len().min(x.len());
    let av = _mm256_set1_ps(alpha);
    let mut i = 0;
    // Unrolled 4x (32 lanes/iter) with four direct 16-byte loads: each
    // group is load -> widen -> shift -> FMA with no cross-group shuffle,
    // keeping four independent decode+FMA chains in flight (one group per
    // loop carry leaves the FMA ports starved on the decode latency).
    while i + 32 <= n {
        // SAFETY: `i + 32 <= n <= min(y.len(), x.len())`, so every 16-byte
        // u16 load, f32 load, and store stays inside its slice.
        unsafe {
            for g in 0..4 {
                let off = i + g * 8;
                let raw = _mm_loadu_si128(x.as_ptr().add(off) as *const __m128i);
                let xv = _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16));
                let yv = _mm256_loadu_ps(y.as_ptr().add(off));
                _mm256_storeu_ps(y.as_mut_ptr().add(off), _mm256_fmadd_ps(av, xv, yv));
            }
        }
        i += 32;
    }
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n <= min(y.len(), x.len())`, so the 16-byte
        // u16 load, the f32 load, and the store stay inside their slices.
        unsafe {
            let raw = _mm_loadu_si128(x.as_ptr().add(i) as *const __m128i);
            let xv = _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(av, xv, yv));
        }
        i += 8;
    }
    for (yi, &xi) in y[i..n].iter_mut().zip(&x[i..n]) {
        *yi += alpha * bf16_to_f32(xi);
    }
}

/// AVX2 + FMA + F16C AXPY over IEEE binary16 storage: `vcvtph2ps`
/// decodes eight halves per step.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2, FMA, *and* F16C (the
/// dispatch checks [`f16c_available`] before routing here).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above (backend invariant + F16C guard).
unsafe fn axpy_f16_avx2(y: &mut [f32], alpha: f32, x: &[u16]) {
    use std::arch::x86_64::*;
    let n = y.len().min(x.len());
    let av = _mm256_set1_ps(alpha);
    let mut i = 0;
    // Unrolled 4x (32 lanes/iter) so four independent vcvtph2ps+FMA chains
    // are in flight; a single group per iteration is latency-bound on the
    // convert, not bandwidth-bound.
    while i + 32 <= n {
        // SAFETY: `i + 32 <= n <= min(y.len(), x.len())`, so every 16-byte
        // u16 load, f32 load, and store stays inside its slice.
        unsafe {
            for g in 0..4 {
                let off = i + g * 8;
                let xv = _mm256_cvtph_ps(_mm_loadu_si128(x.as_ptr().add(off) as *const __m128i));
                let yv = _mm256_loadu_ps(y.as_ptr().add(off));
                _mm256_storeu_ps(y.as_mut_ptr().add(off), _mm256_fmadd_ps(av, xv, yv));
            }
        }
        i += 32;
    }
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n <= min(y.len(), x.len())`, so the 16-byte
        // u16 load, the f32 load, and the store stay inside their slices.
        unsafe {
            let xv = _mm256_cvtph_ps(_mm_loadu_si128(x.as_ptr().add(i) as *const __m128i));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(av, xv, yv));
        }
        i += 8;
    }
    for (yi, &xi) in y[i..n].iter_mut().zip(&x[i..n]) {
        *yi += alpha * f16_to_f32(xi);
    }
}

/// AVX2 + FMA AXPY over int8 storage: eight bytes sign-extend to `i32`,
/// convert to `f32`, FMA. `alpha` carries the dequantization scale.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 and FMA (the
/// [`KernelDispatch`] invariant).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above via the `KernelDispatch` backend invariant.
unsafe fn axpy_i8_avx2(y: &mut [f32], alpha: f32, x: &[i8]) {
    use std::arch::x86_64::*;
    let n = y.len().min(x.len());
    let av = _mm256_set1_ps(alpha);
    let mut i = 0;
    // Unrolled 4x (32 lanes/iter) with four direct 8-byte loads: each group
    // is load -> sign-extend -> convert -> FMA with no cross-group shuffle,
    // so only the `cvtepi8` per group touches the shuffle port (a wide load
    // plus lane extracts nearly doubles shuffle-port pressure here).
    while i + 32 <= n {
        // SAFETY: `i + 32 <= n <= min(y.len(), x.len())`, so every 8-byte
        // i8 load, f32 load, and store stays inside its slice.
        unsafe {
            for g in 0..4 {
                let off = i + g * 8;
                let raw = _mm_loadl_epi64(x.as_ptr().add(off) as *const __m128i);
                let xv = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
                let yv = _mm256_loadu_ps(y.as_ptr().add(off));
                _mm256_storeu_ps(y.as_mut_ptr().add(off), _mm256_fmadd_ps(av, xv, yv));
            }
        }
        i += 32;
    }
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n <= min(y.len(), x.len())`, so the 8-byte
        // load, the f32 load, and the store stay inside their slices.
        unsafe {
            let raw = _mm_loadl_epi64(x.as_ptr().add(i) as *const __m128i);
            let xv = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(av, xv, yv));
        }
        i += 8;
    }
    for (yi, &xi) in y[i..n].iter_mut().zip(&x[i..n]) {
        *yi += alpha * xi as f32;
    }
}

/// Register-tiled row accumulation over bf16 storage: eight YMM
/// accumulators hold [`ACC_LANES`] output lanes across the whole non-zero
/// loop, so each non-zero costs one widen+shift+FMA per 8-lane group and
/// the output never round-trips to memory inside the loop.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 and FMA (the
/// [`KernelDispatch`] invariant). `x` is the row-major payload with
/// `stride` elements per row; column ids past `x.len() / stride` are
/// skipped, so no caller-side bounds contract is needed.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above via the `KernelDispatch` backend invariant.
unsafe fn acc_row_bf16_avx2<const LOAD_Y: bool>(
    y: &mut [f32],
    cols: &[u32],
    weights: &[f32],
    x: &[u16],
    stride: usize,
) {
    use std::arch::x86_64::*;
    let k = y.len().min(stride);
    let rows = x.len() / stride;
    let mut c0 = 0;
    while c0 + ACC_LANES <= k {
        // SAFETY: `c0 + 64 <= k <= y.len()` bounds the eight f32 loads and
        // stores; `vi < rows` bounds every 16-byte payload load to
        // `x[vi * stride + c0 .. vi * stride + c0 + 64]`, inside `x`
        // because `(vi + 1) * stride <= x.len()` and `c0 + 64 <= stride`.
        unsafe {
            let yp = y.as_mut_ptr().add(c0);
            let mut acc = [_mm256_setzero_ps(); ACC_LANES / 8];
            if LOAD_Y {
                for (g, slot) in acc.iter_mut().enumerate() {
                    *slot = _mm256_loadu_ps(yp.add(g * 8));
                }
            }
            for (idx, (&v, &w)) in cols.iter().zip(weights).enumerate() {
                let vi = v as usize;
                if vi >= rows {
                    continue;
                }
                if let Some(&nv) = cols.get(idx + PREFETCH_AHEAD) {
                    if (nv as usize) < rows {
                        _mm_prefetch(
                            x.as_ptr().add(nv as usize * stride + c0) as *const i8,
                            _MM_HINT_T0,
                        );
                    }
                }
                let av = _mm256_set1_ps(w);
                let xp = x.as_ptr().add(vi * stride + c0);
                for (g, slot) in acc.iter_mut().enumerate() {
                    let raw = _mm_loadu_si128(xp.add(g * 8) as *const __m128i);
                    let xv = _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16));
                    *slot = _mm256_fmadd_ps(av, xv, *slot);
                }
            }
            for (g, slot) in acc.iter().enumerate() {
                _mm256_storeu_ps(yp.add(g * 8), *slot);
            }
        }
        c0 += ACC_LANES;
    }
    if c0 < k {
        if !LOAD_Y {
            for yi in &mut y[c0..k] {
                *yi = 0.0;
            }
        }
        for (&v, &w) in cols.iter().zip(weights) {
            let vi = v as usize;
            if vi >= rows {
                continue;
            }
            let base = vi * stride;
            // SAFETY: AVX2+FMA hold by this function's own contract.
            unsafe { axpy_bf16_avx2(&mut y[c0..k], w, &x[base + c0..base + k]) };
        }
    }
}

/// Register-tiled row accumulation over IEEE binary16 storage —
/// [`acc_row_bf16_avx2`] with `vcvtph2ps` as the decode.
///
/// # Safety
///
/// The caller must guarantee AVX2, FMA, *and* F16C (the dispatch checks
/// [`f16c_available`] before routing here). Payload contract as in
/// [`acc_row_bf16_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above (backend invariant + F16C guard).
unsafe fn acc_row_f16_avx2<const LOAD_Y: bool>(
    y: &mut [f32],
    cols: &[u32],
    weights: &[f32],
    x: &[u16],
    stride: usize,
) {
    use std::arch::x86_64::*;
    let k = y.len().min(stride);
    let rows = x.len() / stride;
    let mut c0 = 0;
    while c0 + ACC_LANES <= k {
        // SAFETY: same bounds argument as `acc_row_bf16_avx2` — the tile
        // stays inside `y[c0..c0 + 64]` and every payload load inside row
        // `vi` of `x`.
        unsafe {
            let yp = y.as_mut_ptr().add(c0);
            let mut acc = [_mm256_setzero_ps(); ACC_LANES / 8];
            if LOAD_Y {
                for (g, slot) in acc.iter_mut().enumerate() {
                    *slot = _mm256_loadu_ps(yp.add(g * 8));
                }
            }
            for (idx, (&v, &w)) in cols.iter().zip(weights).enumerate() {
                let vi = v as usize;
                if vi >= rows {
                    continue;
                }
                if let Some(&nv) = cols.get(idx + PREFETCH_AHEAD) {
                    if (nv as usize) < rows {
                        _mm_prefetch(
                            x.as_ptr().add(nv as usize * stride + c0) as *const i8,
                            _MM_HINT_T0,
                        );
                    }
                }
                let av = _mm256_set1_ps(w);
                let xp = x.as_ptr().add(vi * stride + c0);
                for (g, slot) in acc.iter_mut().enumerate() {
                    let xv = _mm256_cvtph_ps(_mm_loadu_si128(xp.add(g * 8) as *const __m128i));
                    *slot = _mm256_fmadd_ps(av, xv, *slot);
                }
            }
            for (g, slot) in acc.iter().enumerate() {
                _mm256_storeu_ps(yp.add(g * 8), *slot);
            }
        }
        c0 += ACC_LANES;
    }
    if c0 < k {
        if !LOAD_Y {
            for yi in &mut y[c0..k] {
                *yi = 0.0;
            }
        }
        for (&v, &w) in cols.iter().zip(weights) {
            let vi = v as usize;
            if vi >= rows {
                continue;
            }
            let base = vi * stride;
            // SAFETY: AVX2+FMA+F16C hold by this function's own contract.
            unsafe { axpy_f16_avx2(&mut y[c0..k], w, &x[base + c0..base + k]) };
        }
    }
}

/// Register-tiled row accumulation over symmetric int8 storage: the
/// per-row dequantization scale folds into the FMA coefficient, so each
/// non-zero costs one sign-extend+convert+FMA per 8-lane group.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 and FMA (the
/// [`KernelDispatch`] invariant). Payload contract as in
/// [`acc_row_bf16_avx2`]; `scales` holds one entry per payload row.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above via the `KernelDispatch` backend invariant.
unsafe fn acc_row_i8_avx2<const LOAD_Y: bool>(
    y: &mut [f32],
    cols: &[u32],
    weights: &[f32],
    x: &[i8],
    scales: &[f32],
    stride: usize,
) {
    use std::arch::x86_64::*;
    let k = y.len().min(stride);
    let rows = (x.len() / stride).min(scales.len());
    let mut c0 = 0;
    // Double-width tile first (128 lanes, sixteen YMM accumulators): int8
    // packs a whole 128-lane chunk into two cache lines, so the wide tile
    // halves the chunk passes — and with them the per-non-zero loop
    // overhead and the number of scattered reads per edge.
    while c0 + 2 * ACC_LANES <= k {
        // SAFETY: `c0 + 128 <= k <= y.len()` bounds the sixteen f32 loads
        // and stores; `vi < rows <= scales.len()` bounds the scale read and
        // every 8-byte payload load stays inside row `vi` of `x` because
        // `(vi + 1) * stride <= x.len()` and `c0 + 128 <= stride`.
        unsafe {
            let yp = y.as_mut_ptr().add(c0);
            let mut acc = [_mm256_setzero_ps(); 2 * ACC_LANES / 8];
            if LOAD_Y {
                for (g, slot) in acc.iter_mut().enumerate() {
                    *slot = _mm256_loadu_ps(yp.add(g * 8));
                }
            }
            for (idx, (&v, &w)) in cols.iter().zip(weights).enumerate() {
                let vi = v as usize;
                if vi >= rows {
                    continue;
                }
                if let Some(&nv) = cols.get(idx + PREFETCH_AHEAD) {
                    if (nv as usize) < rows {
                        // The 128-lane int8 chunk spans two cache lines;
                        // prefetch both so neither demand-misses.
                        let np = x.as_ptr().add(nv as usize * stride + c0);
                        _mm_prefetch(np, _MM_HINT_T0);
                        _mm_prefetch(np.add(ACC_LANES), _MM_HINT_T0);
                    }
                }
                let av = _mm256_set1_ps(w * *scales.get_unchecked(vi));
                let xp = x.as_ptr().add(vi * stride + c0);
                for (g, slot) in acc.iter_mut().enumerate() {
                    let raw = _mm_loadl_epi64(xp.add(g * 8) as *const __m128i);
                    let xv = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
                    *slot = _mm256_fmadd_ps(av, xv, *slot);
                }
            }
            for (g, slot) in acc.iter().enumerate() {
                _mm256_storeu_ps(yp.add(g * 8), *slot);
            }
        }
        c0 += 2 * ACC_LANES;
    }
    while c0 + ACC_LANES <= k {
        // SAFETY: same bounds argument as `acc_row_bf16_avx2`, with 8-byte
        // payload loads; `vi < rows <= scales.len()` bounds the scale read.
        unsafe {
            let yp = y.as_mut_ptr().add(c0);
            let mut acc = [_mm256_setzero_ps(); ACC_LANES / 8];
            if LOAD_Y {
                for (g, slot) in acc.iter_mut().enumerate() {
                    *slot = _mm256_loadu_ps(yp.add(g * 8));
                }
            }
            for (idx, (&v, &w)) in cols.iter().zip(weights).enumerate() {
                let vi = v as usize;
                if vi >= rows {
                    continue;
                }
                if let Some(&nv) = cols.get(idx + PREFETCH_AHEAD) {
                    if (nv as usize) < rows {
                        _mm_prefetch(x.as_ptr().add(nv as usize * stride + c0), _MM_HINT_T0);
                    }
                }
                let av = _mm256_set1_ps(w * *scales.get_unchecked(vi));
                let xp = x.as_ptr().add(vi * stride + c0);
                for (g, slot) in acc.iter_mut().enumerate() {
                    let raw = _mm_loadl_epi64(xp.add(g * 8) as *const __m128i);
                    let xv = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
                    *slot = _mm256_fmadd_ps(av, xv, *slot);
                }
            }
            for (g, slot) in acc.iter().enumerate() {
                _mm256_storeu_ps(yp.add(g * 8), *slot);
            }
        }
        c0 += ACC_LANES;
    }
    if c0 < k {
        if !LOAD_Y {
            for yi in &mut y[c0..k] {
                *yi = 0.0;
            }
        }
        for (&v, &w) in cols.iter().zip(weights) {
            let vi = v as usize;
            if vi >= rows {
                continue;
            }
            let base = vi * stride;
            // SAFETY: AVX2+FMA hold by this function's own contract.
            unsafe { axpy_i8_avx2(&mut y[c0..k], w * scales[vi], &x[base + c0..base + k]) };
        }
    }
}

// ---------------------------------------------------------------------------
// 8x8 register-tile micro-kernels
// ---------------------------------------------------------------------------

/// Portable register-tile kernel: the loops are shaped (fixed 8-wide inner
/// trip counts over contiguous packed panels) so LLVM autovectorizes them.
fn mk8x8_portable(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
    *acc = [0.0; MR * NR];
    for p in 0..kc {
        let a8 = &ap[p * MR..p * MR + MR];
        let b8 = &bp[p * NR..p * NR + NR];
        for (r, &ar) in a8.iter().enumerate() {
            let row = &mut acc[r * NR..r * NR + NR];
            for (c, &bv) in row.iter_mut().zip(b8) {
                *c += ar * bv;
            }
        }
    }
}

/// Scalar register-tile reference: index arithmetic kept deliberately
/// plain so it stays the easy-to-audit baseline of the agreement tests.
// The indexed form *is* the point here — it mirrors the textbook loop.
#[allow(clippy::needless_range_loop)]
fn mk8x8_scalar(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
    *acc = [0.0; MR * NR];
    for p in 0..kc {
        for r in 0..MR {
            let ar = ap[p * MR + r];
            for j in 0..NR {
                acc[r * NR + j] += ar * bp[p * NR + j];
            }
        }
    }
}

/// AVX2 + FMA register-tile kernel: 8 YMM accumulators (one per A lane),
/// one vector load of B and 8 broadcast+FMA per depth step.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 and FMA (the
/// [`KernelDispatch`] invariant) and that `ap.len() >= kc * 8` and
/// `bp.len() >= kc * 8`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above via the `KernelDispatch` backend invariant.
unsafe fn mk8x8_avx2(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut c0 = _mm256_setzero_ps();
    let mut c1 = _mm256_setzero_ps();
    let mut c2 = _mm256_setzero_ps();
    let mut c3 = _mm256_setzero_ps();
    let mut c4 = _mm256_setzero_ps();
    let mut c5 = _mm256_setzero_ps();
    let mut c6 = _mm256_setzero_ps();
    let mut c7 = _mm256_setzero_ps();
    let a_ptr = ap.as_ptr();
    let b_ptr = bp.as_ptr();
    for p in 0..kc {
        // SAFETY: `p < kc` and both panels hold at least `kc * 8` floats
        // (caller contract, debug-asserted above), so every offset below is
        // in bounds.
        unsafe {
            let b = _mm256_loadu_ps(b_ptr.add(p * NR));
            let al = a_ptr.add(p * MR);
            c0 = _mm256_fmadd_ps(_mm256_set1_ps(*al), b, c0);
            c1 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(1)), b, c1);
            c2 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(2)), b, c2);
            c3 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(3)), b, c3);
            c4 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(4)), b, c4);
            c5 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(5)), b, c5);
            c6 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(6)), b, c6);
            c7 = _mm256_fmadd_ps(_mm256_set1_ps(*al.add(7)), b, c7);
        }
    }
    // SAFETY: `acc` is exactly 64 floats; the eight stores cover
    // `[0, 64)` in disjoint 8-float rows.
    unsafe {
        let out = acc.as_mut_ptr();
        _mm256_storeu_ps(out, c0);
        _mm256_storeu_ps(out.add(8), c1);
        _mm256_storeu_ps(out.add(16), c2);
        _mm256_storeu_ps(out.add(24), c3);
        _mm256_storeu_ps(out.add(32), c4);
        _mm256_storeu_ps(out.add(40), c5);
        _mm256_storeu_ps(out.add(48), c6);
        _mm256_storeu_ps(out.add(56), c7);
    }
}

/// Portable register-tile kernel over 16-bit-storage panels (two encoded
/// elements per `f32` slot): decodes each depth step's 8 A lanes and 8 B
/// lanes into stack arrays, then runs the same autovectorizable 8x8 FMA
/// shape as [`mk8x8_portable`]. Also serves the scalar backend — the
/// decode makes the textbook loop the same either way.
#[inline(always)]
fn mk8x8_w16_portable(
    ap: &[f32],
    bp: &[f32],
    kc: usize,
    acc: &mut [f32; MR * NR],
    dec: impl Fn(u16) -> f32,
) {
    *acc = [0.0; MR * NR];
    let mut a8 = [0.0f32; MR];
    let mut b8 = [0.0f32; NR];
    for p in 0..kc {
        for q in 0..MR / 2 {
            let bits = ap[p * (MR / 2) + q].to_bits();
            a8[q * 2] = dec(bits as u16);
            a8[q * 2 + 1] = dec((bits >> 16) as u16);
        }
        for q in 0..NR / 2 {
            let bits = bp[p * (NR / 2) + q].to_bits();
            b8[q * 2] = dec(bits as u16);
            b8[q * 2 + 1] = dec((bits >> 16) as u16);
        }
        for (r, &ar) in a8.iter().enumerate() {
            let row = &mut acc[r * NR..r * NR + NR];
            for (c, &bv) in row.iter_mut().zip(&b8) {
                *c += ar * bv;
            }
        }
    }
}

/// AVX2 + FMA register-tile kernel over bfloat16 panels: one 128-bit
/// load yields the 8 B lanes (or 8 A lanes), decoded by widening shift.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 and FMA (the
/// [`KernelDispatch`] invariant) and that `ap.len() >= kc * 4` and
/// `bp.len() >= kc * 4` (slots of two encoded elements each).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above via the `KernelDispatch` backend invariant.
unsafe fn mk8x8_bf16_avx2(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * (MR / 2) && bp.len() >= kc * (NR / 2));
    let mut c0 = _mm256_setzero_ps();
    let mut c1 = _mm256_setzero_ps();
    let mut c2 = _mm256_setzero_ps();
    let mut c3 = _mm256_setzero_ps();
    let mut c4 = _mm256_setzero_ps();
    let mut c5 = _mm256_setzero_ps();
    let mut c6 = _mm256_setzero_ps();
    let mut c7 = _mm256_setzero_ps();
    let a_ptr = ap.as_ptr();
    let b_ptr = bp.as_ptr();
    let mut alanes = [0.0f32; MR];
    for p in 0..kc {
        // SAFETY: `p < kc` and both panels hold at least `kc * 4` slots
        // (caller contract, debug-asserted above); each 128-bit load reads
        // exactly the 4 slots (= 8 encoded lanes) of depth step `p`.
        unsafe {
            let braw = _mm_loadu_si128(b_ptr.add(p * (NR / 2)) as *const __m128i);
            let b = _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(braw), 16));
            let araw = _mm_loadu_si128(a_ptr.add(p * (MR / 2)) as *const __m128i);
            let av = _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(araw), 16));
            _mm256_storeu_ps(alanes.as_mut_ptr(), av);
            c0 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[0]), b, c0);
            c1 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[1]), b, c1);
            c2 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[2]), b, c2);
            c3 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[3]), b, c3);
            c4 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[4]), b, c4);
            c5 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[5]), b, c5);
            c6 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[6]), b, c6);
            c7 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[7]), b, c7);
        }
    }
    // SAFETY: `acc` is exactly 64 floats; the eight stores cover
    // `[0, 64)` in disjoint 8-float rows.
    unsafe {
        let out = acc.as_mut_ptr();
        _mm256_storeu_ps(out, c0);
        _mm256_storeu_ps(out.add(8), c1);
        _mm256_storeu_ps(out.add(16), c2);
        _mm256_storeu_ps(out.add(24), c3);
        _mm256_storeu_ps(out.add(32), c4);
        _mm256_storeu_ps(out.add(40), c5);
        _mm256_storeu_ps(out.add(48), c6);
        _mm256_storeu_ps(out.add(56), c7);
    }
}

/// AVX2 + FMA + F16C register-tile kernel over binary16 panels:
/// `vcvtph2ps` decodes 8 halves per 128-bit load.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2, FMA, *and* F16C, and
/// that `ap.len() >= kc * 4` and `bp.len() >= kc * 4`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above (backend invariant + F16C guard).
unsafe fn mk8x8_f16_avx2(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * (MR / 2) && bp.len() >= kc * (NR / 2));
    let mut c0 = _mm256_setzero_ps();
    let mut c1 = _mm256_setzero_ps();
    let mut c2 = _mm256_setzero_ps();
    let mut c3 = _mm256_setzero_ps();
    let mut c4 = _mm256_setzero_ps();
    let mut c5 = _mm256_setzero_ps();
    let mut c6 = _mm256_setzero_ps();
    let mut c7 = _mm256_setzero_ps();
    let a_ptr = ap.as_ptr();
    let b_ptr = bp.as_ptr();
    let mut alanes = [0.0f32; MR];
    for p in 0..kc {
        // SAFETY: `p < kc` and both panels hold at least `kc * 4` slots
        // (caller contract, debug-asserted above); each 128-bit load reads
        // exactly the 4 slots (= 8 encoded lanes) of depth step `p`.
        unsafe {
            let b = _mm256_cvtph_ps(_mm_loadu_si128(b_ptr.add(p * (NR / 2)) as *const __m128i));
            let av = _mm256_cvtph_ps(_mm_loadu_si128(a_ptr.add(p * (MR / 2)) as *const __m128i));
            _mm256_storeu_ps(alanes.as_mut_ptr(), av);
            c0 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[0]), b, c0);
            c1 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[1]), b, c1);
            c2 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[2]), b, c2);
            c3 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[3]), b, c3);
            c4 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[4]), b, c4);
            c5 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[5]), b, c5);
            c6 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[6]), b, c6);
            c7 = _mm256_fmadd_ps(_mm256_set1_ps(alanes[7]), b, c7);
        }
    }
    // SAFETY: `acc` is exactly 64 floats; the eight stores cover
    // `[0, 64)` in disjoint 8-float rows.
    unsafe {
        let out = acc.as_mut_ptr();
        _mm256_storeu_ps(out, c0);
        _mm256_storeu_ps(out.add(8), c1);
        _mm256_storeu_ps(out.add(16), c2);
        _mm256_storeu_ps(out.add(24), c3);
        _mm256_storeu_ps(out.add(32), c4);
        _mm256_storeu_ps(out.add(40), c5);
        _mm256_storeu_ps(out.add(48), c6);
        _mm256_storeu_ps(out.add(56), c7);
    }
}

/// Portable int8 register-tile kernel with `i32` accumulation: four
/// encoded elements per `f32` slot are unpacked by byte shifts; the
/// integer 8x8 FMA shape autovectorizes the same way the float one does.
/// Also serves the scalar backend.
fn mk8x8_i8_portable(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [i32; MR * NR]) {
    *acc = [0; MR * NR];
    let mut a8 = [0i32; MR];
    let mut b8 = [0i32; NR];
    for p in 0..kc {
        for q in 0..MR / 4 {
            let bits = ap[p * (MR / 4) + q].to_bits();
            a8[q * 4] = (bits as u8 as i8) as i32;
            a8[q * 4 + 1] = ((bits >> 8) as u8 as i8) as i32;
            a8[q * 4 + 2] = ((bits >> 16) as u8 as i8) as i32;
            a8[q * 4 + 3] = ((bits >> 24) as u8 as i8) as i32;
        }
        for q in 0..NR / 4 {
            let bits = bp[p * (NR / 4) + q].to_bits();
            b8[q * 4] = (bits as u8 as i8) as i32;
            b8[q * 4 + 1] = ((bits >> 8) as u8 as i8) as i32;
            b8[q * 4 + 2] = ((bits >> 16) as u8 as i8) as i32;
            b8[q * 4 + 3] = ((bits >> 24) as u8 as i8) as i32;
        }
        for (r, &ar) in a8.iter().enumerate() {
            let row = &mut acc[r * NR..r * NR + NR];
            for (c, &bv) in row.iter_mut().zip(&b8) {
                *c += ar * bv;
            }
        }
    }
}

/// AVX2 int8 register-tile kernel: 8 B bytes sign-extend to one `i32`
/// vector per depth step; 8 broadcast multiplies accumulate into 8
/// integer YMM registers. Dequantization happens at write-back.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 (the
/// [`KernelDispatch`] invariant) and that `ap.len() >= kc * 2` and
/// `bp.len() >= kc * 2` (slots of four encoded elements each).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: `unsafe fn` purely for `#[target_feature]`; callers uphold the
// `# Safety` contract above via the `KernelDispatch` backend invariant.
unsafe fn mk8x8_i8_avx2(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [i32; MR * NR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * (MR / 4) && bp.len() >= kc * (NR / 4));
    let mut c0 = _mm256_setzero_si256();
    let mut c1 = _mm256_setzero_si256();
    let mut c2 = _mm256_setzero_si256();
    let mut c3 = _mm256_setzero_si256();
    let mut c4 = _mm256_setzero_si256();
    let mut c5 = _mm256_setzero_si256();
    let mut c6 = _mm256_setzero_si256();
    let mut c7 = _mm256_setzero_si256();
    let a_ptr = ap.as_ptr();
    let b_ptr = bp.as_ptr();
    for p in 0..kc {
        // SAFETY: `p < kc` and both panels hold at least `kc * 2` slots
        // (caller contract, debug-asserted above); the 8-byte load reads
        // exactly the 2 slots (= 8 encoded lanes) of depth step `p`, and
        // the two scalar slot reads stay inside `ap`.
        unsafe {
            let braw = _mm_loadl_epi64(b_ptr.add(p * (NR / 4)) as *const __m128i);
            let b = _mm256_cvtepi8_epi32(braw);
            let lo = (*a_ptr.add(p * (MR / 4))).to_bits();
            let hi = (*a_ptr.add(p * (MR / 4) + 1)).to_bits();
            let m0 = _mm256_set1_epi32((lo as u8 as i8) as i32);
            let m1 = _mm256_set1_epi32(((lo >> 8) as u8 as i8) as i32);
            let m2 = _mm256_set1_epi32(((lo >> 16) as u8 as i8) as i32);
            let m3 = _mm256_set1_epi32(((lo >> 24) as u8 as i8) as i32);
            let m4 = _mm256_set1_epi32((hi as u8 as i8) as i32);
            let m5 = _mm256_set1_epi32(((hi >> 8) as u8 as i8) as i32);
            let m6 = _mm256_set1_epi32(((hi >> 16) as u8 as i8) as i32);
            let m7 = _mm256_set1_epi32(((hi >> 24) as u8 as i8) as i32);
            c0 = _mm256_add_epi32(c0, _mm256_mullo_epi32(m0, b));
            c1 = _mm256_add_epi32(c1, _mm256_mullo_epi32(m1, b));
            c2 = _mm256_add_epi32(c2, _mm256_mullo_epi32(m2, b));
            c3 = _mm256_add_epi32(c3, _mm256_mullo_epi32(m3, b));
            c4 = _mm256_add_epi32(c4, _mm256_mullo_epi32(m4, b));
            c5 = _mm256_add_epi32(c5, _mm256_mullo_epi32(m5, b));
            c6 = _mm256_add_epi32(c6, _mm256_mullo_epi32(m6, b));
            c7 = _mm256_add_epi32(c7, _mm256_mullo_epi32(m7, b));
        }
    }
    // SAFETY: `acc` is exactly 64 i32s; the eight stores cover `[0, 64)`
    // in disjoint 8-lane rows.
    unsafe {
        let out = acc.as_mut_ptr() as *mut __m256i;
        _mm256_storeu_si256(out, c0);
        _mm256_storeu_si256(out.add(1), c1);
        _mm256_storeu_si256(out.add(2), c2);
        _mm256_storeu_si256(out.add(3), c3);
        _mm256_storeu_si256(out.add(4), c4);
        _mm256_storeu_si256(out.add(5), c5);
        _mm256_storeu_si256(out.add(6), c6);
        _mm256_storeu_si256(out.add(7), c7);
    }
}

// ---------------------------------------------------------------------------
// Panel packing
// ---------------------------------------------------------------------------

/// Packs rows `[ic, ie)` x depth `[pc, pe)` of `a` into lane-major A
/// micro-panels: element `(r, p)` of micro-panel `ir` lands at
/// `ir * kc * MR + p * MR + r`. Rows beyond `ie` are zero-padded so the
/// inner kernel always sees a full `MR`-lane group.
fn pack_a_block(a: &DenseMatrix, ic: usize, ie: usize, pc: usize, pe: usize, dst: &mut [f32]) {
    let kc = pe - pc;
    let panels = (ie - ic).div_ceil(MR);
    for ir in 0..panels {
        let panel = &mut dst[ir * kc * MR..(ir + 1) * kc * MR];
        let i0 = ic + ir * MR;
        let rows = (ie - i0).min(MR);
        if rows < MR {
            panel.fill(0.0);
        }
        for r in 0..rows {
            let arow = &a.row(i0 + r)[pc..pe];
            for (p, &v) in arow.iter().enumerate() {
                panel[p * MR + r] = v;
            }
        }
    }
}

/// Packs depth `[pc, pe)` x columns `[jc, je)` of `b` into row-major B
/// micro-panels: element `(p, j)` of micro-panel `jr` lands at
/// `jr * kc * NR + p * NR + j`. Columns beyond `je` are zero-padded.
fn pack_b_block(b: &DenseMatrix, pc: usize, pe: usize, jc: usize, je: usize, dst: &mut [f32]) {
    let kc = pe - pc;
    let panels = (je - jc).div_ceil(NR);
    for jr in 0..panels {
        let panel = &mut dst[jr * kc * NR..(jr + 1) * kc * NR];
        let j0 = jc + jr * NR;
        let cols = (je - j0).min(NR);
        if cols < NR {
            panel.fill(0.0);
        }
        for p in 0..kc {
            let brow = &b.row(pc + p)[j0..j0 + cols];
            panel[p * NR..p * NR + cols].copy_from_slice(brow);
        }
    }
}

/// Adds the masked `rows x cols` corner of a full accumulator tile into
/// the output chunk (`row0` is chunk-local, `col0` global; `n` is the
/// output row stride).
fn add_tile(
    c_chunk: &mut [f32],
    n: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    acc: &[f32; MR * NR],
) {
    for r in 0..rows {
        let base = (row0 + r) * n + col0;
        let dst = &mut c_chunk[base..base + cols];
        for (d, &v) in dst.iter_mut().zip(&acc[r * NR..r * NR + cols]) {
            *d += v;
        }
    }
}

/// [`pack_a_block`] at 16-bit storage: element `(r, p)` of micro-panel
/// `ir` lands at u16 index `p * MR + r`, two encoded elements per `f32`
/// scratch slot (lane `r` in the half selected by `r % 2`). Panels are
/// zeroed first so absent rows decode as +0.0 at either format.
#[inline(always)]
fn pack_a_w16(
    a: &DenseMatrix,
    ic: usize,
    ie: usize,
    pc: usize,
    pe: usize,
    dst: &mut [f32],
    enc: impl Fn(f32) -> u16,
) {
    let kc = pe - pc;
    let panels = (ie - ic).div_ceil(MR);
    let slot = MR / 2;
    for ir in 0..panels {
        let panel = &mut dst[ir * kc * slot..(ir + 1) * kc * slot];
        panel.fill(0.0);
        let i0 = ic + ir * MR;
        let rows = (ie - i0).min(MR);
        for r in 0..rows {
            let arow = &a.row(i0 + r)[pc..pe];
            let (q, shift) = (r / 2, 16 * (r % 2));
            for (p, &v) in arow.iter().enumerate() {
                let s = &mut panel[p * slot + q];
                *s = f32::from_bits(s.to_bits() | ((enc(v) as u32) << shift));
            }
        }
    }
}

/// [`pack_b_block`] at 16-bit storage: element `(p, j)` of micro-panel
/// `jr` lands at u16 index `p * NR + j`, two encoded elements per `f32`
/// scratch slot. Absent columns decode as +0.0.
#[inline(always)]
fn pack_b_w16(
    b: &DenseMatrix,
    pc: usize,
    pe: usize,
    jc: usize,
    je: usize,
    dst: &mut [f32],
    enc: impl Fn(f32) -> u16,
) {
    let kc = pe - pc;
    let panels = (je - jc).div_ceil(NR);
    let slot = NR / 2;
    for jr in 0..panels {
        let panel = &mut dst[jr * kc * slot..(jr + 1) * kc * slot];
        panel.fill(0.0);
        let j0 = jc + jr * NR;
        let cols = (je - j0).min(NR);
        for p in 0..kc {
            let brow = &b.row(pc + p)[j0..j0 + cols];
            for (j, &v) in brow.iter().enumerate() {
                let s = &mut panel[p * slot + j / 2];
                *s = f32::from_bits(s.to_bits() | ((enc(v) as u32) << (16 * (j % 2))));
            }
        }
    }
}

/// [`pack_a_block`] at int8 storage: element `(r, p)` lands at byte index
/// `p * MR + r`, four encoded elements per `f32` scratch slot. Each row
/// is quantized with its own reciprocal scale (`inv_scales[i]`, indexed
/// by absolute row id); absent rows encode as 0.
#[inline(always)]
fn pack_a_i8(
    a: &DenseMatrix,
    ic: usize,
    ie: usize,
    pc: usize,
    pe: usize,
    inv_scales: &[f32],
    dst: &mut [f32],
) {
    let kc = pe - pc;
    let panels = (ie - ic).div_ceil(MR);
    let slot = MR / 4;
    for ir in 0..panels {
        let panel = &mut dst[ir * kc * slot..(ir + 1) * kc * slot];
        panel.fill(0.0);
        let i0 = ic + ir * MR;
        let rows = (ie - i0).min(MR);
        for r in 0..rows {
            let inv = inv_scales[i0 + r];
            let arow = &a.row(i0 + r)[pc..pe];
            let (q, shift) = (r / 4, 8 * (r % 4));
            for (p, &v) in arow.iter().enumerate() {
                let s = &mut panel[p * slot + q];
                let byte = saturating_cast_i8(v * inv) as u8 as u32;
                *s = f32::from_bits(s.to_bits() | (byte << shift));
            }
        }
    }
}

/// [`pack_b_block`] at int8 storage: element `(p, j)` lands at byte index
/// `p * NR + j`, four encoded elements per `f32` scratch slot. Each
/// column is quantized with its own reciprocal scale (`inv_scales[j]`,
/// indexed by absolute column id); absent columns encode as 0.
#[inline(always)]
fn pack_b_i8(
    b: &DenseMatrix,
    pc: usize,
    pe: usize,
    jc: usize,
    je: usize,
    inv_scales: &[f32],
    dst: &mut [f32],
) {
    let kc = pe - pc;
    let panels = (je - jc).div_ceil(NR);
    let slot = NR / 4;
    for jr in 0..panels {
        let panel = &mut dst[jr * kc * slot..(jr + 1) * kc * slot];
        panel.fill(0.0);
        let j0 = jc + jr * NR;
        let cols = (je - j0).min(NR);
        for p in 0..kc {
            let brow = &b.row(pc + p)[j0..j0 + cols];
            for (j, &v) in brow.iter().enumerate() {
                let s = &mut panel[p * slot + j / 4];
                let byte = saturating_cast_i8(v * inv_scales[j0 + j]) as u8 as u32;
                *s = f32::from_bits(s.to_bits() | (byte << (8 * (j % 4))));
            }
        }
    }
}

/// [`add_tile`] for the int8 path: dequantizes the widened `i32`
/// accumulator on write-back with the per-row (`sa`, local to the tile)
/// and per-column (`sb`, local to the tile) scales — `c[i][j] +=
/// acc[i][j] * sa[i] * sb[j]`.
#[allow(clippy::too_many_arguments)]
fn add_tile_scaled(
    c_chunk: &mut [f32],
    n: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    acc: &[i32; MR * NR],
    sa: &[f32],
    sb: &[f32],
) {
    for r in 0..rows {
        let s_r = sa[r];
        let base = (row0 + r) * n + col0;
        let dst = &mut c_chunk[base..base + cols];
        for ((d, &v), &s_c) in dst.iter_mut().zip(&acc[r * NR..r * NR + cols]).zip(sb) {
            *d += (v as f32) * s_r * s_c;
        }
    }
}

/// One executor's work for one `(jc, pc)` block: packs its own A panels
/// (`MC` rows at a time) and accumulates every micro-tile of its row range
/// against the shared packed B panel.
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    kd: KernelDispatch,
    a: &DenseMatrix,
    c_chunk: &mut [f32],
    row_start: usize,
    row_end: usize,
    n: usize,
    jc: usize,
    je: usize,
    pc: usize,
    pe: usize,
    apanel: &mut [f32],
    bpanel: &[f32],
) {
    let kc = pe - pc;
    let jpanels = (je - jc).div_ceil(NR);
    let mut acc = [0.0f32; MR * NR];
    let mut ic = row_start;
    while ic < row_end {
        let ie = (ic + MC).min(row_end);
        pack_a_block(a, ic, ie, pc, pe, apanel);
        let ipanels = (ie - ic).div_ceil(MR);
        // B micro-panel outermost: it stays hot in L1 across every A panel
        // of this MC block.
        for jr in 0..jpanels {
            let bp = &bpanel[jr * kc * NR..(jr + 1) * kc * NR];
            let j0 = jc + jr * NR;
            let cols = (je - j0).min(NR);
            for ir in 0..ipanels {
                let ap = &apanel[ir * kc * MR..(ir + 1) * kc * MR];
                let i0 = ic + ir * MR;
                let rows = (ie - i0).min(MR);
                kd.mk8x8(ap, bp, kc, &mut acc);
                add_tile(c_chunk, n, i0 - row_start, j0, rows, cols, &acc);
            }
        }
        ic = ie;
    }
}

/// [`gemm_block`] at 16-bit storage: identical blocking, but the A panels
/// are encoded on the fly during packing and the micro-kernel decodes
/// lanes back to `f32` — accumulators never narrow.
#[allow(clippy::too_many_arguments)]
fn gemm_block_w16(
    kd: KernelDispatch,
    w: W16,
    a: &DenseMatrix,
    c_chunk: &mut [f32],
    row_start: usize,
    row_end: usize,
    n: usize,
    jc: usize,
    je: usize,
    pc: usize,
    pe: usize,
    apanel: &mut [f32],
    bpanel: &[f32],
) {
    let kc = pe - pc;
    let jpanels = (je - jc).div_ceil(NR);
    let pslot_a = kc * (MR / 2);
    let pslot_b = kc * (NR / 2);
    let mut acc = [0.0f32; MR * NR];
    let mut ic = row_start;
    while ic < row_end {
        let ie = (ic + MC).min(row_end);
        pack_a_w16(a, ic, ie, pc, pe, apanel, |v| enc_w16(w, v));
        let ipanels = (ie - ic).div_ceil(MR);
        for jr in 0..jpanels {
            let bp = &bpanel[jr * pslot_b..(jr + 1) * pslot_b];
            let j0 = jc + jr * NR;
            let cols = (je - j0).min(NR);
            for ir in 0..ipanels {
                let ap = &apanel[ir * pslot_a..(ir + 1) * pslot_a];
                let i0 = ic + ir * MR;
                let rows = (ie - i0).min(MR);
                kd.mk8x8_w16(w, ap, bp, kc, &mut acc);
                add_tile(c_chunk, n, i0 - row_start, j0, rows, cols, &acc);
            }
        }
        ic = ie;
    }
}

/// [`gemm_block`] at int8 storage: A rows quantize against per-row
/// scales (`inv_sa`), the micro-kernel accumulates in `i32`, and the
/// write-back dequantizes against `sa[i] * sb[j]`. Per-`KC`-block
/// partial products sum exactly because the scales are global to the
/// whole reduction, not per block.
#[allow(clippy::too_many_arguments)]
fn gemm_block_i8(
    kd: KernelDispatch,
    a: &DenseMatrix,
    c_chunk: &mut [f32],
    row_start: usize,
    row_end: usize,
    n: usize,
    jc: usize,
    je: usize,
    pc: usize,
    pe: usize,
    sa: &[f32],
    inv_sa: &[f32],
    sb: &[f32],
    apanel: &mut [f32],
    bpanel: &[f32],
) {
    let kc = pe - pc;
    let jpanels = (je - jc).div_ceil(NR);
    let pslot_a = kc * (MR / 4);
    let pslot_b = kc * (NR / 4);
    let mut acc = [0i32; MR * NR];
    let mut ic = row_start;
    while ic < row_end {
        let ie = (ic + MC).min(row_end);
        pack_a_i8(a, ic, ie, pc, pe, inv_sa, apanel);
        let ipanels = (ie - ic).div_ceil(MR);
        for jr in 0..jpanels {
            let bp = &bpanel[jr * pslot_b..(jr + 1) * pslot_b];
            let j0 = jc + jr * NR;
            let cols = (je - j0).min(NR);
            for ir in 0..ipanels {
                let ap = &apanel[ir * pslot_a..(ir + 1) * pslot_a];
                let i0 = ic + ir * MR;
                let rows = (ie - i0).min(MR);
                kd.mk8x8_i8(ap, bp, kc, &mut acc);
                add_tile_scaled(
                    c_chunk,
                    n,
                    i0 - row_start,
                    j0,
                    rows,
                    cols,
                    &acc,
                    &sa[i0..i0 + rows],
                    &sb[j0..j0 + cols],
                );
            }
        }
        ic = ie;
    }
}

// ---------------------------------------------------------------------------
// Blocked drivers
// ---------------------------------------------------------------------------

/// Packed register-tiled GEMM through the process-wide cached dispatch;
/// see [`matmul_packed_with`].
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn matmul_packed(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    let mut c = DenseMatrix::default();
    matmul_packed_with(KernelDispatch::get(), a, b, 1, &mut c)?;
    Ok(c)
}

/// [`matmul_packed`] writing into a caller-owned output across `threads`
/// executors of the global pool.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()` and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn matmul_packed_into(
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
    c: &mut DenseMatrix,
) -> Result<()> {
    check_shapes("matmul_packed", a, b)?;
    matmul_packed_with(KernelDispatch::get(), a, b, threads, c)
}

/// Cache-blocked, panel-packed GEMM `C = A * B` running its inner tiles on
/// an explicit [`KernelDispatch`].
///
/// Rows of `A` are split contiguously across `threads` pool executors;
/// each executor packs its own A micro-panels into a private slice of one
/// pool-owned, 64-byte-aligned scratch borrow, while the B panel for the
/// current `(jc, pc)` block is packed once and shared read-only. `c` is
/// reshaped with [`DenseMatrix::resize_zeroed`], so steady-state calls at
/// fixed shapes never touch the allocator for the output.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()` and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn matmul_packed_with(
    kd: KernelDispatch,
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
    c: &mut DenseMatrix,
) -> Result<()> {
    check_shapes("matmul_packed", a, b)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let (m, k) = a.shape();
    let n = b.cols();
    c.resize_zeroed(m, n);
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let pool = pool::global();
    let executors = threads.clamp(1, pool.width()).min(m);
    let rows_per = m.div_ceil(executors);
    // Each executor owns a contiguous row range of C exclusively; the
    // mutexes never contend, they only hand `&mut` slices through `Fn`.
    let chunks: Vec<Mutex<&mut [f32]>> = c
        .as_mut_slice()
        .chunks_mut(rows_per * n)
        .map(Mutex::new)
        // lint:allow(L005): per-call chunk table of <= threads pointers —
        // orders of magnitude below the counting-allocator budget.
        .collect();
    let executors = chunks.len();

    let kc_max = KC.min(k);
    let bp_len = kc_max * (NC.min(n)).div_ceil(NR) * NR;
    let ap_len = kc_max * MC;
    pool.scratch()
        .with_f32(bp_len + executors * ap_len, |scratch| {
            let (bpanel, ap_all) = scratch.split_at_mut(bp_len);
            let apanels: Vec<Mutex<&mut [f32]>> = ap_all
                .chunks_mut(ap_len)
                .take(executors)
                .map(Mutex::new)
                // lint:allow(L005): per-call panel table of <= threads
                // pointers into the single pool scratch borrow.
                .collect();
            let mut jc = 0;
            while jc < n {
                let je = (jc + NC).min(n);
                let mut pc = 0;
                while pc < k {
                    let pe = (pc + KC).min(k);
                    pack_b_block(b, pc, pe, jc, je, bpanel);
                    let bp: &[f32] = bpanel;
                    pool.broadcast(executors, executors, |t| {
                        let row_start = t * rows_per;
                        let row_end = (row_start + rows_per).min(m);
                        // Share index t locks only its own chunk and panel, so
                        // neither lock ever contends; a poisoned lock only means
                        // another worker panicked and the guarded slice is still
                        // structurally valid to hand back.
                        let mut chunk = audit::recover("gemm.chunk", &chunks[t]);
                        let mut ap = audit::recover("gemm.apanel", &apanels[t]);
                        gemm_block(
                            kd, a, &mut chunk, row_start, row_end, n, jc, je, pc, pe, &mut ap, bp,
                        );
                    });
                    pc = pe;
                }
                jc = je;
            }
        });
    Ok(())
}

/// [`matmul_packed_with`] at a chosen storage [`Precision`]: packing
/// converts operands on the fly into the 64-byte-aligned pool scratch
/// (bf16/f16 at two elements per slot, int8 at four), so only the panel
/// storage narrows — arithmetic stays `f32` (bf16/f16) or widens to
/// `i32` with per-row/per-column scales dequantized on write-back
/// (int8). [`Precision::F32`] delegates to the f32 path unchanged.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != b.rows()`
/// and [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn matmul_packed_prec_with(
    kd: KernelDispatch,
    precision: Precision,
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
    c: &mut DenseMatrix,
) -> Result<()> {
    if precision == Precision::F32 {
        return matmul_packed_with(kd, a, b, threads, c);
    }
    check_shapes("matmul_packed", a, b)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let (m, k) = a.shape();
    let n = b.cols();
    c.resize_zeroed(m, n);
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let pool = pool::global();
    let executors = threads.clamp(1, pool.width()).min(m);
    let rows_per = m.div_ceil(executors);
    // Each executor owns a contiguous row range of C exclusively; the
    // mutexes never contend, they only hand `&mut` slices through `Fn`.
    let chunks: Vec<Mutex<&mut [f32]>> = c
        .as_mut_slice()
        .chunks_mut(rows_per * n)
        .map(Mutex::new)
        // lint:allow(L005): per-call chunk table of <= threads pointers —
        // orders of magnitude below the counting-allocator budget.
        .collect();
    let executors = chunks.len();

    // Elements per f32 scratch slot: 2 for the 16-bit formats, 4 for
    // int8. Panel element counts carry a factor of MR = NR = 8, so the
    // division is exact.
    let ratio = 4 / precision.storage_bytes();
    let kc_max = KC.min(k);
    let bp_len = kc_max * (NC.min(n)).div_ceil(NR) * NR / ratio;
    let ap_len = kc_max * MC / ratio;
    // int8 additionally carves `[sa | inv_sa | sb | inv_sb]` scale
    // tables from the front of the same scratch borrow.
    let scale_len = if precision == Precision::Int8 {
        2 * (m + n)
    } else {
        0
    };
    let w = if precision == Precision::F16 {
        W16::F16
    } else {
        W16::Bf16
    };
    pool.scratch()
        .with_f32(scale_len + bp_len + executors * ap_len, |scratch| {
            let (scale_buf, panels) = scratch.split_at_mut(scale_len);
            if precision == Precision::Int8 {
                let (sa, rest) = scale_buf.split_at_mut(m);
                let (inv_sa, rest) = rest.split_at_mut(m);
                let (sb, inv_sb) = rest.split_at_mut(n);
                for (i, s) in sa.iter_mut().enumerate() {
                    *s = calibrate_scale(a.row(i));
                }
                for (s, inv) in sa.iter().zip(inv_sa.iter_mut()) {
                    *inv = 1.0 / s;
                }
                // Column scales of B in one row-major pass.
                sb.fill(0.0);
                for p in 0..k {
                    for (s, &v) in sb.iter_mut().zip(b.row(p)) {
                        if v.is_finite() {
                            *s = s.max(v.abs());
                        }
                    }
                }
                for (s, inv) in sb.iter_mut().zip(inv_sb.iter_mut()) {
                    *s = if *s > 0.0 { *s / I8_MAX_Q } else { 1.0 };
                    *inv = 1.0 / *s;
                }
            }
            let scales: &[f32] = scale_buf;
            let (bpanel, ap_all) = panels.split_at_mut(bp_len);
            let apanels: Vec<Mutex<&mut [f32]>> = ap_all
                .chunks_mut(ap_len)
                .take(executors)
                .map(Mutex::new)
                // lint:allow(L005): per-call panel table of <= threads
                // pointers into the single pool scratch borrow.
                .collect();
            let mut jc = 0;
            while jc < n {
                let je = (jc + NC).min(n);
                let mut pc = 0;
                while pc < k {
                    let pe = (pc + KC).min(k);
                    if precision == Precision::Int8 {
                        pack_b_i8(b, pc, pe, jc, je, &scales[2 * m + n..], bpanel);
                    } else {
                        pack_b_w16(b, pc, pe, jc, je, bpanel, |v| enc_w16(w, v));
                    }
                    let bp: &[f32] = bpanel;
                    pool.broadcast(executors, executors, |t| {
                        let row_start = t * rows_per;
                        let row_end = (row_start + rows_per).min(m);
                        // Share index t locks only its own chunk and panel, so
                        // neither lock ever contends; a poisoned lock only means
                        // another worker panicked and the guarded slice is still
                        // structurally valid to hand back.
                        let mut chunk = audit::recover("gemm.chunk", &chunks[t]);
                        let mut ap = audit::recover("gemm.apanel", &apanels[t]);
                        if precision == Precision::Int8 {
                            gemm_block_i8(
                                kd,
                                a,
                                &mut chunk,
                                row_start,
                                row_end,
                                n,
                                jc,
                                je,
                                pc,
                                pe,
                                &scales[..m],
                                &scales[m..2 * m],
                                &scales[2 * m..2 * m + n],
                                &mut ap,
                                bp,
                            );
                        } else {
                            gemm_block_w16(
                                kd, w, a, &mut chunk, row_start, row_end, n, jc, je, pc, pe,
                                &mut ap, bp,
                            );
                        }
                    });
                    pc = pe;
                }
                jc = je;
            }
        });
    Ok(())
}

// ---------------------------------------------------------------------------
// Precision probing
// ---------------------------------------------------------------------------

/// Fault-injection hook for the precision probe, one named site per
/// narrow precision so chaos tests can fail a specific rung of the
/// f32 ← bf16 ← int8 chain.
fn precision_probe_site(p: Precision) -> Result<()> {
    match p {
        Precision::Bf16 => {
            // lint:allow(L008): probe path, runs at plan construction —
            // never on the per-call kernel path.
            resilience::fault_point_err!(
                "microkernel.probe.bf16",
                MatrixError::Fault {
                    site: "microkernel.probe.bf16",
                }
            );
        }
        Precision::F16 => {
            // lint:allow(L008): probe path, see above.
            resilience::fault_point_err!(
                "microkernel.probe.f16",
                MatrixError::Fault {
                    site: "microkernel.probe.f16",
                }
            );
        }
        Precision::Int8 => {
            // lint:allow(L008): probe path, see above.
            resilience::fault_point_err!(
                "microkernel.probe.int8",
                MatrixError::Fault {
                    site: "microkernel.probe.int8",
                }
            );
        }
        Precision::F32 => {}
    }
    Ok(())
}

/// `true` when `precision` survives a tiny encode → quantized-AXPY probe
/// on `kd`: 16 known values are narrowed, accumulated, and checked
/// against the analytic answer under `catch_unwind`. Panics, wrong
/// values, and non-finite output all fail the probe; stack arrays only.
fn probe_precision(kd: KernelDispatch, precision: Precision) -> bool {
    if precision_probe_site(precision).is_err() {
        return false;
    }
    if precision == Precision::F32 {
        // The f32 path was already probed at dispatch selection.
        return true;
    }
    std::panic::catch_unwind(move || {
        let mut y = [0.5f32; 16];
        let mut x = [0.0f32; 16];
        for (j, v) in x.iter_mut().enumerate() {
            *v = (j as f32 - 7.5) * 0.25;
        }
        let mut wide = [0u16; 16];
        let mut narrow = [0i8; 16];
        match precision {
            Precision::Bf16 => {
                for (d, &v) in wide.iter_mut().zip(&x) {
                    *d = f32_to_bf16(v);
                }
                kd.axpy_quant(&mut y, 2.0, QuantRow::Bf16(&wide));
            }
            Precision::F16 => {
                for (d, &v) in wide.iter_mut().zip(&x) {
                    *d = f32_to_f16(v);
                }
                kd.axpy_quant(&mut y, 2.0, QuantRow::F16(&wide));
            }
            _ => {
                let scale = calibrate_scale(&x);
                let inv = 1.0 / scale;
                for (d, &v) in narrow.iter_mut().zip(&x) {
                    *d = saturating_cast_i8(v * inv);
                }
                kd.axpy_quant(&mut y, 2.0, QuantRow::Int8(scale, &narrow));
            }
        }
        // Worst case is the int8 grid: step ~0.0148 over this range,
        // doubled by alpha — 0.05 leaves slack without masking a wrong
        // lane (lanes differ by 0.5).
        y.iter().zip(&x).all(|(&v, &xv)| {
            let want = 0.5 + 2.0 * xv;
            v.is_finite() && (v - want).abs() <= 0.05
        })
    })
    .unwrap_or(false)
}

/// Resolves a requested storage precision against the probe chain: the
/// first rung of `requested` → [`Precision::fallback`] → … that passes
/// [`probe_precision`] wins, falling back to [`Precision::F32`] when
/// every narrow rung fails. Returns the chosen precision and the
/// `(requested, chosen)` pair when a downgrade happened — the resilience
/// layer records it as a degradation. In practice only injected faults
/// (`resilience`) fail a rung; the probe exists so a miscompiled or
/// misdetected narrow path degrades instead of corrupting inference.
pub fn resolve_precision(
    kd: KernelDispatch,
    requested: Precision,
) -> (Precision, Option<(Precision, Precision)>) {
    let mut candidate = requested;
    loop {
        if probe_precision(kd, candidate) {
            let fallback = (candidate != requested).then_some((requested, candidate));
            return (candidate, fallback);
        }
        match candidate.fallback() {
            Some(next) => candidate = next,
            None => return (Precision::F32, Some((requested, Precision::F32))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    fn all_backends() -> Vec<KernelDispatch> {
        let mut v = vec![
            KernelDispatch::with_backend(Backend::Portable),
            KernelDispatch::with_backend(Backend::Scalar),
        ];
        if avx2_available() {
            v.push(KernelDispatch::with_backend(Backend::Avx2Fma));
        }
        v
    }

    #[test]
    fn packed_matches_naive_across_shapes_and_backends() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (8, 8, 8),
            (3, 5, 7),
            (17, 0, 9),
            (65, 129, 33),
            (100, 300, 50),
            (70, 64, 1),
        ] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let reference = matmul_naive(&a, &b).unwrap();
            for kd in all_backends() {
                for threads in [1, 4] {
                    let mut c = DenseMatrix::filled(3, 3, f32::NAN);
                    matmul_packed_with(kd, &a, &b, threads, &mut c).unwrap();
                    assert!(
                        reference.max_abs_diff(&c) < 1e-4,
                        "({m},{k},{n}) backend={} threads={threads}",
                        kd.backend().name()
                    );
                }
            }
        }
    }

    #[test]
    fn axpy_backends_agree_including_tails() {
        let mut rng = StdRng::seed_from_u64(12);
        // Mismatched (y_len, x_len) pairs included on purpose: the update
        // covers only the common prefix, and the vector remainders must
        // still pair identical lanes when the lengths differ.
        for (y_len, x_len) in [
            (0usize, 0usize),
            (1, 1),
            (7, 7),
            (8, 8),
            (9, 9),
            (31, 31),
            (64, 64),
            (100, 100),
            (58, 69),
            (69, 58),
            (10, 3),
        ] {
            let x: Vec<f32> = (0..x_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let base: Vec<f32> = (0..y_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let alpha = rng.gen_range(-2.0..2.0);
            let mut want = base.clone();
            axpy_scalar(&mut want, alpha, &x);
            for kd in all_backends() {
                let mut y = base.clone();
                kd.axpy(&mut y, alpha, &x);
                for (w, g) in want.iter().zip(&y) {
                    assert!(
                        (w - g).abs() < 1e-5,
                        "y_len={y_len} x_len={x_len} backend={}",
                        kd.backend().name()
                    );
                }
            }
        }
    }

    /// Reference for the narrow GEMMs: round-trip the operands through
    /// the same storage narrowing the packed path uses, then run the
    /// naive f32 triple loop — the remaining difference is accumulation
    /// order only.
    fn narrowed_reference(a: &DenseMatrix, b: &DenseMatrix, precision: Precision) -> DenseMatrix {
        use crate::quant::{f16_to_f32 as df16, f32_to_f16 as ef16};
        let narrow = |m: &DenseMatrix, per_col: bool| -> DenseMatrix {
            let mut out = m.clone();
            match precision {
                Precision::Bf16 => {
                    for v in out.as_mut_slice() {
                        *v = bf16_to_f32(f32_to_bf16(*v));
                    }
                }
                Precision::F16 => {
                    for v in out.as_mut_slice() {
                        *v = df16(ef16(*v));
                    }
                }
                _ => {
                    if per_col {
                        let t = m.transpose();
                        let mut tq = t.clone();
                        for r in 0..t.rows() {
                            let s = calibrate_scale(t.row(r));
                            for (d, &v) in tq.row_mut(r).iter_mut().zip(t.row(r)) {
                                *d = saturating_cast_i8(v / s) as f32 * s;
                            }
                        }
                        out = tq.transpose();
                    } else {
                        for r in 0..m.rows() {
                            let s = calibrate_scale(m.row(r));
                            for (d, &v) in out.row_mut(r).iter_mut().zip(m.row(r)) {
                                *d = saturating_cast_i8(v / s) as f32 * s;
                            }
                        }
                    }
                }
            }
            out
        };
        matmul_naive(&narrow(a, false), &narrow(b, true)).unwrap()
    }

    #[test]
    fn packed_prec_matches_narrowed_naive_across_shapes_and_backends() {
        let mut rng = StdRng::seed_from_u64(13);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (8, 8, 8),
            (3, 5, 7),
            (17, 0, 9),
            (65, 129, 33),
            (70, 64, 1),
        ] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            for precision in [Precision::Bf16, Precision::F16, Precision::Int8] {
                let reference = narrowed_reference(&a, &b, precision);
                for kd in all_backends() {
                    for threads in [1, 4] {
                        let mut c = DenseMatrix::filled(3, 3, f32::NAN);
                        matmul_packed_prec_with(kd, precision, &a, &b, threads, &mut c).unwrap();
                        // The reference applies identical narrowing, so
                        // only accumulation order differs (plus one
                        // rounding per i32→f32 writeback for int8).
                        let tol = if precision == Precision::Int8 {
                            2e-3
                        } else {
                            1e-4
                        } * (k.max(1) as f32);
                        assert!(
                            reference.max_abs_diff(&c) < tol,
                            "({m},{k},{n}) prec={precision} backend={} threads={threads} diff={}",
                            kd.backend().name(),
                            reference.max_abs_diff(&c)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn packed_prec_f32_delegates_to_f32_path() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = random_matrix(&mut rng, 10, 12);
        let b = random_matrix(&mut rng, 12, 9);
        let mut c32 = DenseMatrix::default();
        let mut cp = DenseMatrix::default();
        let kd = KernelDispatch::get();
        matmul_packed_with(kd, &a, &b, 1, &mut c32).unwrap();
        matmul_packed_prec_with(kd, Precision::F32, &a, &b, 1, &mut cp).unwrap();
        assert_eq!(c32.max_abs_diff(&cp), 0.0);
    }

    #[test]
    fn narrow_axpy_backends_agree_with_scalar_decode() {
        let mut rng = StdRng::seed_from_u64(15);
        for len in [0usize, 1, 7, 8, 9, 31, 64, 100] {
            let x: Vec<f32> = (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let base: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let alpha = 1.5f32;
            let bf: Vec<u16> = x.iter().map(|&v| f32_to_bf16(v)).collect();
            let hf: Vec<u16> = x.iter().map(|&v| f32_to_f16(v)).collect();
            let scale = calibrate_scale(&x);
            let i8s: Vec<i8> = x.iter().map(|&v| saturating_cast_i8(v / scale)).collect();
            for kd in all_backends() {
                let mut want = base.clone();
                axpy_decoded_scalar(&mut want, alpha, &bf, bf16_to_f32);
                let mut y = base.clone();
                kd.axpy_quant(&mut y, alpha, QuantRow::Bf16(&bf));
                for (w, g) in want.iter().zip(&y) {
                    assert!(
                        (w - g).abs() < 1e-5,
                        "bf16 len={len} {}",
                        kd.backend().name()
                    );
                }
                let mut want = base.clone();
                axpy_decoded_scalar(&mut want, alpha, &hf, f16_to_f32);
                let mut y = base.clone();
                kd.axpy_quant(&mut y, alpha, QuantRow::F16(&hf));
                for (w, g) in want.iter().zip(&y) {
                    assert!(
                        (w - g).abs() < 1e-5,
                        "f16 len={len} {}",
                        kd.backend().name()
                    );
                }
                let mut want = base.clone();
                axpy_decoded_scalar(&mut want, alpha * scale, &i8s, |v| v as f32);
                let mut y = base.clone();
                kd.axpy_quant(&mut y, alpha, QuantRow::Int8(scale, &i8s));
                for (w, g) in want.iter().zip(&y) {
                    assert!(
                        (w - g).abs() < 1e-4,
                        "int8 len={len} {}",
                        kd.backend().name()
                    );
                }
            }
        }
    }

    #[test]
    fn resolve_precision_accepts_every_rung_unfaulted() {
        let kd = KernelDispatch::get();
        for p in Precision::all() {
            let (chosen, fallback) = resolve_precision(kd, p);
            assert_eq!(chosen, p);
            assert!(fallback.is_none());
        }
    }

    #[test]
    fn forced_backend_downgrade_never_yields_unavailable_avx2() {
        let kd = KernelDispatch::with_backend(Backend::Avx2Fma);
        if !avx2_available() {
            assert_eq!(kd.backend(), Backend::Portable);
        } else {
            assert_eq!(kd.backend(), Backend::Avx2Fma);
        }
    }

    #[test]
    fn global_dispatch_is_stable() {
        assert_eq!(KernelDispatch::get(), KernelDispatch::get());
    }
}
