//! The [`DenseMatrix`] type: a row-major `f32` matrix.

use crate::activation::Activation;
use crate::error::MatrixError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32` values.
///
/// Rows are stored contiguously, which matches the access pattern of SpMM
/// (which streams whole feature rows) and GEMM (which walks rows of the
/// left operand).
///
/// # Examples
///
/// ```
/// use matrix::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m[(0, 1)] = 5.0;
/// assert_eq!(m.row(0), &[0.0, 5.0, 0.0]);
/// assert_eq!(m.shape(), (2, 3));
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            // lint:allow(L009): constructor, not steady-state — hot
            // callers reach this only on setup/planning paths; per-layer
            // reuse goes through resize_for_overwrite on retained buffers.
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major backing vector.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::BufferSize`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::BufferSize {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::RaggedRows`] if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(MatrixError::RaggedRows {
                    expected: ncols,
                    row: i,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrows the row-major backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Multiplies `self * rhs` using the packed register-tiled GEMM engine
    /// ([`crate::microkernel::matmul_packed`]).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        crate::microkernel::matmul_packed(self, rhs)
    }

    /// Applies an activation function element-wise, in place.
    pub fn apply_activation(&mut self, act: Activation) {
        act.apply_in_place(&mut self.data);
    }

    /// Adds `bias[j]` to every element of column `j`, in place.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if
    /// `bias.len() != self.cols()`.
    pub fn add_row_bias(&mut self, bias: &[f32]) -> Result<()> {
        if bias.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "add_row_bias",
                lhs: (self.rows, self.cols),
                rhs: (1, bias.len()),
            });
        }
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
        Ok(())
    }

    /// Scales every element by `factor`, in place.
    pub fn scale(&mut self, factor: f32) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Element-wise (Hadamard) product with `other`, in place.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if the shapes differ.
    pub fn hadamard(&mut self, other: &DenseMatrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "hadamard",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x *= y;
        }
        Ok(())
    }

    /// Adds `factor * other` element-wise, in place (the AXPY of SGD).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &DenseMatrix, factor: f32) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "add_scaled",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x += factor * y;
        }
        Ok(())
    }

    /// Sum of every column as a vector of length `cols` (bias gradients).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for row in self.data.chunks_exact(self.cols.max(1)) {
            for (s, x) in sums.iter_mut().zip(row) {
                *s += x;
            }
        }
        sums
    }

    /// Reshapes to `(rows, cols)` and fills with zeros, reusing the
    /// existing backing allocation whenever its capacity suffices.
    ///
    /// This is the buffer-recycling primitive behind the `*_into` kernel
    /// variants: in steady state (same shapes every call) it never touches
    /// the allocator.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// Reshapes to `(rows, cols)` like [`DenseMatrix::resize_zeroed`] but
    /// leaves any existing element values in place (stale).
    ///
    /// For callers that overwrite every element before reading the result:
    /// a same-shape call in steady state writes nothing at all, skipping the
    /// full-buffer memset `resize_zeroed` would redo on every invocation.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        self.rows = rows;
        self.cols = cols;
        self.data.resize(len, 0.0);
    }

    /// Makes `self` an element-wise copy of `other`, reusing the existing
    /// backing allocation whenever its capacity suffices.
    pub fn copy_from(&mut self, other: &DenseMatrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Largest absolute element-wise difference against `other`.
    ///
    /// Returns `f32::INFINITY` when the shapes differ, so that a shape
    /// mismatch can never masquerade as numerical agreement.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        if self.shape() != other.shape() {
            return f32::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Frobenius norm (`sqrt(sum of squares)`).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Typed-error variant of [`all_finite`](Self::all_finite): `Ok(())`
    /// when every element is finite, otherwise
    /// [`MatrixError::NonFinite`] locating the first offending element.
    /// `what` names the operand in the error (e.g. `"features"`).
    pub fn validate_finite(&self, what: &'static str) -> Result<()> {
        match self.data.iter().position(|x| !x.is_finite()) {
            None => Ok(()),
            Some(flat) => Err(MatrixError::NonFinite {
                what,
                row: flat.checked_div(self.cols).unwrap_or(0),
                col: flat.checked_rem(self.cols).unwrap_or(0),
            }),
        }
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        const MAX_SHOWN: usize = 8;
        for i in 0..self.rows.min(MAX_SHOWN) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(MAX_SHOWN) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            if self.cols > MAX_SHOWN {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > MAX_SHOWN {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Default for DenseMatrix {
    fn default() -> Self {
        DenseMatrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_contents() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let id = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn from_vec_rejects_bad_buffer() {
        let err = DenseMatrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            MatrixError::BufferSize {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, MatrixError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn transpose_round_trips() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn row_accessors_agree_with_indexing() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m[(1, 0)], 7.0);
        assert_eq!(m.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn add_row_bias_applies_per_column() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.add_row_bias(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn add_row_bias_rejects_wrong_length() {
        let mut m = DenseMatrix::zeros(2, 3);
        assert!(m.add_row_bias(&[1.0]).is_err());
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::zeros(2, 3);
        assert_eq!(a.max_abs_diff(&b), f32::INFINITY);
    }

    #[test]
    fn max_abs_diff_finds_largest_gap() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[1.5, 0.0]]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let a = DenseMatrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn iter_rows_yields_every_row() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let rows: Vec<&[f32]> = a.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn debug_output_is_nonempty_and_truncated() {
        let big = DenseMatrix::zeros(20, 20);
        let dbg = format!("{:?}", big);
        assert!(dbg.contains("DenseMatrix 20x20"));
        assert!(dbg.contains("..."));
    }

    #[test]
    fn scale_multiplies_all_elements() {
        let mut a = DenseMatrix::filled(2, 2, 2.0);
        a.scale(0.5);
        assert!(a.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[2.0, 0.5], &[0.0, -1.0]]).unwrap();
        a.hadamard(&b).unwrap();
        assert_eq!(
            a,
            DenseMatrix::from_rows(&[&[2.0, 1.0], &[0.0, -4.0]]).unwrap()
        );
        assert!(a.hadamard(&DenseMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = DenseMatrix::filled(2, 2, 1.0);
        let g = DenseMatrix::filled(2, 2, 2.0);
        a.add_scaled(&g, -0.25).unwrap();
        assert!(a.as_slice().iter().all(|&x| x == 0.5));
        assert!(a.add_scaled(&DenseMatrix::zeros(1, 1), 1.0).is_err());
    }

    #[test]
    fn column_sums_reduce_rows() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.column_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn resize_zeroed_reuses_capacity_and_clears_stale_values() {
        let mut m = DenseMatrix::filled(4, 8, 3.5);
        let ptr = m.as_slice().as_ptr();
        m.resize_zeroed(8, 4);
        assert_eq!(m.shape(), (8, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(
            m.as_slice().as_ptr(),
            ptr,
            "same-size reshape must not reallocate"
        );
        m.resize_zeroed(2, 3);
        assert_eq!(m.len(), 6);
        assert_eq!(m.as_slice().as_ptr(), ptr, "shrinking must not reallocate");
    }

    #[test]
    fn copy_from_matches_clone_without_reallocating_at_capacity() {
        let src = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let mut dst = DenseMatrix::filled(3, 3, 9.0);
        let ptr = dst.as_slice().as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = DenseMatrix::zeros(1, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f32::NAN;
        assert!(!a.all_finite());
    }
}
