//! The dispatch probe must degrade Avx2Fma → Portable → Scalar when a rung
//! fails, and choose the detected backend untouched when probes pass.

use matrix::microkernel::{resolve_probed, Backend};
use resilience::fault::{self, FaultConfig, FaultKind};

#[test]
fn clean_probe_keeps_the_detected_backend() {
    let (kd, fallback) = resolve_probed();
    assert_eq!(kd.backend(), Backend::detect());
    assert_eq!(fallback, None);
}

#[test]
fn injected_avx2_probe_failure_degrades_one_rung() {
    let _armed =
        fault::arm(FaultConfig::new(5).point("microkernel.probe.avx2", FaultKind::Error, 1.0));
    let (kd, fallback) = resolve_probed();
    let preferred = Backend::detect();
    if preferred == Backend::Avx2Fma {
        assert_eq!(kd.backend(), Backend::Portable);
        assert_eq!(fallback, Some((Backend::Avx2Fma, Backend::Portable)));
    } else {
        // Host without AVX2 (or MICROKERNEL_FORCE): the failed site is
        // never probed, so nothing degrades.
        assert_eq!(kd.backend(), preferred);
        assert_eq!(fallback, None);
    }
}

#[test]
fn probe_chain_bottoms_out_at_scalar() {
    // Fail every probed rung (prefix matches both avx2 and portable sites);
    // scalar is the last resort and has no injection site.
    let _armed = fault::arm(FaultConfig::new(5).point("microkernel.probe.", FaultKind::Error, 1.0));
    let (kd, fallback) = resolve_probed();
    assert_eq!(kd.backend(), Backend::Scalar);
    let preferred = Backend::detect();
    if preferred != Backend::Scalar {
        assert_eq!(fallback, Some((preferred, Backend::Scalar)));
    } else {
        assert_eq!(fallback, None);
    }
}
