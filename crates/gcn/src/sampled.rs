//! Mini-batch GCN inference through neighbourhood sampling.
//!
//! When a graph does not fit in a device's memory, inference falls back to
//! sampling: for each batch of target vertices, expand their L-hop
//! neighbourhood (L = number of layers), run the model on the induced
//! subgraph, and keep only the target rows. The paper's GPU baseline uses
//! exactly this *full-neighbourhood* scheme on `papers` (Section III-C) —
//! sampling cost is what buries the GPU there — and its Discussion section
//! points at fixed-fanout (GraphSAGE-style) sampling as future work.
//!
//! Full-neighbourhood sampling computes *exactly* what full-graph inference
//! computes for the target vertices (a test pins this); fixed-fanout
//! sampling is the cheaper approximation.

use crate::error::GcnError;
use crate::model::GcnModel;
use graph::sampling::{full_neighborhood, sample_neighbors, Subgraph};
use graph::Graph;
use kernels::SpmmStrategy;
use matrix::DenseMatrix;

/// How a mini-batch neighbourhood is formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingScheme {
    /// Every in-neighbour at every hop — exact, but the neighbourhood can
    /// explode (the `papers` problem).
    FullNeighborhood,
    /// At most `fanout` sampled in-neighbours per vertex per hop.
    FixedFanout {
        /// Neighbours kept per vertex per hop.
        fanout: usize,
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

/// Result of one sampled mini-batch inference.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledBatch {
    /// Model output for the batch vertices, in batch order.
    pub output: DenseMatrix,
    /// The sampled subgraph the batch ran on (exposes neighbourhood size —
    /// the quantity whose explosion the paper measures as "sampling" cost).
    pub subgraph: Subgraph,
}

impl GcnModel {
    /// Runs inference for `batch` only, by sampling its L-hop neighbourhood
    /// (L = layer count) and running the model on the induced subgraph.
    ///
    /// `features` is the *full* feature matrix; rows for the sampled
    /// vertices are gathered into the subgraph. Output row `i` corresponds
    /// to `batch[i]`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the kernels; see [`GcnModel::infer`].
    ///
    /// # Panics
    ///
    /// Panics if a batch vertex is out of range (mirrors the sampler).
    pub fn infer_sampled(
        &self,
        graph: &Graph,
        features: &DenseMatrix,
        batch: &[usize],
        scheme: SamplingScheme,
        strategy: SpmmStrategy,
    ) -> Result<SampledBatch, GcnError> {
        let hops = self.layers().len();
        let subgraph = match scheme {
            SamplingScheme::FullNeighborhood => full_neighborhood(graph, batch, hops),
            SamplingScheme::FixedFanout { fanout, seed } => {
                sample_neighbors(graph, batch, hops, fanout, seed)
            }
        };

        // Gather features for the sampled vertices.
        let k = features.cols();
        let mut local_features = DenseMatrix::zeros(subgraph.len(), k);
        for (local, &parent) in subgraph.vertices.iter().enumerate() {
            local_features
                .row_mut(local)
                .copy_from_slice(features.row(parent));
        }

        let local_graph = Graph::from_adjacency(subgraph.adjacency.clone());
        let full = self.infer(&local_graph, &local_features, strategy)?;

        // Batch vertices are seeds-first in the sampler's ordering, but
        // duplicates were deduplicated — map explicitly.
        let out_dim = full.cols();
        let mut output = DenseMatrix::zeros(batch.len(), out_dim);
        for (i, &parent) in batch.iter().enumerate() {
            let local = subgraph
                .local_id(parent)
                .expect("batch vertex is in its own sample");
            output.row_mut(i).copy_from_slice(full.row(local));
        }
        Ok(SampledBatch { output, subgraph })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcnConfig;
    use graph::rmat::RmatConfig;

    fn setup() -> (Graph, GcnModel, DenseMatrix) {
        let g = Graph::rmat(&RmatConfig::power_law(7, 6), 21);
        let model = GcnModel::new(&GcnConfig::paper_model(8, 12, 3), 4);
        let x = g.random_features(8, 6);
        (g, model, x)
    }

    #[test]
    fn full_neighborhood_sampling_is_exact() {
        // The L-hop receptive field of a vertex fully determines its L-layer
        // GCN output, so full-neighbourhood mini-batch inference must equal
        // the full-graph result on the batch rows.
        let (g, model, x) = setup();
        let full = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
        let batch = [3usize, 17, 42];
        let sampled = model
            .infer_sampled(
                &g,
                &x,
                &batch,
                SamplingScheme::FullNeighborhood,
                SpmmStrategy::Sequential,
            )
            .unwrap();
        for (i, &v) in batch.iter().enumerate() {
            let expected = full.row(v);
            let got = sampled.output.row(i);
            let diff = expected
                .iter()
                .zip(got)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(diff < 1e-4, "vertex {v}: diff {diff}");
        }
    }

    #[test]
    fn fanout_sampling_shrinks_the_neighbourhood() {
        let (g, model, x) = setup();
        let batch: Vec<usize> = (0..8).collect();
        let full = model
            .infer_sampled(
                &g,
                &x,
                &batch,
                SamplingScheme::FullNeighborhood,
                SpmmStrategy::Sequential,
            )
            .unwrap();
        let sampled = model
            .infer_sampled(
                &g,
                &x,
                &batch,
                SamplingScheme::FixedFanout { fanout: 2, seed: 3 },
                SpmmStrategy::Sequential,
            )
            .unwrap();
        assert!(sampled.subgraph.len() <= full.subgraph.len());
        assert_eq!(sampled.output.shape(), (batch.len(), 3));
        assert!(sampled.output.all_finite());
    }

    #[test]
    fn batch_order_is_preserved() {
        let (g, model, x) = setup();
        let forward = model
            .infer_sampled(
                &g,
                &x,
                &[5, 9],
                SamplingScheme::FullNeighborhood,
                SpmmStrategy::Sequential,
            )
            .unwrap();
        let reversed = model
            .infer_sampled(
                &g,
                &x,
                &[9, 5],
                SamplingScheme::FullNeighborhood,
                SpmmStrategy::Sequential,
            )
            .unwrap();
        // Orderings differ between the two samples, so float summation
        // order differs; compare with a tolerance.
        let diff = |a: &[f32], b: &[f32]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(diff(forward.output.row(0), reversed.output.row(1)) < 1e-5);
        assert!(diff(forward.output.row(1), reversed.output.row(0)) < 1e-5);
    }

    #[test]
    fn sampled_inference_works_with_parallel_kernels() {
        let (g, model, x) = setup();
        let batch = [1usize, 2, 3];
        let seq = model
            .infer_sampled(
                &g,
                &x,
                &batch,
                SamplingScheme::FullNeighborhood,
                SpmmStrategy::Sequential,
            )
            .unwrap();
        let par = model
            .infer_sampled(
                &g,
                &x,
                &batch,
                SamplingScheme::FullNeighborhood,
                SpmmStrategy::EdgeParallel { threads: 4 },
            )
            .unwrap();
        assert!(seq.output.max_abs_diff(&par.output) < 1e-3);
    }
}
