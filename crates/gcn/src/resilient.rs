//! Guarded and fault-tolerant inference entry points.
//!
//! Two concerns layer on top of [`GcnModel`]'s plain inference:
//!
//! * **Run guards** — [`GcnModel::infer_guarded_with`] checks a
//!   [`RunGuard`] (wall-clock budget and/or cooperative cancellation)
//!   between layers and returns a typed partial result instead of running
//!   past its budget: the workspace holds the activations of the last
//!   *completed* layer, and the outcome says how many layers finished and
//!   why the run stopped.
//! * **Retry + degradation** — [`GcnModel::infer_resilient_with`]
//!   validates inputs up front (dimension checks plus a NaN/Inf sweep over
//!   features and weights), then executes each layer under
//!   [`resilience::retry`], degrading the SpMM strategy one rung at a time
//!   (via [`kernels::resilient::fallback_of`]) when a layer keeps failing.
//!   Everything that happened — attempts, recovered panics, strategy
//!   fallbacks, SIMD-backend downgrades — is reported in the returned
//!   [`InferenceRun`].
//!
//! Retrying a layer is sound because the fused layer kernel fully
//! overwrites its two output buffers; a crashed attempt leaves no state a
//! later attempt can observe.

use crate::accuracy::{accuracy_bound, rel_frobenius};
use crate::error::GcnError;
use crate::model::{GcnModel, InferenceWorkspace};
use kernels::fused::gcn_layer_fused_into;
use kernels::resilient::{fallback_of, Degradation, ExecutionReport};
use kernels::SpmmStrategy;
use matrix::{DenseMatrix, MatrixError, Precision};
use resilience::guard::{RunGuard, RunOutcome, StopReason};
use resilience::retry::{self, Failure, RetryPolicy};
use sparse::Csr;

/// How a resilient inference run completed: progress, stop reason (if the
/// guard fired), and the merged per-layer [`ExecutionReport`].
#[derive(Debug, Clone, Default)]
pub struct InferenceRun {
    /// Layers fully executed; the workspace output reflects exactly these.
    pub layers_done: usize,
    /// Layers the model has in total.
    pub total_layers: usize,
    /// Why the run stopped early, if it did.
    pub stopped: Option<StopReason>,
    /// Attempts, recoveries, and degradations accumulated across layers.
    pub report: ExecutionReport,
}

impl InferenceRun {
    /// Did every layer run to completion?
    pub fn is_complete(&self) -> bool {
        self.stopped.is_none() && self.layers_done == self.total_layers
    }
}

/// How a precision-guarded inference run completed: the precision that was
/// asked for, the one that actually produced the accepted output, the
/// measured end-to-end error, and the degradation trail.
#[derive(Debug, Clone)]
pub struct PrecisionRun {
    /// Storage precision the caller requested.
    pub requested: Precision,
    /// Precision whose output passed the accuracy guard (the workspace
    /// output was produced at this precision).
    pub used: Precision,
    /// Measured `||out - out_f32||_F / ||out_f32||_F` of the accepted run.
    pub rel_frobenius: f32,
    /// ISA-probe and accuracy-guard downgrades, plus the merged
    /// [`ExecutionReport`] fields.
    pub report: ExecutionReport,
}

impl PrecisionRun {
    /// Did the run complete at the precision the caller asked for?
    pub fn at_requested_precision(&self) -> bool {
        self.requested == self.used
    }
}

impl GcnModel {
    /// Shape and finiteness validation shared by the hardened entry
    /// points: dimension checks, then a NaN/Inf sweep over the feature
    /// matrix and every layer's weights and bias.
    ///
    /// # Errors
    ///
    /// [`GcnError::FeatureDimMismatch`] / [`GcnError::VertexCountMismatch`]
    /// on shape violations; [`GcnError::Normalize`] if the adjacency fails
    /// its structural check ([`Csr::validate`]); [`GcnError::Kernel`]
    /// wrapping [`MatrixError::NonFinite`] naming the first offending
    /// entry.
    pub fn validate_inputs(&self, a_hat: &Csr, features: &DenseMatrix) -> Result<(), GcnError> {
        if features.cols() != self.input_dim() {
            return Err(GcnError::FeatureDimMismatch {
                expected: self.input_dim(),
                actual: features.cols(),
            });
        }
        if features.rows() != a_hat.nrows() {
            return Err(GcnError::VertexCountMismatch {
                graph: a_hat.nrows(),
                features: features.rows(),
            });
        }
        a_hat.validate()?;
        features.validate_finite("features")?;
        for (t, layer) in self.layers().iter().enumerate() {
            layer.weight.validate_finite("layer weight")?;
            if let Some(bias) = &layer.bias {
                if let Some(col) = bias.iter().position(|b| !b.is_finite()) {
                    return Err(GcnError::Kernel(MatrixError::NonFinite {
                        what: "layer bias",
                        row: t,
                        col,
                    }));
                }
            }
        }
        Ok(())
    }

    /// [`GcnModel::infer_normalized_with`] under a [`RunGuard`]: the guard
    /// is checked before every layer, and a fired guard ends the run with
    /// a typed partial result instead of an error. On a partial return the
    /// workspace output holds the activations of the last completed layer
    /// and the outcome value is the number of layers done.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`]; guard stops are *not*
    /// errors.
    pub fn infer_guarded_with(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        strategy: SpmmStrategy,
        guard: &RunGuard,
        workspace: &mut InferenceWorkspace,
    ) -> Result<RunOutcome<usize>, GcnError> {
        self.validate_inputs(a_hat, features)?;
        workspace.output_mut().copy_from(features);
        for (done, layer) in self.layers().iter().enumerate() {
            if let Some(reason) = guard.should_stop() {
                return Ok(RunOutcome::Partial {
                    value: done,
                    reason,
                });
            }
            let (h, next, mid) = workspace.buffers_mut();
            gcn_layer_fused_into(
                a_hat,
                h,
                &layer.weight,
                layer.bias.as_deref(),
                layer.activation,
                strategy,
                mid,
                next,
            )?;
            workspace.swap_output();
        }
        Ok(RunOutcome::Complete(self.layers().len()))
    }

    /// Fully hardened inference: validated inputs, per-layer bounded retry
    /// with panic capture, strategy degradation on persistent failure, and
    /// a [`RunGuard`] checked between layers (and between degradation
    /// rungs). Returns an [`InferenceRun`] describing exactly how the
    /// result was obtained; the output lands in the workspace.
    ///
    /// # Errors
    ///
    /// Validation errors as in [`GcnModel::validate_inputs`], or the final
    /// rung's typed error once a layer has exhausted retry *and* the
    /// entire degradation chain.
    pub fn infer_resilient_with(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        strategy: SpmmStrategy,
        policy: &RetryPolicy,
        guard: &RunGuard,
        workspace: &mut InferenceWorkspace,
    ) -> Result<InferenceRun, GcnError> {
        self.validate_inputs(a_hat, features)?;
        let mut run = InferenceRun {
            total_layers: self.layers().len(),
            report: ExecutionReport::new(),
            ..InferenceRun::default()
        };
        workspace.output_mut().copy_from(features);
        for layer in self.layers() {
            if let Some(reason) = guard.should_stop() {
                run.stopped = Some(reason);
                return Ok(run);
            }
            let mut current = match strategy {
                SpmmStrategy::Auto => SpmmStrategy::select(a_hat, layer.out_dim()),
                s => s,
            };
            loop {
                let (h, next, mid) = workspace.buffers_mut();
                let outcome = retry::run(policy, || -> Result<(), MatrixError> {
                    resilience::fault_point_err!(
                        "gcn.layer",
                        MatrixError::Fault { site: "gcn.layer" }
                    );
                    gcn_layer_fused_into(
                        a_hat,
                        h,
                        &layer.weight,
                        layer.bias.as_deref(),
                        layer.activation,
                        current,
                        mid,
                        next,
                    )
                    .map(|_| ())
                });
                match outcome {
                    Ok(rec) => {
                        run.report.attempts += rec.attempts;
                        run.report.recovered_panics += rec.recovered_panics;
                        run.report.recovered_errors += rec.recovered_errors;
                        break;
                    }
                    Err(err) => {
                        run.report.attempts += err.attempts;
                        let Some(fallback) = fallback_of(current) else {
                            return Err(match err.last {
                                Failure::Error(e) => GcnError::Kernel(e),
                                Failure::Panic(_) => GcnError::Kernel(MatrixError::Fault {
                                    site: "gcn.layer: unrecovered panic",
                                }),
                            });
                        };
                        run.report.degradations.push(Degradation {
                            from: current.to_string(),
                            to: fallback.to_string(),
                            cause: err.last.to_string(),
                        });
                        current = fallback;
                        if let Some(reason) = guard.should_stop() {
                            run.stopped = Some(reason);
                            return Ok(run);
                        }
                    }
                }
            }
            workspace.swap_output();
            run.layers_done += 1;
            run.report.completed_with = Some(current.to_string());
        }
        Ok(run)
    }

    /// Narrow-precision inference with an end-to-end accuracy guard:
    /// runs planned inference at `precision`, measures the output against
    /// a full `f32` reference run, and walks [`Precision::fallback`]
    /// (int8 → bf16 → f32) until the measured relative Frobenius error
    /// sits inside [`accuracy_bound`]. ISA-probe downgrades made at plan
    /// build time are folded into the same degradation trail.
    ///
    /// The guard always terminates: the `f32` rung reproduces the
    /// reference bitwise, so its error is exactly zero.
    ///
    /// The accepted output lands in the workspace
    /// ([`InferenceWorkspace::output`]); the returned [`PrecisionRun`]
    /// says which precision produced it and how far it strayed.
    ///
    /// # Errors
    ///
    /// Validation errors as in [`GcnModel::validate_inputs`], plus any
    /// kernel error from the underlying planned inference.
    pub fn infer_prec_guarded_with(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        precision: Precision,
        workspace: &mut InferenceWorkspace,
    ) -> Result<PrecisionRun, GcnError> {
        self.infer_prec_guarded_inner(a_hat, features, precision, accuracy_bound, workspace)
    }

    /// [`GcnModel::infer_prec_guarded_with`] with an injectable bound
    /// function, so tests can force the guard to reject a rung
    /// deterministically.
    fn infer_prec_guarded_inner(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        precision: Precision,
        bound: impl Fn(Precision) -> f32,
        workspace: &mut InferenceWorkspace,
    ) -> Result<PrecisionRun, GcnError> {
        self.validate_inputs(a_hat, features)?;
        let mut reference_ws = InferenceWorkspace::new();
        self.infer_planned_with(a_hat, features, &mut reference_ws)?;
        let mut report = ExecutionReport::new();
        let mut current = precision;
        loop {
            self.infer_planned_prec_with(a_hat, features, current, workspace)?;
            let used = workspace.plan().map_or(current, |p| p.precision());
            if let Some((from, to)) = workspace.plan().and_then(|p| p.precision_fallback()) {
                report.degradations.push(Degradation {
                    from: from.to_string(),
                    to: to.to_string(),
                    cause: "precision ISA probe failed".to_string(),
                });
            }
            let err = rel_frobenius(workspace.output(), reference_ws.output());
            if err <= bound(used) {
                if used != precision {
                    report.precision_fallback = Some((precision, used));
                }
                report.completed_with = Some(used.to_string());
                return Ok(PrecisionRun {
                    requested: precision,
                    used,
                    rel_frobenius: err,
                    report,
                });
            }
            // f32 reproduces the reference exactly (err == 0), so a rung
            // with no fallback can only be reached if the bound function
            // rejects an exact match — surface that as a kernel fault
            // rather than looping.
            let Some(next) = used.fallback() else {
                return Err(GcnError::Kernel(MatrixError::Fault {
                    site: "gcn.precision_guard: f32 rung rejected",
                }));
            };
            report.degradations.push(Degradation {
                from: used.to_string(),
                to: next.to_string(),
                cause: format!("accuracy guard: rel_frobenius {err:.3e} over bound"),
            });
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcnConfig;
    use graph::rmat::RmatConfig;
    use graph::Graph;
    use resilience::fault::{self, FaultConfig, FaultKind};
    use resilience::guard::CancelToken;
    use std::time::Duration;

    fn setup() -> (Csr, DenseMatrix, GcnModel) {
        let g = Graph::rmat(&RmatConfig::power_law(7, 4), 13);
        let model = GcnModel::new(&GcnConfig::paper_model(8, 16, 4), 3);
        let x = g.random_features(8, 5);
        let a_hat = g.normalized_adjacency().unwrap();
        (a_hat, x, model)
    }

    #[test]
    fn unbounded_guard_completes_and_matches_plain_inference() {
        let (a_hat, x, model) = setup();
        let expected = model
            .infer_normalized(&a_hat, &x, SpmmStrategy::Sequential)
            .unwrap();
        let mut ws = InferenceWorkspace::new();
        let outcome = model
            .infer_guarded_with(
                &a_hat,
                &x,
                SpmmStrategy::Sequential,
                &RunGuard::unbounded(),
                &mut ws,
            )
            .unwrap();
        assert_eq!(outcome, RunOutcome::Complete(3));
        assert_eq!(expected, *ws.output());
    }

    #[test]
    fn cancelled_token_yields_typed_partial_result() {
        let (a_hat, x, model) = setup();
        let token = CancelToken::new();
        token.cancel();
        let mut ws = InferenceWorkspace::new();
        let outcome = model
            .infer_guarded_with(
                &a_hat,
                &x,
                SpmmStrategy::Sequential,
                &RunGuard::with_token(token),
                &mut ws,
            )
            .unwrap();
        assert_eq!(
            outcome,
            RunOutcome::Partial {
                value: 0,
                reason: StopReason::Cancelled
            }
        );
        // Zero layers ran: the workspace still holds the input features.
        assert_eq!(*ws.output(), x);
    }

    #[test]
    fn zero_budget_stops_before_the_first_layer() {
        let (a_hat, x, model) = setup();
        let mut ws = InferenceWorkspace::new();
        let outcome = model
            .infer_guarded_with(
                &a_hat,
                &x,
                SpmmStrategy::Sequential,
                &RunGuard::with_budget(Duration::ZERO),
                &mut ws,
            )
            .unwrap();
        assert_eq!(
            outcome,
            RunOutcome::Partial {
                value: 0,
                reason: StopReason::BudgetExceeded
            }
        );
    }

    #[test]
    fn non_finite_features_are_rejected_before_any_kernel_runs() {
        let (a_hat, mut x, model) = setup();
        x.as_mut_slice()[7] = f32::NAN;
        let mut ws = InferenceWorkspace::new();
        let err = model
            .infer_guarded_with(
                &a_hat,
                &x,
                SpmmStrategy::Sequential,
                &RunGuard::unbounded(),
                &mut ws,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            GcnError::Kernel(MatrixError::NonFinite {
                what: "features",
                ..
            })
        ));
    }

    #[test]
    fn non_finite_weights_are_rejected() {
        let (a_hat, x, mut model) = setup();
        model.layers_mut()[1].weight.as_mut_slice()[0] = f32::INFINITY;
        assert!(matches!(
            model.validate_inputs(&a_hat, &x),
            Err(GcnError::Kernel(MatrixError::NonFinite {
                what: "layer weight",
                ..
            }))
        ));
    }

    #[test]
    fn resilient_inference_recovers_injected_layer_faults() {
        let (a_hat, x, model) = setup();
        let expected = model
            .infer_normalized(&a_hat, &x, SpmmStrategy::Sequential)
            .unwrap();
        let _armed = fault::arm(FaultConfig::new(17).point("gcn.layer", FaultKind::Error, 0.4));
        let mut ws = InferenceWorkspace::new();
        let run = model
            .infer_resilient_with(
                &a_hat,
                &x,
                SpmmStrategy::Sequential,
                &RetryPolicy::immediate(10),
                &RunGuard::unbounded(),
                &mut ws,
            )
            .unwrap();
        assert!(run.is_complete());
        assert_eq!(run.layers_done, 3);
        // Retries re-run the same deterministic kernel, so the recovered
        // result is bitwise identical to an undisturbed run.
        assert_eq!(expected, *ws.output());
    }

    #[test]
    fn resilient_inference_degrades_strategy_and_reports_it() {
        let (a_hat, x, model) = setup();
        let expected = model
            .infer_normalized(&a_hat, &x, SpmmStrategy::Sequential)
            .unwrap();
        // Find a seed whose decision stream (probed on the real site name,
        // which keys the hash) lets every layer finish within its
        // degradation chain while forcing at least one fallback. Each
        // layer walks hybrid → vertex-parallel → sequential with one
        // attempt per rung, consuming one decision per attempt.
        let seed = (0..256u64)
            .find(|&s| {
                let _g = fault::arm(FaultConfig::new(s).point("gcn.layer", FaultKind::Error, 0.5));
                let mut fires = [false; 16];
                for f in fires.iter_mut() {
                    *f = fault::should_fail("gcn.layer");
                }
                let mut i = 0;
                let mut any_fire = false;
                let all_layers_ok = (0..3).all(|_| {
                    for rung in 0..3 {
                        let fired = fires[i];
                        i += 1;
                        if !fired {
                            return true;
                        }
                        any_fire = true;
                        if rung == 2 {
                            return false;
                        }
                    }
                    false
                });
                all_layers_ok && any_fire
            })
            .expect("some seed degrades at least one layer yet completes");
        let _armed = fault::arm(FaultConfig::new(seed).point("gcn.layer", FaultKind::Error, 0.5));
        let mut ws = InferenceWorkspace::new();
        let run = model
            .infer_resilient_with(
                &a_hat,
                &x,
                SpmmStrategy::Hybrid { threads: 2 },
                &RetryPolicy::immediate(1),
                &RunGuard::unbounded(),
                &mut ws,
            )
            .unwrap();
        assert!(run.is_complete());
        assert!(!run.report.degradations.is_empty());
        assert_eq!(run.report.degradations[0].from, "hybrid x2");
        assert_eq!(run.report.degradations[0].to, "vertex-parallel x2");
        assert!(expected.max_abs_diff(ws.output()) < 1e-4);
    }

    #[test]
    fn precision_guard_accepts_every_precision_within_bounds() {
        let (a_hat, x, model) = setup();
        for p in matrix::Precision::all() {
            let mut ws = InferenceWorkspace::new();
            let run = model
                .infer_prec_guarded_with(&a_hat, &x, p, &mut ws)
                .unwrap();
            assert!(
                run.at_requested_precision(),
                "{p} unexpectedly degraded to {}",
                run.used
            );
            assert!(
                run.rel_frobenius <= accuracy_bound(run.used),
                "{p}: accepted error {:.3e} over bound",
                run.rel_frobenius
            );
            assert_eq!(run.report.completed_with.as_deref(), Some(run.used.name()));
        }
    }

    #[test]
    fn rejecting_bound_walks_the_full_precision_chain_to_f32() {
        let (a_hat, x, model) = setup();
        let expected = model.infer_planned(&a_hat, &x).unwrap();
        let mut ws = InferenceWorkspace::new();
        // A bound that accepts only a bitwise-exact match forces every
        // narrow rung to fail, so the run must land on f32.
        let run = model
            .infer_prec_guarded_inner(
                &a_hat,
                &x,
                Precision::Int8,
                |p| if p == Precision::F32 { 0.0 } else { -1.0 },
                &mut ws,
            )
            .unwrap();
        assert_eq!(run.used, Precision::F32);
        assert_eq!(
            run.report.precision_fallback,
            Some((Precision::Int8, Precision::F32))
        );
        // Two guard degradations: int8 → bf16, bf16 → f32.
        assert_eq!(run.report.degradations.len(), 2);
        assert_eq!(run.report.degradations[0].from, "int8");
        assert_eq!(run.report.degradations[0].to, "bf16");
        assert_eq!(run.report.degradations[1].to, "f32");
        assert!(run.report.degraded());
        assert_eq!(run.rel_frobenius, 0.0);
        assert_eq!(expected, *ws.output());
    }

    #[test]
    fn failed_isa_probe_degrades_precision_and_is_reported() {
        let (a_hat, x, model) = setup();
        let _armed =
            fault::arm(FaultConfig::new(3).point("microkernel.probe.int8", FaultKind::Error, 1.0));
        let mut ws = InferenceWorkspace::new();
        let run = model
            .infer_prec_guarded_with(&a_hat, &x, Precision::Int8, &mut ws)
            .unwrap();
        assert_eq!(run.used, Precision::Bf16);
        assert_eq!(
            run.report.precision_fallback,
            Some((Precision::Int8, Precision::Bf16))
        );
        assert!(run
            .report
            .degradations
            .iter()
            .any(|d| d.cause.contains("ISA probe")));
    }

    #[test]
    fn exhausted_chain_surfaces_the_typed_error() {
        let (a_hat, x, model) = setup();
        let _armed = fault::arm(FaultConfig::new(5).point("gcn.layer", FaultKind::Error, 1.0));
        let mut ws = InferenceWorkspace::new();
        let err = model
            .infer_resilient_with(
                &a_hat,
                &x,
                SpmmStrategy::Hybrid { threads: 2 },
                &RetryPolicy::immediate(2),
                &RunGuard::unbounded(),
                &mut ws,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            GcnError::Kernel(MatrixError::Fault { site: "gcn.layer" })
        ));
    }
}
