//! Error type for GCN inference.

use std::error::Error;
use std::fmt;

/// Error produced by GCN model construction or inference.
#[derive(Debug, Clone, PartialEq)]
pub enum GcnError {
    /// The feature matrix's width does not match the model's input dim.
    FeatureDimMismatch {
        /// Model input dimension.
        expected: usize,
        /// Feature matrix width supplied.
        actual: usize,
    },
    /// The feature matrix's height does not match the graph's vertex count.
    VertexCountMismatch {
        /// Graph vertex count.
        graph: usize,
        /// Feature matrix row count.
        features: usize,
    },
    /// A requested target vertex lies outside the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        vertices: usize,
    },
    /// A kernel rejected its operands (wrapped lower-level error).
    Kernel(matrix::MatrixError),
    /// Adjacency normalization failed (wrapped lower-level error).
    Normalize(sparse::SparseError),
}

impl fmt::Display for GcnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcnError::FeatureDimMismatch { expected, actual } => write!(
                f,
                "feature dimension {actual} does not match model input dimension {expected}"
            ),
            GcnError::VertexCountMismatch { graph, features } => write!(
                f,
                "feature matrix has {features} rows but the graph has {graph} vertices"
            ),
            GcnError::VertexOutOfRange { vertex, vertices } => write!(
                f,
                "target vertex {vertex} is out of range for a graph with {vertices} vertices"
            ),
            GcnError::Kernel(e) => write!(f, "kernel error: {e}"),
            GcnError::Normalize(e) => write!(f, "normalization error: {e}"),
        }
    }
}

impl Error for GcnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GcnError::Kernel(e) => Some(e),
            GcnError::Normalize(e) => Some(e),
            _ => None,
        }
    }
}

impl From<matrix::MatrixError> for GcnError {
    fn from(e: matrix::MatrixError) -> Self {
        GcnError::Kernel(e)
    }
}

impl From<sparse::SparseError> for GcnError {
    fn from(e: sparse::SparseError) -> Self {
        GcnError::Normalize(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_kernel_errors_with_source() {
        let inner = matrix::MatrixError::ZeroThreads;
        let err = GcnError::from(inner.clone());
        assert!(err.source().is_some());
        assert!(err.to_string().contains("kernel error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GcnError>();
    }
}
