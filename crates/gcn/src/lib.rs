//! Graph Convolutional Networks (Kipf & Welling) over the workspace kernels.
//!
//! A GCN stacks layers of the form `H_{t+1} = sigma(A_hat * H_t * W_t)`.
//! The paper characterizes a **three-layer** model whose hidden embedding
//! dimension `K` is swept from 8 to 256; [`GcnConfig`] captures exactly
//! those architecture knobs and [`GcnModel`] executes inference with any
//! [`kernels::SpmmStrategy`].
//!
//! # Examples
//!
//! ```
//! use gcn::{GcnConfig, GcnModel};
//! use graph::Graph;
//! use kernels::SpmmStrategy;
//!
//! let g = Graph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//! let config = GcnConfig::paper_model(8, 16, 4);
//! let model = GcnModel::new(&config, 42);
//! let features = g.random_features(8, 7);
//! let out = model.infer(&g, &features, SpmmStrategy::Sequential).unwrap();
//! assert_eq!(out.shape(), (4, 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// End-to-end accuracy harness for narrow-precision inference.
pub mod accuracy;
/// Model hyperparameters ([`GcnConfig`]) and their validation.
pub mod config;
/// Error type unifying graph, matrix, and kernel failures.
pub mod error;
/// The GCN layer stack and full-graph inference entry points.
pub mod model;
/// Guarded (budget/cancel) and fault-tolerant inference entry points.
pub mod resilient;
/// Batched per-vertex inference over gathered k-hop neighbourhoods.
pub mod rows;
/// Neighborhood-sampled mini-batch inference (GraphSAGE-style).
pub mod sampled;
/// Training loop: node classification, optimizers, per-step stats.
pub mod train;

pub use accuracy::{accuracy_bound, AccuracyReport};
pub use config::GcnConfig;
pub use error::GcnError;
pub use model::{GcnLayer, GcnModel, InferenceWorkspace};
pub use resilient::{InferenceRun, PrecisionRun};
pub use rows::{RowsBatchStats, RowsWorkspace};
pub use sampled::{SampledBatch, SamplingScheme};
pub use train::{NodeClassification, OptimizerKind, StepStats, Trainer};
