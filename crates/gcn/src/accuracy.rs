//! End-to-end accuracy harness for narrow-precision inference.
//!
//! Low-precision storage only pays off if the model still produces the
//! right answer, so every precision ships with a documented end-to-end
//! error bound and a harness that measures it: run the same planned
//! inference twice — once in `f32`, once at the narrow precision — and
//! report the max-abs and relative-Frobenius deltas of the final GCN
//! output, alongside both wall-clock times.
//!
//! The bounds in [`accuracy_bound`] are deliberately loose ceilings for a
//! three-layer GCN with `O(1)`-magnitude activations (Glorot weights,
//! unit-range features), not tight error analyses: bf16 keeps 8 mantissa
//! bits (per-value relative error `2^-9`), f16 keeps 10 within a narrow
//! exponent range, and int8 spends its 8 bits on a per-row dynamic range.
//! Errors compound across layers roughly linearly (accumulation stays
//! `f32`, so only storage rounding enters per layer). The same bounds
//! drive the resilient precision guard
//! ([`crate::resilient::PrecisionRun`]).

use crate::error::GcnError;
use crate::model::{GcnModel, InferenceWorkspace};
use matrix::{DenseMatrix, Precision};
use sparse::Csr;
use std::time::Instant;

/// Maximum tolerated end-to-end relative Frobenius error
/// `||out_p - out_f32||_F / ||out_f32||_F` for a GCN inference run at
/// storage precision `p`. `f32` is exact by construction (the `F32` path
/// is the reference itself).
pub fn accuracy_bound(p: Precision) -> f32 {
    match p {
        Precision::F32 => 0.0,
        // 8 mantissa bits, ~3 layers of storage rounding.
        Precision::Bf16 => 2e-2,
        // 10 mantissa bits; activations stay inside f16's exponent range.
        Precision::F16 => 5e-3,
        // Per-row 8-bit quantization of features and per-column weights.
        Precision::Int8 => 1.5e-1,
    }
}

/// Relative Frobenius distance `||got - reference||_F / ||reference||_F`
/// (`0.0` when both are empty; infinite when only the reference is zero).
pub fn rel_frobenius(got: &DenseMatrix, reference: &DenseMatrix) -> f32 {
    let mut diff_sq = 0.0f64;
    let mut ref_sq = 0.0f64;
    for (g, r) in got.as_slice().iter().zip(reference.as_slice()) {
        let d = (g - r) as f64;
        diff_sq += d * d;
        ref_sq += (*r as f64) * (*r as f64);
    }
    if ref_sq == 0.0 {
        if diff_sq == 0.0 {
            0.0
        } else {
            f32::INFINITY
        }
    } else {
        (diff_sq.sqrt() / ref_sq.sqrt()) as f32
    }
}

/// One dataset x precision accuracy measurement: output deltas vs the
/// `f32` reference plus both wall-clock times.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Dataset (or fixture) label.
    pub dataset: String,
    /// Requested storage precision.
    pub requested: Precision,
    /// Precision the plan actually ran at (after the ISA probe).
    pub used: Precision,
    /// `max |out_p - out_f32|` over the final GCN output.
    pub max_abs: f32,
    /// `||out_p - out_f32||_F / ||out_f32||_F`.
    pub rel_frobenius: f32,
    /// Wall-clock seconds of the `f32` reference inference.
    pub f32_secs: f64,
    /// Wall-clock seconds of the narrow-precision inference.
    pub prec_secs: f64,
}

impl AccuracyReport {
    /// Whether the measured error sits inside [`accuracy_bound`] for the
    /// precision that actually ran.
    pub fn within_bound(&self) -> bool {
        self.rel_frobenius <= accuracy_bound(self.used)
    }
}

impl std::fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} {:<5} max_abs={:.3e} rel_frob={:.3e} (bound {:.1e}) f32={:.1}ms prec={:.1}ms",
            self.dataset,
            self.used.name(),
            self.max_abs,
            self.rel_frobenius,
            accuracy_bound(self.used),
            self.f32_secs * 1e3,
            self.prec_secs * 1e3,
        )
    }
}

/// Runs the model end-to-end at `f32` and at `precision` against the same
/// normalized adjacency and features, and reports the output deltas and
/// timings.
///
/// # Errors
///
/// Same conditions as [`GcnModel::infer`].
pub fn evaluate(
    model: &GcnModel,
    a_hat: &Csr,
    features: &DenseMatrix,
    precision: Precision,
    dataset: &str,
) -> Result<AccuracyReport, GcnError> {
    let mut ref_ws = InferenceWorkspace::new();
    let t0 = Instant::now();
    model.infer_planned_with(a_hat, features, &mut ref_ws)?;
    let f32_secs = t0.elapsed().as_secs_f64();

    let mut prec_ws = InferenceWorkspace::new();
    let t1 = Instant::now();
    model.infer_planned_prec_with(a_hat, features, precision, &mut prec_ws)?;
    let prec_secs = t1.elapsed().as_secs_f64();
    let used = prec_ws.plan().map_or(precision, |p| p.precision());

    Ok(AccuracyReport {
        dataset: dataset.to_string(),
        requested: precision,
        used,
        max_abs: prec_ws.output().max_abs_diff(ref_ws.output()),
        rel_frobenius: rel_frobenius(prec_ws.output(), ref_ws.output()),
        f32_secs,
        prec_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcnConfig;
    use graph::rmat::RmatConfig;
    use graph::Graph;

    #[test]
    fn rel_frobenius_basics() {
        let a = DenseMatrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[0.0, 0.0]]).unwrap();
        assert!((rel_frobenius(&a, &a)).abs() < 1e-12);
        // ||a - 0|| / ||0|| is infinite; ||0 - 0|| is zero.
        assert!(rel_frobenius(&a, &b).is_infinite());
        assert_eq!(rel_frobenius(&b, &b), 0.0);
        // ||(3,4)-(0,0)|| / ||(3,4)|| = 1.
        assert!((rel_frobenius(&b, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn f32_report_is_exact_and_within_bound() {
        let g = Graph::rmat(&RmatConfig::power_law(7, 4), 5);
        let model = GcnModel::new(&GcnConfig::paper_model(8, 16, 4), 1);
        let x = g.random_features(8, 2);
        let a_hat = g.normalized_adjacency().unwrap();
        let report = evaluate(&model, &a_hat, &x, Precision::F32, "rmat-7").unwrap();
        assert_eq!(report.max_abs, 0.0);
        assert_eq!(report.rel_frobenius, 0.0);
        assert!(report.within_bound());
    }

    #[test]
    fn every_narrow_precision_is_within_its_documented_bound() {
        let g = Graph::rmat(&RmatConfig::power_law(8, 6), 7);
        let model = GcnModel::new(&GcnConfig::paper_model(16, 32, 8), 3);
        let x = g.random_features(16, 11);
        let a_hat = g.normalized_adjacency().unwrap();
        for p in [Precision::Bf16, Precision::F16, Precision::Int8] {
            let report = evaluate(&model, &a_hat, &x, p, "rmat-8").unwrap();
            assert!(
                report.within_bound(),
                "{p}: rel_frob {:.3e} exceeds bound {:.1e}",
                report.rel_frobenius,
                accuracy_bound(report.used)
            );
            // And the narrow run genuinely differs from f32 (sanity that
            // the quantized path actually ran).
            if report.used.is_narrow() {
                assert!(report.rel_frobenius > 0.0, "{p}: suspiciously exact");
            }
        }
    }
}
