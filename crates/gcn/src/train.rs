//! Full-graph GCN training: softmax cross-entropy, backpropagation, SGD.
//!
//! The paper characterizes inference, but its Discussion section points at
//! training (via clustering/sampling methods) as the natural follow-up.
//! This module implements the reference semi-supervised node-classification
//! setup of Kipf & Welling: forward over `A_hat`, masked softmax
//! cross-entropy on labelled vertices, exact backpropagation through every
//! layer, and SGD updates. Gradients are verified against central finite
//! differences in the tests.

use crate::error::GcnError;
use crate::model::GcnModel;
use graph::Graph;
use kernels::SpmmStrategy;
use matrix::DenseMatrix;
use sparse::Csr;

/// A node-classification training task: integer labels plus a mask of
/// which vertices contribute to the loss.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeClassification {
    /// Class index per vertex (ignored where unmasked).
    pub labels: Vec<usize>,
    /// Which vertices are labelled for training.
    pub train_mask: Vec<bool>,
}

impl NodeClassification {
    /// Builds a task; every vertex with a label is masked in.
    pub fn fully_labelled(labels: Vec<usize>) -> Self {
        let train_mask = vec![true; labels.len()];
        NodeClassification { labels, train_mask }
    }

    /// Number of masked (training) vertices.
    pub fn train_count(&self) -> usize {
        self.train_mask.iter().filter(|&&m| m).count()
    }
}

/// Per-layer tensors cached during the forward pass.
struct LayerCache {
    /// Input activations `H_t`.
    input: DenseMatrix,
    /// Aggregated input `A_hat * H_t`.
    aggregated: DenseMatrix,
    /// Pre-activation `Z_t = A_hat H_t W_t + b_t`.
    pre_activation: DenseMatrix,
}

/// One training step's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Mean cross-entropy over the masked vertices.
    pub loss: f64,
    /// Accuracy over the masked vertices (argmax vs label).
    pub train_accuracy: f64,
}

/// Which update rule the trainer applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent.
    Sgd,
    /// Adam (Kingma & Ba) with the usual bias-corrected moments.
    Adam {
        /// First-moment decay (default 0.9).
        beta1: f32,
        /// Second-moment decay (default 0.999).
        beta2: f32,
        /// Numerical floor (default 1e-8).
        epsilon: f32,
    },
}

impl OptimizerKind {
    /// Adam with the standard hyper-parameters.
    pub fn adam() -> Self {
        OptimizerKind::Adam {
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }
}

/// Per-layer Adam moment buffers.
#[derive(Debug, Clone)]
struct AdamSlot {
    m_w: DenseMatrix,
    v_w: DenseMatrix,
    m_b: Vec<f32>,
    v_b: Vec<f32>,
}

/// Trainer: owns the optimizer configuration and state and runs
/// forward/backward passes against a model.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Learning rate.
    pub learning_rate: f32,
    /// SpMM strategy used by both passes.
    pub strategy: SpmmStrategy,
    /// Update rule.
    pub optimizer: OptimizerKind,
    /// Adam moment state, lazily sized on the first step.
    slots: Vec<AdamSlot>,
    /// Steps taken (Adam bias correction).
    steps: u64,
    /// Reusable weight-gradient buffer: `matmul_at_into` writes `dW` here
    /// every layer of every step instead of allocating a fresh matrix.
    dw: DenseMatrix,
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer::new(0.05, SpmmStrategy::Sequential)
    }
}

impl Trainer {
    /// An SGD trainer.
    pub fn new(learning_rate: f32, strategy: SpmmStrategy) -> Self {
        Trainer {
            learning_rate,
            strategy,
            optimizer: OptimizerKind::Sgd,
            slots: Vec::new(),
            steps: 0,
            dw: DenseMatrix::default(),
        }
    }

    /// An Adam trainer with standard hyper-parameters.
    pub fn adam(learning_rate: f32, strategy: SpmmStrategy) -> Self {
        Trainer {
            optimizer: OptimizerKind::adam(),
            ..Trainer::new(learning_rate, strategy)
        }
    }
}

impl Trainer {
    /// Runs one full-batch training step (forward, loss, backward, SGD),
    /// mutating the model in place.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors; returns
    /// [`GcnError::VertexCountMismatch`] if the task's label vector does
    /// not cover the graph.
    pub fn step(
        &mut self,
        model: &mut GcnModel,
        graph: &Graph,
        features: &DenseMatrix,
        task: &NodeClassification,
    ) -> Result<StepStats, GcnError> {
        let a_hat = graph.normalized_adjacency()?;
        self.step_normalized(model, &a_hat, features, task)
    }

    /// Like [`Trainer::step`] but reuses a pre-normalized adjacency.
    ///
    /// # Errors
    ///
    /// See [`Trainer::step`].
    pub fn step_normalized(
        &mut self,
        model: &mut GcnModel,
        a_hat: &Csr,
        features: &DenseMatrix,
        task: &NodeClassification,
    ) -> Result<StepStats, GcnError> {
        let n = a_hat.nrows();
        if task.labels.len() != n || task.train_mask.len() != n {
            return Err(GcnError::VertexCountMismatch {
                graph: n,
                features: task.labels.len(),
            });
        }

        // ---- Forward with caches (unfused: backward needs A_hat * H). ----
        let mut caches: Vec<LayerCache> = Vec::with_capacity(model.layers().len());
        let mut h = features.clone();
        for layer in model.layers() {
            let aggregated = self.strategy.run(a_hat, &h)?;
            let mut z = aggregated.matmul(&layer.weight)?;
            if let Some(b) = &layer.bias {
                z.add_row_bias(b)?;
            }
            let mut out = z.clone();
            out.apply_activation(layer.activation);
            caches.push(LayerCache {
                input: h,
                aggregated,
                pre_activation: z,
            });
            h = out;
        }

        // ---- Loss and output gradient. ----
        let (loss, accuracy, mut grad) = softmax_cross_entropy(&h, task);

        // ---- Backward + optimizer update. ----
        self.steps += 1;
        if matches!(self.optimizer, OptimizerKind::Adam { .. }) && self.slots.is_empty() {
            self.slots = model
                .layers()
                .iter()
                .map(|l| AdamSlot {
                    m_w: DenseMatrix::zeros(l.weight.rows(), l.weight.cols()),
                    v_w: DenseMatrix::zeros(l.weight.rows(), l.weight.cols()),
                    m_b: vec![0.0; l.weight.cols()],
                    v_b: vec![0.0; l.weight.cols()],
                })
                .collect();
        }
        let n_layers = model.layers().len();
        for (rev_idx, (layer, cache)) in model
            .layers_mut()
            .iter_mut()
            .zip(caches.iter())
            .rev()
            .enumerate()
        {
            let layer_idx = n_layers - 1 - rev_idx;
            // grad is dL/dH_{t+1}; fold in the activation derivative to get
            // dL/dZ_t.
            let mut dz = grad;
            for (g, &z) in dz
                .as_mut_slice()
                .iter_mut()
                .zip(cache.pre_activation.as_slice())
            {
                *g *= layer.activation.derivative(z);
            }

            // dW = (A_hat H)^T dZ ; db = column sums of dZ ;
            // dH = A_hat^T (dZ W^T) — A_hat is symmetric, so A_hat works.
            // The trainer-owned `dw` buffer is taken out for the borrow
            // checker's sake (`self.slots` is mutably borrowed below) and
            // restored after the update, so its capacity is reused across
            // layers and steps.
            let mut dw = std::mem::take(&mut self.dw);
            matrix::gemm::matmul_at_into(&cache.aggregated, &dz, &mut dw)?;
            let db = dz.column_sums();
            let dh = self
                .strategy
                .run(a_hat, &dz.matmul(&layer.weight.transpose())?)?;

            match self.optimizer {
                OptimizerKind::Sgd => {
                    layer.weight.add_scaled(&dw, -self.learning_rate)?;
                    if let Some(b) = &mut layer.bias {
                        for (bi, gi) in b.iter_mut().zip(&db) {
                            *bi -= self.learning_rate * gi;
                        }
                    }
                }
                OptimizerKind::Adam {
                    beta1,
                    beta2,
                    epsilon,
                } => {
                    let slot = &mut self.slots[layer_idx];
                    let t = self.steps as f32;
                    let bc1 = 1.0 - beta1.powf(t);
                    let bc2 = 1.0 - beta2.powf(t);
                    for ((w, &g), (m, v)) in layer
                        .weight
                        .as_mut_slice()
                        .iter_mut()
                        .zip(dw.as_slice())
                        .zip(
                            slot.m_w
                                .as_mut_slice()
                                .iter_mut()
                                .zip(slot.v_w.as_mut_slice()),
                        )
                    {
                        *m = beta1 * *m + (1.0 - beta1) * g;
                        *v = beta2 * *v + (1.0 - beta2) * g * g;
                        *w -= self.learning_rate * (*m / bc1) / ((*v / bc2).sqrt() + epsilon);
                    }
                    if let Some(b) = &mut layer.bias {
                        for ((bi, &g), (m, v)) in b
                            .iter_mut()
                            .zip(&db)
                            .zip(slot.m_b.iter_mut().zip(slot.v_b.iter_mut()))
                        {
                            *m = beta1 * *m + (1.0 - beta1) * g;
                            *v = beta2 * *v + (1.0 - beta2) * g * g;
                            *bi -= self.learning_rate * (*m / bc1) / ((*v / bc2).sqrt() + epsilon);
                        }
                    }
                }
            }
            self.dw = dw;
            let _ = &cache.input;
            grad = dh;
        }

        Ok(StepStats {
            loss,
            train_accuracy: accuracy,
        })
    }

    /// Trains for `epochs` full-batch steps; returns per-epoch stats.
    ///
    /// # Errors
    ///
    /// See [`Trainer::step`].
    pub fn fit(
        &mut self,
        model: &mut GcnModel,
        graph: &Graph,
        features: &DenseMatrix,
        task: &NodeClassification,
        epochs: usize,
    ) -> Result<Vec<StepStats>, GcnError> {
        let a_hat = graph.normalized_adjacency()?;
        let mut stats = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            stats.push(self.step_normalized(model, &a_hat, features, task)?);
        }
        Ok(stats)
    }
}

/// Masked mean softmax cross-entropy: returns `(loss, accuracy, dL/dlogits)`
/// where the gradient is already divided by the masked count.
pub fn softmax_cross_entropy(
    logits: &DenseMatrix,
    task: &NodeClassification,
) -> (f64, f64, DenseMatrix) {
    let classes = logits.cols();
    let count = task.train_count().max(1) as f64;
    let mut grad = DenseMatrix::zeros(logits.rows(), classes);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for v in 0..logits.rows() {
        if !task.train_mask[v] {
            continue;
        }
        let row = logits.row(v);
        let label = task.labels[v];
        debug_assert!(label < classes, "label out of range");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f64> = row.iter().map(|&x| ((x - max) as f64).exp()).collect();
        let denom: f64 = exp.iter().sum();
        loss -= (exp[label] / denom).ln();
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        if argmax == label {
            correct += 1;
        }
        let grow = grad.row_mut(v);
        for j in 0..classes {
            let p = exp[j] / denom;
            grow[j] = ((p - if j == label { 1.0 } else { 0.0 }) / count) as f32;
        }
    }
    (loss / count, correct as f64 / count, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcnConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A 2-community synthetic task: two dense clusters joined by a few
    /// edges; the label is the community. Linearly separable through graph
    /// structure, so a small GCN must overfit it.
    fn community_task(seed: u64) -> (Graph, DenseMatrix, NodeClassification) {
        let n = 48usize;
        let half = n / 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for _ in 0..n * 4 {
            let (a, b) = (rng.gen_range(0..half), rng.gen_range(0..half));
            edges.push((a, b));
            edges.push((a + half, b + half));
        }
        edges.push((0, half)); // one bridge
        let g = Graph::from_undirected_edges(n, &edges);
        // Noisy feature: community mean +/- noise.
        let mut x = DenseMatrix::zeros(n, 4);
        for v in 0..n {
            let sign = if v < half { 1.0 } else { -1.0 };
            for j in 0..4 {
                x[(v, j)] = sign * 0.3 + rng.gen_range(-0.5..0.5);
            }
        }
        let labels: Vec<usize> = (0..n).map(|v| usize::from(v >= half)).collect();
        (g, x, NodeClassification::fully_labelled(labels))
    }

    #[test]
    fn loss_decreases_and_task_is_learned() {
        let (g, x, task) = community_task(3);
        let mut model = GcnModel::new(&GcnConfig::from_dims(vec![4, 16, 2]), 7);
        let mut trainer = Trainer::new(0.3, SpmmStrategy::Sequential);
        let stats = trainer.fit(&mut model, &g, &x, &task, 60).unwrap();
        let first = stats.first().unwrap();
        let last = stats.last().unwrap();
        assert!(
            last.loss < first.loss * 0.5,
            "loss {:.3} -> {:.3}",
            first.loss,
            last.loss
        );
        assert!(
            last.train_accuracy > 0.9,
            "accuracy {:.2}",
            last.train_accuracy
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (g, x, task) = community_task(5);
        let a_hat = g.normalized_adjacency().unwrap();
        let config = GcnConfig::from_dims(vec![4, 6, 2]);
        let mut trainer = Trainer::new(1.0, SpmmStrategy::Sequential); // step = -gradient

        // Analytic gradient = (w_before - w_after) / lr.
        let model0 = GcnModel::new(&config, 11);
        let mut stepped = model0.clone();
        trainer
            .step_normalized(&mut stepped, &a_hat, &x, &task)
            .unwrap();

        let loss_of = |m: &GcnModel| {
            let out = m
                .infer_normalized(&a_hat, &x, SpmmStrategy::Sequential)
                .unwrap();
            softmax_cross_entropy(&out, &task).0
        };

        // Probe a handful of weights in every layer with central differences.
        let eps = 2e-3f32;
        for layer_idx in 0..config.num_layers() {
            for &(i, j) in &[(0usize, 0usize), (1, 1), (3, 0)] {
                if i >= model0.layers()[layer_idx].weight.rows()
                    || j >= model0.layers()[layer_idx].weight.cols()
                {
                    continue;
                }
                let analytic = (model0.layers()[layer_idx].weight[(i, j)]
                    - stepped.layers()[layer_idx].weight[(i, j)])
                    / trainer.learning_rate;

                let mut plus = model0.clone();
                plus.layers_mut()[layer_idx].weight[(i, j)] += eps;
                let mut minus = model0.clone();
                minus.layers_mut()[layer_idx].weight[(i, j)] -= eps;
                let numeric = ((loss_of(&plus) - loss_of(&minus)) / (2.0 * eps as f64)) as f32;

                let denom = numeric.abs().max(analytic.abs()).max(1e-3);
                assert!(
                    (numeric - analytic).abs() / denom < 0.15,
                    "layer {layer_idx} w[{i},{j}]: numeric {numeric:.5} vs analytic {analytic:.5}"
                );
            }
        }
    }

    #[test]
    fn masked_vertices_do_not_leak_gradient() {
        // With an all-false mask the loss is zero-ish and weights must not
        // move.
        let (g, x, mut task) = community_task(9);
        task.train_mask = vec![false; task.labels.len()];
        task.train_mask[0] = true; // keep one to avoid a degenerate count
        let mut model = GcnModel::new(&GcnConfig::from_dims(vec![4, 4, 2]), 1);
        let before = model.clone();
        let mut trainer = Trainer::default();
        let stats = trainer.step(&mut model, &g, &x, &task).unwrap();
        assert!(stats.loss.is_finite());
        // Only gradients flowing from vertex 0's receptive field moved.
        let moved = model
            .layers()
            .iter()
            .zip(before.layers())
            .any(|(a, b)| a.weight != b.weight);
        assert!(moved, "at least the masked vertex must contribute");
    }

    #[test]
    fn parallel_training_matches_sequential() {
        let (g, x, task) = community_task(13);
        let a_hat = g.normalized_adjacency().unwrap();
        let mut seq_model = GcnModel::new(&GcnConfig::from_dims(vec![4, 8, 2]), 2);
        let mut par_model = seq_model.clone();
        let mut seq = Trainer::new(0.1, SpmmStrategy::Sequential);
        let mut par = Trainer::new(0.1, SpmmStrategy::VertexParallel { threads: 4 });
        for _ in 0..3 {
            seq.step_normalized(&mut seq_model, &a_hat, &x, &task)
                .unwrap();
            par.step_normalized(&mut par_model, &a_hat, &x, &task)
                .unwrap();
        }
        let diff = seq_model.layers()[0]
            .weight
            .max_abs_diff(&par_model.layers()[0].weight);
        assert!(diff < 1e-3, "strategies diverged by {diff}");
    }

    #[test]
    fn adam_learns_the_community_task() {
        let (g, x, task) = community_task(21);
        let mut model = GcnModel::new(&GcnConfig::from_dims(vec![4, 16, 2]), 7);
        let mut trainer = Trainer::adam(0.05, SpmmStrategy::Sequential);
        let stats = trainer.fit(&mut model, &g, &x, &task, 40).unwrap();
        assert!(
            stats.last().unwrap().loss < stats.first().unwrap().loss * 0.5,
            "adam loss {:.3} -> {:.3}",
            stats.first().unwrap().loss,
            stats.last().unwrap().loss
        );
    }

    #[test]
    fn adam_with_zero_lr_freezes_weights() {
        let (g, x, task) = community_task(23);
        let mut model = GcnModel::new(&GcnConfig::from_dims(vec![4, 8, 2]), 2);
        let before = model.clone();
        let mut trainer = Trainer::adam(0.0, SpmmStrategy::Sequential);
        trainer.step(&mut model, &g, &x, &task).unwrap();
        assert_eq!(model, before);
    }

    #[test]
    fn adam_takes_bounded_first_steps() {
        // Adam's bias-corrected first update has magnitude ~lr per weight,
        // independent of the raw gradient scale.
        let (g, x, task) = community_task(29);
        let mut model = GcnModel::new(&GcnConfig::from_dims(vec![4, 8, 2]), 3);
        let before = model.clone();
        let lr = 0.01;
        let mut trainer = Trainer::adam(lr, SpmmStrategy::Sequential);
        trainer.step(&mut model, &g, &x, &task).unwrap();
        let max_delta = model.layers()[0]
            .weight
            .max_abs_diff(&before.layers()[0].weight);
        assert!(max_delta <= lr * 1.5, "first Adam step moved {max_delta}");
    }

    #[test]
    fn softmax_gradient_sums_to_zero_per_labelled_row() {
        let logits = DenseMatrix::from_rows(&[&[2.0, -1.0, 0.5], &[0.0, 0.0, 0.0]]).unwrap();
        let task = NodeClassification {
            labels: vec![0, 2],
            train_mask: vec![true, true],
        };
        let (_, _, grad) = softmax_cross_entropy(&logits, &task);
        for v in 0..2 {
            let s: f32 = grad.row(v).iter().sum();
            assert!(s.abs() < 1e-6, "row {v} gradient sums to {s}");
        }
    }

    #[test]
    fn activation_identity_matches_relu_free_model() {
        // Sanity: training with Identity hidden activations reduces to a
        // linear model; loss still decreases.
        let (g, x, task) = community_task(17);
        let mut config = GcnConfig::from_dims(vec![4, 8, 2]);
        config.hidden_activation = matrix::Activation::Identity;
        let mut model = GcnModel::new(&config, 3);
        let mut trainer = Trainer::new(0.2, SpmmStrategy::Sequential);
        let stats = trainer.fit(&mut model, &g, &x, &task, 30).unwrap();
        assert!(stats.last().unwrap().loss < stats.first().unwrap().loss);
    }
}
