//! GCN architecture configuration.

use matrix::Activation;
use serde::{Deserialize, Serialize};

/// Architecture of a GCN model: the per-layer feature dimensions and the
/// hidden activation.
///
/// The dimension list has one more entry than there are layers: layer `t`
/// maps `dims[t] -> dims[t+1]`.
///
/// # Examples
///
/// ```
/// use gcn::GcnConfig;
///
/// // The paper's 3-layer model: input 128, hidden K = 64, output 40.
/// let c = GcnConfig::paper_model(128, 64, 40);
/// assert_eq!(c.num_layers(), 3);
/// assert_eq!(c.dims, vec![128, 64, 64, 40]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnConfig {
    /// Feature dimension at each layer boundary (`num_layers + 1` entries).
    pub dims: Vec<usize>,
    /// Activation applied after every hidden layer (the output layer is
    /// always [`Activation::Identity`]).
    pub hidden_activation: Activation,
    /// Whether layers carry a bias vector.
    pub bias: bool,
}

impl GcnConfig {
    /// Builds a config from an explicit dimension list.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given (no layers).
    pub fn from_dims(dims: Vec<usize>) -> Self {
        assert!(dims.len() >= 2, "a GCN needs at least one layer");
        GcnConfig {
            dims,
            hidden_activation: Activation::Relu,
            bias: true,
        }
    }

    /// The paper's three-layer model: `input -> K -> K -> output` with ReLU
    /// hidden activations. `hidden` is the embedding dimension the paper
    /// sweeps from 8 to 256.
    pub fn paper_model(input: usize, hidden: usize, output: usize) -> Self {
        GcnConfig::from_dims(vec![input, hidden, hidden, output])
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        *self.dims.last().expect("dims is non-empty")
    }

    /// Dimensions of layer `t` as `(in, out)`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= num_layers()`.
    pub fn layer_dims(&self, t: usize) -> (usize, usize) {
        (self.dims[t], self.dims[t + 1])
    }

    /// Total number of weight parameters across all layers (excluding bias).
    pub fn num_parameters(&self) -> usize {
        (0..self.num_layers())
            .map(|t| {
                let (i, o) = self.layer_dims(t);
                i * o + if self.bias { o } else { 0 }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_is_three_layers() {
        let c = GcnConfig::paper_model(100, 256, 47);
        assert_eq!(c.num_layers(), 3);
        assert_eq!(c.input_dim(), 100);
        assert_eq!(c.output_dim(), 47);
        assert_eq!(c.layer_dims(1), (256, 256));
    }

    #[test]
    fn parameter_count_includes_bias() {
        let mut c = GcnConfig::from_dims(vec![4, 3, 2]);
        assert_eq!(c.num_parameters(), 4 * 3 + 3 + 3 * 2 + 2);
        c.bias = false;
        assert_eq!(c.num_parameters(), 4 * 3 + 3 * 2);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn single_dim_is_rejected() {
        GcnConfig::from_dims(vec![8]);
    }
}
