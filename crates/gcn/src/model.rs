//! The GCN model: layers, construction, and inference.

use crate::config::GcnConfig;
use crate::error::GcnError;
use graph::Graph;
use kernels::fused::{gcn_layer_fused_into, gcn_layer_planned_into, gcn_layer_planned_prec_into};
use kernels::{SpmmPlan, SpmmStrategy};
use matrix::{Activation, DenseMatrix, Precision, QuantMatrix, WeightInit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparse::Csr;

/// Reusable buffers for [`GcnModel::infer_normalized_with`]: two ping-pong
/// activation matrices plus the fused layer's intermediate. After the first
/// inference call sizes them, subsequent calls on same-shaped inputs perform
/// no output-sized allocation — each layer writes into the spare buffer and
/// the pair is swapped, instead of allocating a fresh activation matrix per
/// layer.
///
/// The workspace also caches one [`SpmmPlan`] per adjacency: the first
/// planned inference pays the degree scan, NNZ partition, and strategy
/// selection once, and every later layer / epoch / call against the same
/// graph reuses the plan (a fingerprint check, `O(1)`) instead of
/// re-deriving statistics per SpMM the way `SpmmStrategy::Auto` does.
#[derive(Debug, Clone, Default)]
pub struct InferenceWorkspace {
    /// Current activations; holds the model output after inference.
    h: DenseMatrix,
    /// Spare activation buffer written by the next layer.
    next: DenseMatrix,
    /// Intermediate product inside the fused layer.
    mid: DenseMatrix,
    /// Cached execution plan, keyed by the adjacency's structural
    /// fingerprint.
    plan: Option<SpmmPlan>,
    /// Narrow-storage staging buffer for precision-planned inference: each
    /// layer encodes its SpMM feature operand here (bf16 / f16 / int8) and
    /// the buffer is reused across layers and calls.
    qbuf: QuantMatrix,
}

impl InferenceWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// The activations produced by the most recent inference call.
    pub fn output(&self) -> &DenseMatrix {
        &self.h
    }

    /// Mutable access to the output/activation buffer, for entry points
    /// that seed it with the input features before the layer loop.
    pub fn output_mut(&mut self) -> &mut DenseMatrix {
        &mut self.h
    }

    /// Splits the workspace into its three layer-loop buffers:
    /// `(current activations, spare output, fused intermediate)`.
    pub fn buffers_mut(&mut self) -> (&mut DenseMatrix, &mut DenseMatrix, &mut DenseMatrix) {
        (&mut self.h, &mut self.next, &mut self.mid)
    }

    /// Promotes the spare buffer written by the last layer to be the
    /// current activations (the ping-pong swap).
    pub fn swap_output(&mut self) {
        std::mem::swap(&mut self.h, &mut self.next);
    }

    /// The cached execution plan, if a planned inference has run.
    pub fn plan(&self) -> Option<&SpmmPlan> {
        self.plan.as_ref()
    }

    /// Installs `plan` as the cached execution plan. The planned inference
    /// entry points keep any installed plan whose fingerprint matches the
    /// adjacency, so tests and the sharded runner use this to pin a
    /// machine-independent plan (e.g. width 1 → always sequential) before
    /// calling [`GcnModel::infer_planned_with`].
    pub fn install_plan(&mut self, plan: SpmmPlan) {
        self.plan = Some(plan);
    }

    /// Returns the cached plan for `a_hat`, building (and caching) a fresh
    /// one if the workspace holds no plan or a plan for a different graph.
    pub fn plan_for(&mut self, a_hat: &Csr, k: usize) -> &SpmmPlan {
        if !self.plan.as_ref().is_some_and(|p| p.matches(a_hat)) {
            self.plan = Some(SpmmPlan::new(a_hat, k));
        }
        self.plan.as_ref().expect("plan populated above")
    }
}

/// One GCN layer: a weight matrix, an optional bias, and an activation.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnLayer {
    /// Weight matrix `W_t` of shape `(in_dim, out_dim)`.
    pub weight: DenseMatrix,
    /// Optional bias of length `out_dim`.
    pub bias: Option<Vec<f32>>,
    /// Activation applied after the update.
    pub activation: Activation,
}

impl GcnLayer {
    /// Input feature dimension of this layer.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output feature dimension of this layer.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }
}

/// A multi-layer GCN model with learned (here: randomly initialized)
/// weights, executing inference over any [`SpmmStrategy`].
///
/// # Examples
///
/// ```
/// use gcn::{GcnConfig, GcnModel};
///
/// let model = GcnModel::new(&GcnConfig::paper_model(16, 32, 4), 0);
/// assert_eq!(model.layers().len(), 3);
/// assert_eq!(model.layers()[0].weight.shape(), (16, 32));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GcnModel {
    layers: Vec<GcnLayer>,
}

impl GcnModel {
    /// Builds a model with Glorot-initialized weights, seeded for
    /// reproducibility.
    pub fn new(config: &GcnConfig, seed: u64) -> Self {
        Self::with_init(config, WeightInit::Glorot, seed)
    }

    /// Builds a model with an explicit weight-initialization scheme.
    pub fn with_init(config: &GcnConfig, init: WeightInit, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.num_layers();
        let layers = (0..n)
            .map(|t| {
                let (i, o) = config.layer_dims(t);
                GcnLayer {
                    weight: init.build(i, o, &mut rng),
                    bias: config.bias.then(|| vec![0.0; o]),
                    activation: if t + 1 == n {
                        Activation::Identity
                    } else {
                        config.hidden_activation
                    },
                }
            })
            .collect();
        GcnModel { layers }
    }

    /// The layers, in execution order.
    pub fn layers(&self) -> &[GcnLayer] {
        &self.layers
    }

    /// Mutable access to the layers (for tests that pin weights).
    pub fn layers_mut(&mut self) -> &mut [GcnLayer] {
        &mut self.layers
    }

    /// Input feature dimension expected by the first layer.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, GcnLayer::in_dim)
    }

    /// Runs full-graph inference: normalizes the adjacency and applies every
    /// layer with the given SpMM strategy.
    ///
    /// # Errors
    ///
    /// Returns [`GcnError::FeatureDimMismatch`] / [`GcnError::VertexCountMismatch`]
    /// for malformed inputs, and propagates kernel errors.
    pub fn infer(
        &self,
        graph: &Graph,
        features: &DenseMatrix,
        strategy: SpmmStrategy,
    ) -> Result<DenseMatrix, GcnError> {
        let a_hat = graph.normalized_adjacency()?;
        self.infer_normalized(&a_hat, features, strategy)
    }

    /// Runs inference against a pre-normalized adjacency matrix. Use this
    /// when amortizing normalization across many inference calls.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`].
    pub fn infer_normalized(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        strategy: SpmmStrategy,
    ) -> Result<DenseMatrix, GcnError> {
        let mut workspace = InferenceWorkspace::new();
        self.infer_normalized_with(a_hat, features, strategy, &mut workspace)?;
        Ok(workspace.h)
    }

    /// [`GcnModel::infer_normalized`] running entirely inside a caller-owned
    /// [`InferenceWorkspace`]. The output lands in the workspace (also
    /// returned as a reference); repeated calls on same-shaped inputs reuse
    /// the workspace buffers instead of allocating per layer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`].
    pub fn infer_normalized_with<'w>(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        strategy: SpmmStrategy,
        workspace: &'w mut InferenceWorkspace,
    ) -> Result<&'w DenseMatrix, GcnError> {
        if features.cols() != self.input_dim() {
            return Err(GcnError::FeatureDimMismatch {
                expected: self.input_dim(),
                actual: features.cols(),
            });
        }
        if features.rows() != a_hat.nrows() {
            return Err(GcnError::VertexCountMismatch {
                graph: a_hat.nrows(),
                features: features.rows(),
            });
        }
        workspace.h.copy_from(features);
        for layer in &self.layers {
            gcn_layer_fused_into(
                a_hat,
                &workspace.h,
                &layer.weight,
                layer.bias.as_deref(),
                layer.activation,
                strategy,
                &mut workspace.mid,
                &mut workspace.next,
            )?;
            std::mem::swap(&mut workspace.h, &mut workspace.next);
        }
        Ok(&workspace.h)
    }

    /// Runs inference against a pre-normalized adjacency through a cached
    /// [`SpmmPlan`], building the plan on first use.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`].
    pub fn infer_planned(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
    ) -> Result<DenseMatrix, GcnError> {
        let mut workspace = InferenceWorkspace::new();
        self.infer_planned_with(a_hat, features, &mut workspace)?;
        Ok(workspace.h)
    }

    /// [`GcnModel::infer_planned`] running entirely inside a caller-owned
    /// [`InferenceWorkspace`]. The workspace caches the [`SpmmPlan`] next to
    /// the activation buffers: the first call against a graph pays the degree
    /// scan and NNZ-balanced partition once, and every subsequent layer and
    /// call reuses them after an `O(1)` fingerprint check. Per layer only the
    /// strategy *resolution* (a handful of comparisons against the cached
    /// statistics) runs, so layers with different feature widths still pick
    /// the right kernel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`].
    pub fn infer_planned_with<'w>(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        workspace: &'w mut InferenceWorkspace,
    ) -> Result<&'w DenseMatrix, GcnError> {
        if features.cols() != self.input_dim() {
            return Err(GcnError::FeatureDimMismatch {
                expected: self.input_dim(),
                actual: features.cols(),
            });
        }
        if features.rows() != a_hat.nrows() {
            return Err(GcnError::VertexCountMismatch {
                graph: a_hat.nrows(),
                features: features.rows(),
            });
        }
        if !workspace.plan.as_ref().is_some_and(|p| p.matches(a_hat)) {
            workspace.plan = Some(SpmmPlan::new(a_hat, features.cols()));
        }
        let InferenceWorkspace {
            h, next, mid, plan, ..
        } = workspace;
        let plan = plan.as_ref().expect("plan populated above");
        h.copy_from(features);
        for layer in &self.layers {
            gcn_layer_planned_into(
                a_hat,
                h,
                &layer.weight,
                layer.bias.as_deref(),
                layer.activation,
                plan,
                mid,
                next,
            )?;
            std::mem::swap(h, next);
        }
        Ok(&workspace.h)
    }

    /// Runs planned inference at a narrow storage precision, building (and
    /// caching) a precision-aware plan on first use.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`].
    pub fn infer_planned_prec(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        precision: Precision,
    ) -> Result<DenseMatrix, GcnError> {
        let mut workspace = InferenceWorkspace::new();
        self.infer_planned_prec_with(a_hat, features, precision, &mut workspace)?;
        Ok(workspace.h)
    }

    /// [`GcnModel::infer_planned_with`] at a chosen storage precision:
    /// every layer stores its SpMM feature operand and packed GEMM panels
    /// at `precision` (bf16 / f16 / int8) while accumulating in `f32`.
    ///
    /// The workspace caches one precision-aware [`SpmmPlan`]; the plan
    /// probes the requested precision against the micro-kernel dispatch at
    /// build time and silently downgrades along [`Precision::fallback`] if
    /// the ISA probe fails — inspect `workspace.plan()` for the recorded
    /// downgrade. [`Precision::F32`] makes this identical to
    /// [`GcnModel::infer_planned_with`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`].
    pub fn infer_planned_prec_with<'w>(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        precision: Precision,
        workspace: &'w mut InferenceWorkspace,
    ) -> Result<&'w DenseMatrix, GcnError> {
        if features.cols() != self.input_dim() {
            return Err(GcnError::FeatureDimMismatch {
                expected: self.input_dim(),
                actual: features.cols(),
            });
        }
        if features.rows() != a_hat.nrows() {
            return Err(GcnError::VertexCountMismatch {
                graph: a_hat.nrows(),
                features: features.rows(),
            });
        }
        // Cache key is the *requested* precision: a plan whose ISA probe
        // downgraded (say int8 → bf16) still satisfies later int8 requests
        // without re-probing on every call.
        let requested_of = |p: &SpmmPlan| p.precision_fallback().map_or(p.precision(), |(r, _)| r);
        if !workspace
            .plan
            .as_ref()
            .is_some_and(|p| p.matches(a_hat) && requested_of(p) == precision)
        {
            workspace.plan = Some(SpmmPlan::with_precision(a_hat, features.cols(), precision));
        }
        let InferenceWorkspace {
            h,
            next,
            mid,
            plan,
            qbuf,
        } = workspace;
        let plan = plan.as_ref().expect("plan populated above");
        h.copy_from(features);
        for layer in &self.layers {
            gcn_layer_planned_prec_into(
                a_hat,
                h,
                &layer.weight,
                layer.bias.as_deref(),
                layer.activation,
                plan,
                qbuf,
                mid,
                next,
            )?;
            std::mem::swap(h, next);
        }
        Ok(&workspace.h)
    }

    /// Reference inference: unfused, sequential, aggregation always first.
    /// Exists purely as an oracle for tests.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`].
    pub fn infer_reference(
        &self,
        graph: &Graph,
        features: &DenseMatrix,
    ) -> Result<DenseMatrix, GcnError> {
        let a_hat = graph.normalized_adjacency()?;
        let mut h = features.clone();
        for layer in &self.layers {
            let agg = kernels::spmm::spmm_sequential(&a_hat, &h)?;
            let mut upd = matrix::gemm::matmul_naive(&agg, &layer.weight)?;
            if let Some(b) = &layer.bias {
                upd.add_row_bias(b)?;
            }
            upd.apply_activation(layer.activation);
            h = upd;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::rmat::RmatConfig;

    fn small_graph() -> Graph {
        Graph::rmat(&RmatConfig::power_law(6, 4), 11)
    }

    #[test]
    fn inference_shapes_follow_config() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(12, 24, 5), 1);
        let x = g.random_features(12, 2);
        let out = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
        assert_eq!(out.shape(), (g.vertices(), 5));
        assert!(out.all_finite());
    }

    #[test]
    fn fused_inference_matches_reference_for_all_strategies() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(8, 16, 4), 3);
        let x = g.random_features(8, 4);
        let reference = model.infer_reference(&g, &x).unwrap();
        for strategy in [
            SpmmStrategy::Sequential,
            SpmmStrategy::VertexParallel { threads: 4 },
            SpmmStrategy::EdgeParallel { threads: 4 },
        ] {
            let got = model.infer(&g, &x, strategy).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-3,
                "strategy {strategy} diverged by {}",
                reference.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn wrong_feature_dim_is_rejected() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(8, 16, 4), 3);
        let x = g.random_features(9, 4);
        assert!(matches!(
            model.infer(&g, &x, SpmmStrategy::Sequential),
            Err(GcnError::FeatureDimMismatch {
                expected: 8,
                actual: 9
            })
        ));
    }

    #[test]
    fn wrong_vertex_count_is_rejected() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(8, 16, 4), 3);
        let x = DenseMatrix::zeros(g.vertices() + 1, 8);
        assert!(matches!(
            model.infer(&g, &x, SpmmStrategy::Sequential),
            Err(GcnError::VertexCountMismatch { .. })
        ));
    }

    #[test]
    fn identity_weights_propagate_neighbourhood_means() {
        // With identity weights, no bias and identity activations, one layer
        // computes exactly A_hat * X.
        let g = Graph::from_undirected_edges(2, &[(0, 1)]);
        let mut model = GcnModel::new(&GcnConfig::from_dims(vec![2, 2]), 0);
        model.layers_mut()[0].weight = DenseMatrix::identity(2);
        model.layers_mut()[0].bias = None;
        model.layers_mut()[0].activation = Activation::Identity;
        let x = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let out = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
        // A_hat for an edge graph with self loops: all entries 1/2.
        for v in out.as_slice() {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn normalized_reuse_matches_fresh_normalization() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(8, 8, 8), 5);
        let x = g.random_features(8, 6);
        let a_hat = g.normalized_adjacency().unwrap();
        let a = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
        let b = model
            .infer_normalized(&a_hat, &x, SpmmStrategy::Sequential)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn planned_inference_matches_reference() {
        let g = Graph::rmat(&RmatConfig::power_law(9, 8), 23);
        let model = GcnModel::new(&GcnConfig::paper_model(16, 32, 8), 9);
        let x = g.random_features(16, 7);
        let reference = model.infer_reference(&g, &x).unwrap();
        let a_hat = g.normalized_adjacency().unwrap();
        let planned = model.infer_planned(&a_hat, &x).unwrap();
        assert!(
            reference.max_abs_diff(&planned) < 1e-3,
            "planned inference diverged by {}",
            reference.max_abs_diff(&planned)
        );
    }

    #[test]
    fn workspace_reuses_plan_across_calls() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(8, 16, 4), 3);
        let x = g.random_features(8, 4);
        let a_hat = g.normalized_adjacency().unwrap();
        let mut ws = InferenceWorkspace::new();
        assert!(ws.plan().is_none());
        model.infer_planned_with(&a_hat, &x, &mut ws).unwrap();
        let fingerprint = ws.plan().expect("plan cached").fingerprint_value();
        model.infer_planned_with(&a_hat, &x, &mut ws).unwrap();
        assert_eq!(
            ws.plan().expect("plan retained").fingerprint_value(),
            fingerprint
        );
        // A different graph invalidates the cache.
        let g2 = Graph::rmat(&RmatConfig::power_law(7, 4), 99);
        let a2 = g2.normalized_adjacency().unwrap();
        let x2 = g2.random_features(8, 4);
        model.infer_planned_with(&a2, &x2, &mut ws).unwrap();
        assert!(ws.plan().expect("plan rebuilt").matches(&a2));
        assert!(!ws.plan().expect("plan rebuilt").matches(&a_hat));
    }

    #[test]
    fn planned_with_matches_auto_strategy() {
        let g = Graph::rmat(&RmatConfig::power_law(8, 6), 41);
        let model = GcnModel::new(&GcnConfig::paper_model(12, 12, 12), 2);
        let x = g.random_features(12, 5);
        let a_hat = g.normalized_adjacency().unwrap();
        let auto = model
            .infer_normalized(&a_hat, &x, SpmmStrategy::Auto)
            .unwrap();
        let mut ws = InferenceWorkspace::new();
        let planned = model.infer_planned_with(&a_hat, &x, &mut ws).unwrap();
        assert!(auto.max_abs_diff(planned) < 1e-3);
    }

    #[test]
    fn seeded_models_are_reproducible() {
        let c = GcnConfig::paper_model(8, 8, 2);
        assert_eq!(GcnModel::new(&c, 7), GcnModel::new(&c, 7));
        assert_ne!(GcnModel::new(&c, 7), GcnModel::new(&c, 8));
    }
}
