//! The GCN model: layers, construction, and inference.

use crate::config::GcnConfig;
use crate::error::GcnError;
use graph::Graph;
use kernels::fused::gcn_layer_fused_into;
use kernels::SpmmStrategy;
use matrix::{Activation, DenseMatrix, WeightInit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparse::Csr;

/// Reusable buffers for [`GcnModel::infer_normalized_with`]: two ping-pong
/// activation matrices plus the fused layer's intermediate. After the first
/// inference call sizes them, subsequent calls on same-shaped inputs perform
/// no output-sized allocation — each layer writes into the spare buffer and
/// the pair is swapped, instead of allocating a fresh activation matrix per
/// layer.
#[derive(Debug, Clone, Default)]
pub struct InferenceWorkspace {
    /// Current activations; holds the model output after inference.
    h: DenseMatrix,
    /// Spare activation buffer written by the next layer.
    next: DenseMatrix,
    /// Intermediate product inside the fused layer.
    mid: DenseMatrix,
}

impl InferenceWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// The activations produced by the most recent inference call.
    pub fn output(&self) -> &DenseMatrix {
        &self.h
    }
}

/// One GCN layer: a weight matrix, an optional bias, and an activation.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnLayer {
    /// Weight matrix `W_t` of shape `(in_dim, out_dim)`.
    pub weight: DenseMatrix,
    /// Optional bias of length `out_dim`.
    pub bias: Option<Vec<f32>>,
    /// Activation applied after the update.
    pub activation: Activation,
}

impl GcnLayer {
    /// Input feature dimension of this layer.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output feature dimension of this layer.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }
}

/// A multi-layer GCN model with learned (here: randomly initialized)
/// weights, executing inference over any [`SpmmStrategy`].
///
/// # Examples
///
/// ```
/// use gcn::{GcnConfig, GcnModel};
///
/// let model = GcnModel::new(&GcnConfig::paper_model(16, 32, 4), 0);
/// assert_eq!(model.layers().len(), 3);
/// assert_eq!(model.layers()[0].weight.shape(), (16, 32));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GcnModel {
    layers: Vec<GcnLayer>,
}

impl GcnModel {
    /// Builds a model with Glorot-initialized weights, seeded for
    /// reproducibility.
    pub fn new(config: &GcnConfig, seed: u64) -> Self {
        Self::with_init(config, WeightInit::Glorot, seed)
    }

    /// Builds a model with an explicit weight-initialization scheme.
    pub fn with_init(config: &GcnConfig, init: WeightInit, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.num_layers();
        let layers = (0..n)
            .map(|t| {
                let (i, o) = config.layer_dims(t);
                GcnLayer {
                    weight: init.build(i, o, &mut rng),
                    bias: config.bias.then(|| vec![0.0; o]),
                    activation: if t + 1 == n {
                        Activation::Identity
                    } else {
                        config.hidden_activation
                    },
                }
            })
            .collect();
        GcnModel { layers }
    }

    /// The layers, in execution order.
    pub fn layers(&self) -> &[GcnLayer] {
        &self.layers
    }

    /// Mutable access to the layers (for tests that pin weights).
    pub fn layers_mut(&mut self) -> &mut [GcnLayer] {
        &mut self.layers
    }

    /// Input feature dimension expected by the first layer.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, GcnLayer::in_dim)
    }

    /// Runs full-graph inference: normalizes the adjacency and applies every
    /// layer with the given SpMM strategy.
    ///
    /// # Errors
    ///
    /// Returns [`GcnError::FeatureDimMismatch`] / [`GcnError::VertexCountMismatch`]
    /// for malformed inputs, and propagates kernel errors.
    pub fn infer(
        &self,
        graph: &Graph,
        features: &DenseMatrix,
        strategy: SpmmStrategy,
    ) -> Result<DenseMatrix, GcnError> {
        let a_hat = graph.normalized_adjacency()?;
        self.infer_normalized(&a_hat, features, strategy)
    }

    /// Runs inference against a pre-normalized adjacency matrix. Use this
    /// when amortizing normalization across many inference calls.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`].
    pub fn infer_normalized(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        strategy: SpmmStrategy,
    ) -> Result<DenseMatrix, GcnError> {
        let mut workspace = InferenceWorkspace::new();
        self.infer_normalized_with(a_hat, features, strategy, &mut workspace)?;
        Ok(workspace.h)
    }

    /// [`GcnModel::infer_normalized`] running entirely inside a caller-owned
    /// [`InferenceWorkspace`]. The output lands in the workspace (also
    /// returned as a reference); repeated calls on same-shaped inputs reuse
    /// the workspace buffers instead of allocating per layer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`].
    pub fn infer_normalized_with<'w>(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        strategy: SpmmStrategy,
        workspace: &'w mut InferenceWorkspace,
    ) -> Result<&'w DenseMatrix, GcnError> {
        if features.cols() != self.input_dim() {
            return Err(GcnError::FeatureDimMismatch {
                expected: self.input_dim(),
                actual: features.cols(),
            });
        }
        if features.rows() != a_hat.nrows() {
            return Err(GcnError::VertexCountMismatch {
                graph: a_hat.nrows(),
                features: features.rows(),
            });
        }
        workspace.h.copy_from(features);
        for layer in &self.layers {
            gcn_layer_fused_into(
                a_hat,
                &workspace.h,
                &layer.weight,
                layer.bias.as_deref(),
                layer.activation,
                strategy,
                &mut workspace.mid,
                &mut workspace.next,
            )?;
            std::mem::swap(&mut workspace.h, &mut workspace.next);
        }
        Ok(&workspace.h)
    }

    /// Reference inference: unfused, sequential, aggregation always first.
    /// Exists purely as an oracle for tests.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer`].
    pub fn infer_reference(
        &self,
        graph: &Graph,
        features: &DenseMatrix,
    ) -> Result<DenseMatrix, GcnError> {
        let a_hat = graph.normalized_adjacency()?;
        let mut h = features.clone();
        for layer in &self.layers {
            let agg = kernels::spmm::spmm_sequential(&a_hat, &h)?;
            let mut upd = matrix::gemm::matmul_naive(&agg, &layer.weight)?;
            if let Some(b) = &layer.bias {
                upd.add_row_bias(b)?;
            }
            upd.apply_activation(layer.activation);
            h = upd;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::rmat::RmatConfig;

    fn small_graph() -> Graph {
        Graph::rmat(&RmatConfig::power_law(6, 4), 11)
    }

    #[test]
    fn inference_shapes_follow_config() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(12, 24, 5), 1);
        let x = g.random_features(12, 2);
        let out = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
        assert_eq!(out.shape(), (g.vertices(), 5));
        assert!(out.all_finite());
    }

    #[test]
    fn fused_inference_matches_reference_for_all_strategies() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(8, 16, 4), 3);
        let x = g.random_features(8, 4);
        let reference = model.infer_reference(&g, &x).unwrap();
        for strategy in [
            SpmmStrategy::Sequential,
            SpmmStrategy::VertexParallel { threads: 4 },
            SpmmStrategy::EdgeParallel { threads: 4 },
        ] {
            let got = model.infer(&g, &x, strategy).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-3,
                "strategy {strategy} diverged by {}",
                reference.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn wrong_feature_dim_is_rejected() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(8, 16, 4), 3);
        let x = g.random_features(9, 4);
        assert!(matches!(
            model.infer(&g, &x, SpmmStrategy::Sequential),
            Err(GcnError::FeatureDimMismatch {
                expected: 8,
                actual: 9
            })
        ));
    }

    #[test]
    fn wrong_vertex_count_is_rejected() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(8, 16, 4), 3);
        let x = DenseMatrix::zeros(g.vertices() + 1, 8);
        assert!(matches!(
            model.infer(&g, &x, SpmmStrategy::Sequential),
            Err(GcnError::VertexCountMismatch { .. })
        ));
    }

    #[test]
    fn identity_weights_propagate_neighbourhood_means() {
        // With identity weights, no bias and identity activations, one layer
        // computes exactly A_hat * X.
        let g = Graph::from_undirected_edges(2, &[(0, 1)]);
        let mut model = GcnModel::new(&GcnConfig::from_dims(vec![2, 2]), 0);
        model.layers_mut()[0].weight = DenseMatrix::identity(2);
        model.layers_mut()[0].bias = None;
        model.layers_mut()[0].activation = Activation::Identity;
        let x = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let out = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
        // A_hat for an edge graph with self loops: all entries 1/2.
        for v in out.as_slice() {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn normalized_reuse_matches_fresh_normalization() {
        let g = small_graph();
        let model = GcnModel::new(&GcnConfig::paper_model(8, 8, 8), 5);
        let x = g.random_features(8, 6);
        let a_hat = g.normalized_adjacency().unwrap();
        let a = model.infer(&g, &x, SpmmStrategy::Sequential).unwrap();
        let b = model
            .infer_normalized(&a_hat, &x, SpmmStrategy::Sequential)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_models_are_reproducible() {
        let c = GcnConfig::paper_model(8, 8, 2);
        assert_eq!(GcnModel::new(&c, 7), GcnModel::new(&c, 7));
        assert_ne!(GcnModel::new(&c, 7), GcnModel::new(&c, 8));
    }
}
