//! Batched per-vertex inference: gather the requested rows' k-hop
//! neighbourhood once and run the planned layer stack on the induced
//! sub-problem, instead of running the full graph per request.
//!
//! This is the kernel the serving batcher calls. A batch of target
//! vertices expands to its L-hop in-neighbourhood over the *normalized*
//! adjacency (L = layer count), the touched rows of `A_hat` and the
//! feature matrix are gathered into a compact sub-problem, and the
//! ordinary planned layer loop runs on it. Vertices keep their relative
//! (ascending global) order under renumbering and every per-shard kernel
//! runs a width-1 (sequential) plan, so each target row's floating-point
//! sequence is **bitwise identical** to full-graph
//! [`GcnModel::infer_planned_with`] under a pinned width-1 plan — the same
//! machine-independent contract the sharded runner pins (see
//! `crates/shard`). Coalescing requests into one batch therefore never
//! changes a single bit of any request's result, which is what lets the
//! serving layer batch aggressively.
//!
//! When the expansion saturates (the neighbourhood reaches every vertex —
//! common for small-diameter graphs and multi-layer models), the gather is
//! skipped entirely and the batch runs against the **cached full-graph
//! plan** held by the workspace, paying the plan build once per adjacency
//! rather than once per batch.

use crate::error::GcnError;
use crate::model::{GcnModel, InferenceWorkspace};
use kernels::SpmmPlan;
use matrix::{DenseMatrix, Precision};
use sparse::Csr;

/// Statistics of one gathered-batch inference call (fed into the serving
/// metrics: neighbourhood size is the real unit of work a batch costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowsBatchStats {
    /// Requested target rows (including duplicates, in caller order).
    pub targets: usize,
    /// Unique vertices in the gathered L-hop neighbourhood.
    pub gathered: usize,
    /// Non-zeros of the induced sub-adjacency (0 on the full-graph path).
    pub sub_nnz: usize,
    /// Hops expanded (= model layer count).
    pub hops: usize,
    /// The expansion saturated and the batch ran the cached full-graph
    /// plan instead of a gathered sub-problem.
    pub full_graph: bool,
}

/// Reusable buffers for [`GcnModel::infer_rows_planned_into`]: the
/// epoch-stamped visited marks and vertex list of the frontier expansion,
/// the recycled sub-CSR arrays, the gathered feature block, and two
/// [`InferenceWorkspace`]s — one for sub-problems (plan rebuilt per batch)
/// and one holding the cached width-1 full-graph plan for saturated
/// batches. After the first call on a given adjacency, steady-state calls
/// reuse every buffer at its high-water mark.
#[derive(Debug, Default)]
pub struct RowsWorkspace {
    /// `mark[v] == epoch` ⇔ vertex `v` is in the current neighbourhood.
    mark: Vec<u32>,
    epoch: u32,
    /// Gathered vertices; sorted ascending before the sub-CSR is built.
    verts: Vec<usize>,
    /// Recycled sub-CSR arrays (taken by `Csr::from_raw`, returned by
    /// `Csr::into_raw` after the batch).
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
    /// Gathered feature rows for the sub-problem.
    feat: DenseMatrix,
    /// Workspace for sub-problem inference (fresh plan per batch).
    sub_ws: InferenceWorkspace,
    /// Workspace for saturated batches: caches one width-1 full-graph
    /// plan per adjacency across calls.
    full_ws: InferenceWorkspace,
    /// Workspace for narrow-precision (brownout) batches:
    /// [`GcnModel::infer_planned_prec_with`] manages its own
    /// precision-keyed plan cache inside it.
    prec_ws: InferenceWorkspace,
}

impl RowsWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// The unique vertices gathered by the most recent call, ascending.
    /// Empty after a saturated (full-graph) batch. The sharded backend
    /// uses this to count halo rows — gathered vertices owned by other
    /// shards.
    pub fn gathered(&self) -> &[usize] {
        &self.verts
    }

    /// Bumps the visited-mark epoch, resetting the mark array on wrap.
    fn next_epoch(&mut self, n: usize) -> u32 {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

impl GcnModel {
    /// Batched per-vertex planned inference: computes the model output for
    /// exactly the rows in `targets` (output row `i` corresponds to
    /// `targets[i]`; duplicates are allowed and each gets its own output
    /// row), gathering the targets' L-hop in-neighbourhood once for the
    /// whole batch.
    ///
    /// The result is bitwise identical to running full-graph
    /// [`GcnModel::infer_planned_with`] under an installed width-1 plan
    /// and reading the target rows — regardless of how requests are
    /// coalesced into batches (see the module docs for the argument).
    ///
    /// Returns per-batch [`RowsBatchStats`]; `out` is resized to
    /// `targets.len() x out_dim`.
    ///
    /// # Errors
    ///
    /// [`GcnError::VertexOutOfRange`] for a target outside the graph,
    /// plus the same conditions as [`GcnModel::infer`].
    pub fn infer_rows_planned_into(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        targets: &[usize],
        ws: &mut RowsWorkspace,
        out: &mut DenseMatrix,
    ) -> Result<RowsBatchStats, GcnError> {
        self.rows_impl(a_hat, features, targets, None, ws, out)
    }

    /// [`GcnModel::infer_rows_planned_into`] at a narrow storage
    /// precision — the serving brownout path. The gather/saturation logic
    /// is identical; the layer stack runs through
    /// [`GcnModel::infer_planned_prec_with`], so outputs carry the
    /// precision's quantization error and are **not** bitwise-comparable
    /// to the f32 path (callers must annotate responses accordingly).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GcnModel::infer_rows_planned_into`].
    pub fn infer_rows_planned_prec_into(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        targets: &[usize],
        precision: Precision,
        ws: &mut RowsWorkspace,
        out: &mut DenseMatrix,
    ) -> Result<RowsBatchStats, GcnError> {
        self.rows_impl(a_hat, features, targets, Some(precision), ws, out)
    }

    fn rows_impl(
        &self,
        a_hat: &Csr,
        features: &DenseMatrix,
        targets: &[usize],
        precision: Option<Precision>,
        ws: &mut RowsWorkspace,
        out: &mut DenseMatrix,
    ) -> Result<RowsBatchStats, GcnError> {
        if features.cols() != self.input_dim() {
            return Err(GcnError::FeatureDimMismatch {
                expected: self.input_dim(),
                actual: features.cols(),
            });
        }
        let n = a_hat.nrows();
        if features.rows() != n {
            return Err(GcnError::VertexCountMismatch {
                graph: n,
                features: features.rows(),
            });
        }
        let hops = self.layers().len();
        let out_dim = self
            .layers()
            .last()
            .map_or(features.cols(), |l| l.out_dim());
        out.resize_for_overwrite(targets.len(), out_dim);
        if targets.is_empty() {
            ws.verts.clear();
            return Ok(RowsBatchStats {
                targets: 0,
                gathered: 0,
                sub_nnz: 0,
                hops,
                full_graph: false,
            });
        }

        // --- Expansion: L-hop in-neighbourhood of the target set. -------
        let epoch = ws.next_epoch(n);
        ws.verts.clear();
        for &t in targets {
            if t >= n {
                return Err(GcnError::VertexOutOfRange {
                    vertex: t,
                    vertices: n,
                });
            }
            if ws.mark[t] != epoch {
                ws.mark[t] = epoch;
                ws.verts.push(t);
            }
        }
        let mut level = 0;
        for _ in 0..hops {
            let hi = ws.verts.len();
            if hi == n {
                break;
            }
            for i in level..hi {
                let v = ws.verts[i];
                for &c in a_hat.row_cols(v) {
                    let c = c as usize;
                    if ws.mark[c] != epoch {
                        ws.mark[c] = epoch;
                        ws.verts.push(c);
                    }
                }
            }
            if ws.verts.len() == hi {
                break; // fixed point: no new vertices reachable
            }
            level = hi;
        }

        // --- Saturated: run the cached width-1 full-graph plan. ---------
        if ws.verts.len() == n {
            let h = match precision {
                None => {
                    if !ws.full_ws.plan().is_some_and(|p| p.matches(a_hat)) {
                        ws.full_ws
                            .install_plan(SpmmPlan::with_width(a_hat, features.cols(), 1));
                    }
                    self.infer_planned_with(a_hat, features, &mut ws.full_ws)?
                }
                Some(p) => self.infer_planned_prec_with(a_hat, features, p, &mut ws.prec_ws)?,
            };
            for (i, &t) in targets.iter().enumerate() {
                out.row_mut(i).copy_from_slice(h.row(t));
            }
            ws.verts.clear();
            return Ok(RowsBatchStats {
                targets: targets.len(),
                gathered: n,
                sub_nnz: 0,
                hops,
                full_graph: true,
            });
        }

        // --- Gather: induced sub-CSR + feature block, global order kept.
        // Sorting keeps renumbered columns ascending, so every gathered
        // row walks its non-zeros in the exact global order and
        // `Csr::from_raw`'s strictly-increasing-column invariant holds.
        ws.verts.sort_unstable();
        let m = ws.verts.len();
        let k = features.cols();
        ws.row_ptr.clear();
        ws.col_idx.clear();
        ws.values.clear();
        ws.row_ptr.push(0);
        ws.feat.resize_for_overwrite(m, k);
        for (local, &g) in ws.verts.iter().enumerate() {
            let cols = a_hat.row_cols(g);
            let vals = a_hat.row_values(g);
            for (&c, &v) in cols.iter().zip(vals) {
                let cu = c as usize;
                if ws.mark[cu] == epoch {
                    let lc = ws
                        .verts
                        .binary_search(&cu)
                        .expect("marked vertex is in the sorted gather list");
                    ws.col_idx.push(lc as u32);
                    ws.values.push(v);
                }
            }
            ws.row_ptr.push(ws.col_idx.len());
            ws.feat.row_mut(local).copy_from_slice(features.row(g));
        }
        let sub = Csr::from_raw(
            m,
            m,
            std::mem::take(&mut ws.row_ptr),
            std::mem::take(&mut ws.col_idx),
            std::mem::take(&mut ws.values),
        )?;
        let sub_nnz = sub.nnz();

        // Width 1 ⇒ always sequential: batch parallelism comes from the
        // serving lanes, never from inside a batch, which keeps the
        // per-row floating-point order independent of batch composition.
        let run = match precision {
            None => {
                ws.sub_ws.install_plan(SpmmPlan::with_width(&sub, k, 1));
                self.infer_planned_with(&sub, &ws.feat, &mut ws.sub_ws)
            }
            Some(p) => self.infer_planned_prec_with(&sub, &ws.feat, p, &mut ws.prec_ws),
        };
        // Recycle the sub-CSR arrays before propagating any error.
        let scatter = match run {
            Ok(h) => {
                for (i, &t) in targets.iter().enumerate() {
                    let local = ws
                        .verts
                        .binary_search(&t)
                        .expect("every target seeds its own gather");
                    out.row_mut(i).copy_from_slice(h.row(local));
                }
                Ok(())
            }
            Err(e) => Err(e),
        };
        let (rp, ci, vs) = sub.into_raw();
        ws.row_ptr = rp;
        ws.col_idx = ci;
        ws.values = vs;
        scatter?;
        Ok(RowsBatchStats {
            targets: targets.len(),
            gathered: m,
            sub_nnz,
            hops,
            full_graph: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcnConfig;
    use graph::rmat::RmatConfig;
    use graph::Graph;

    fn setup(scale: u32) -> (Csr, GcnModel, DenseMatrix) {
        let g = Graph::rmat(&RmatConfig::power_law(scale, 6), 77);
        let model = GcnModel::new(&GcnConfig::paper_model(8, 12, 3), 4);
        let x = g.random_features(8, 6);
        let a_hat = g.normalized_adjacency().unwrap();
        (a_hat, model, x)
    }

    /// Full-graph reference under the pinned width-1 plan — the bitwise
    /// contract both the sharded runner and the rows path share.
    fn reference(a_hat: &Csr, model: &GcnModel, x: &DenseMatrix) -> DenseMatrix {
        let mut ws = InferenceWorkspace::new();
        ws.install_plan(SpmmPlan::with_width(a_hat, x.cols(), 1));
        model.infer_planned_with(a_hat, x, &mut ws).unwrap().clone()
    }

    #[test]
    fn batched_rows_match_full_graph_bitwise() {
        let (a_hat, model, x) = setup(9);
        let full = reference(&a_hat, &model, &x);
        let mut ws = RowsWorkspace::new();
        let mut out = DenseMatrix::default();
        let targets = [3usize, 99, 400, 3, 17];
        let stats = model
            .infer_rows_planned_into(&a_hat, &x, &targets, &mut ws, &mut out)
            .unwrap();
        assert_eq!(out.shape(), (targets.len(), 3));
        assert_eq!(stats.targets, 5);
        for (i, &t) in targets.iter().enumerate() {
            assert_eq!(out.row(i), full.row(t), "row {t} diverged");
        }
    }

    #[test]
    fn saturated_expansion_uses_cached_full_plan() {
        // A tiny dense graph saturates in one hop of a 3-layer model.
        let g = Graph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let model = GcnModel::new(&GcnConfig::paper_model(8, 12, 3), 4);
        let x = g.random_features(8, 6);
        let a_hat = g.normalized_adjacency().unwrap();
        let full = reference(&a_hat, &model, &x);
        let mut ws = RowsWorkspace::new();
        let mut out = DenseMatrix::default();
        let stats = model
            .infer_rows_planned_into(&a_hat, &x, &[2, 0], &mut ws, &mut out)
            .unwrap();
        assert!(stats.full_graph);
        assert_eq!(stats.gathered, 4);
        assert_eq!(out.row(0), full.row(2));
        assert_eq!(out.row(1), full.row(0));
        // The cached full plan survives into the next call.
        let fp = ws.full_ws.plan().unwrap().fingerprint_value();
        model
            .infer_rows_planned_into(&a_hat, &x, &[1], &mut ws, &mut out)
            .unwrap();
        assert_eq!(ws.full_ws.plan().unwrap().fingerprint_value(), fp);
    }

    #[test]
    fn coalescing_is_bitwise_invariant() {
        let (a_hat, model, x) = setup(8);
        let mut ws = RowsWorkspace::new();
        let mut one = DenseMatrix::default();
        let mut all = DenseMatrix::default();
        let targets: Vec<usize> = vec![5, 41, 7, 120, 200, 5];
        model
            .infer_rows_planned_into(&a_hat, &x, &targets, &mut ws, &mut all)
            .unwrap();
        for (i, &t) in targets.iter().enumerate() {
            model
                .infer_rows_planned_into(&a_hat, &x, &[t], &mut ws, &mut one)
                .unwrap();
            assert_eq!(
                one.row(0),
                all.row(i),
                "target {t} changed under coalescing"
            );
        }
    }

    #[test]
    fn out_of_range_target_is_typed() {
        let (a_hat, model, x) = setup(6);
        let n = a_hat.nrows();
        let mut ws = RowsWorkspace::new();
        let mut out = DenseMatrix::default();
        assert!(matches!(
            model.infer_rows_planned_into(&a_hat, &x, &[n], &mut ws, &mut out),
            Err(GcnError::VertexOutOfRange { vertex, vertices }) if vertex == n && vertices == n
        ));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (a_hat, model, x) = setup(6);
        let mut ws = RowsWorkspace::new();
        let mut out = DenseMatrix::filled(3, 3, 7.0);
        let stats = model
            .infer_rows_planned_into(&a_hat, &x, &[], &mut ws, &mut out)
            .unwrap();
        assert_eq!(stats.gathered, 0);
        assert_eq!(out.rows(), 0);
    }
}
