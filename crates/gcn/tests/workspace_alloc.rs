//! Steady-state inference must not allocate per-layer activation matrices.
//!
//! A counting global allocator wraps `System` and tallies every allocated
//! byte. The first `infer_normalized_with` call sizes the workspace (and
//! the pool's scratch arena); the second call on identically-shaped inputs
//! must allocate far less than a single activation matrix — only small
//! per-call bookkeeping (chunk tables, the pool's job handle) is allowed.

use gcn::{GcnConfig, GcnModel, InferenceWorkspace};
use graph::rmat::RmatConfig;
use graph::Graph;
use kernels::SpmmStrategy;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATED_BYTES: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a transparent wrapper over `System`; every method forwards the
// caller's layout/pointer untouched, so `System`'s contract is preserved.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same layout contract as `System::alloc`, forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s layout contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same pointer/layout contract as `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `alloc` above with this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System::realloc`, forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(new_size.saturating_sub(layout.size()), Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_inference_does_not_allocate_activations() {
    let graph = Graph::rmat(&RmatConfig::power_law(9, 8), 42);
    let n = graph.vertices();
    let (input_dim, hidden, classes) = (32, 64, 16);
    let model = GcnModel::new(&GcnConfig::paper_model(input_dim, hidden, classes), 7);
    let features = graph.random_features(input_dim, 3);
    let a_hat = graph.normalized_adjacency().unwrap();
    let strategy = SpmmStrategy::VertexParallel { threads: 4 };

    // Warm-up: sizes the workspace, spawns the pool, fills scratch caches.
    let mut workspace = InferenceWorkspace::new();
    let reference = model
        .infer_normalized_with(&a_hat, &features, strategy, &mut workspace)
        .unwrap()
        .clone();

    ALLOCATED_BYTES.store(0, Ordering::Relaxed);
    let out = model
        .infer_normalized_with(&a_hat, &features, strategy, &mut workspace)
        .unwrap();
    let steady_state = ALLOCATED_BYTES.load(Ordering::Relaxed);
    assert!(reference.max_abs_diff(out) < 1e-5);

    // One n x hidden activation matrix — the thing a naive per-layer
    // implementation allocates at least three of per call.
    let one_activation = n * hidden * size_of::<f32>();
    assert!(
        steady_state < one_activation,
        "steady-state inference allocated {steady_state} bytes, \
         >= one activation matrix ({one_activation} bytes)"
    );
}
