//! A discrete-event timing simulator of Intel's PIUMA architecture.
//!
//! The paper evaluates SpMM on the (proprietary) PIUMA architecture
//! simulator. This crate is our substitute substrate: an event-driven model
//! of the PIUMA organization at the granularity of memory operations —
//! coarse enough to run millions of edges in milliseconds, fine enough that
//! the paper's four headline phenomena emerge rather than being assumed:
//!
//! 1. fine-grained (8-byte) loads cannot hide rising remote latency, so a
//!    loop-unrolled SpMM stops scaling with core count (Fig. 5);
//! 2. DMA block transfers keep issuing while data is in flight and so track
//!    the bandwidth-bound analytical model (Fig. 5);
//! 3. many threads per MTP buy DRAM-latency insensitivity, and losing them
//!    costs most at small embedding dimensions (Figs. 6–7);
//! 4. throughput scales linearly with per-slice DRAM bandwidth (Fig. 6).
//!
//! # Model
//!
//! * Every *thread* of every Multi-Threaded Pipeline (MTP) runs a
//!   [`Program`]: a lazy stream of [`Op`]s (compute, blocking loads, posted
//!   stores, DMA transfers, remote atomics).
//! * Each MTP is a FIFO *issue* resource (single-issue, round-robin is
//!   approximated by FIFO service in virtual time); a thread blocked on
//!   memory does not occupy it — that is the latency-hiding mechanism.
//! * Each DRAM slice is a FIFO *bandwidth* resource plus a fixed access
//!   latency; remote slices add a network latency that grows with the
//!   machine's core count (HyperX-style diameter).
//! * Each core has DMA offload engines: FIFO resources that serialize
//!   request *issue* but overlap request *completion*, the mechanism behind
//!   phenomenon 2.
//!
//! # Examples
//!
//! ```
//! use piuma_sim::{MachineConfig, Simulator, ThreadSpec};
//! use piuma_sim::program::{Op, OpTag, VecProgram};
//!
//! let config = MachineConfig::single_core();
//! // One thread issuing one 64-byte load from slice 0.
//! let program = VecProgram::new(vec![Op::Load {
//!     slice: 0,
//!     bytes: 64.0,
//!     tag: OpTag::FeatureRead,
//! }]);
//! let result = Simulator::new(config)
//!     .run(vec![ThreadSpec::on_core(0, Box::new(program))])
//!     .unwrap();
//! assert!(result.total_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod program;
pub mod resources;
pub mod stats;

pub use config::MachineConfig;
pub use engine::{SimError, Simulator, ThreadSpec, TraceEvent};
pub use program::{Op, OpTag, Program};
pub use stats::SimResult;

// Re-exported so downstream crates can build guards and arm fault points
// against the exact resilience version the simulator was compiled with.
pub use resilience;
