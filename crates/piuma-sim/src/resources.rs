//! FIFO-served resources: the queueing primitive behind pipelines, DRAM
//! slices, and DMA engines.

/// A resource that serves requests in arrival order at a finite rate.
///
/// `acquire(ready, service)` returns the interval during which the request
/// occupies the resource: it starts at `max(ready, next_free)` and holds the
/// resource for `service` nanoseconds. Busy time and request counts are
/// tracked for utilization reporting.
///
/// The simulation engine processes threads in virtual-time order, so
/// arrival order equals `ready`-time order and this simple scalar state is
/// an exact FIFO queue.
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    next_free: f64,
    busy_ns: f64,
    requests: u64,
}

impl FifoResource {
    /// Creates an idle resource at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the resource for `service_ns` starting no earlier than
    /// `ready_ns`. Returns `(start, end)` of the occupancy.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `service_ns` is negative or NaN.
    pub fn acquire(&mut self, ready_ns: f64, service_ns: f64) -> (f64, f64) {
        debug_assert!(service_ns >= 0.0 && service_ns.is_finite());
        let start = ready_ns.max(self.next_free);
        let end = start + service_ns;
        self.next_free = end;
        self.busy_ns += service_ns;
        self.requests += 1;
        (start, end)
    }

    /// Time at which the resource next becomes free.
    pub fn next_free(&self) -> f64 {
        self.next_free
    }

    /// Total busy time accumulated.
    pub fn busy_ns(&self) -> f64 {
        self.busy_ns
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Records busy time without reserving the resource — used for
    /// single-cycle instruction issue that round-robin interleaves with the
    /// in-flight blocks of other threads rather than queueing behind them.
    pub fn note_busy(&mut self, service_ns: f64) {
        debug_assert!(service_ns >= 0.0 && service_ns.is_finite());
        self.busy_ns += service_ns;
        self.requests += 1;
    }

    /// Utilization over a horizon (`busy / horizon`, clamped to [0, 1]).
    pub fn utilization(&self, horizon_ns: f64) -> f64 {
        if horizon_ns <= 0.0 {
            return 0.0;
        }
        (self.busy_ns / horizon_ns).clamp(0.0, 1.0)
    }
}

/// A bandwidth server: a [`FifoResource`] whose service time is
/// `bytes / rate`, plus byte accounting.
#[derive(Debug, Clone)]
pub struct BandwidthResource {
    fifo: FifoResource,
    bytes_per_ns: f64,
    bytes: f64,
}

impl BandwidthResource {
    /// Creates a server with the given rate in GB/s (= bytes/ns).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive.
    pub fn new(gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        BandwidthResource {
            fifo: FifoResource::new(),
            bytes_per_ns: gbps, // 1 GB/s == 1 byte/ns
            bytes: 0.0,
        }
    }

    /// Transfers `bytes` starting no earlier than `ready_ns`; returns
    /// `(start, end)` of the channel occupancy.
    pub fn transfer(&mut self, ready_ns: f64, bytes: f64) -> (f64, f64) {
        self.bytes += bytes;
        self.fifo.acquire(ready_ns, bytes / self.bytes_per_ns)
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> f64 {
        self.bytes
    }

    /// Underlying FIFO state (for utilization reporting).
    pub fn fifo(&self) -> &FifoResource {
        &self.fifo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = FifoResource::new();
        let (start, end) = r.acquire(10.0, 5.0);
        assert_eq!((start, end), (10.0, 15.0));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = FifoResource::new();
        r.acquire(0.0, 10.0);
        let (start, end) = r.acquire(2.0, 3.0);
        assert_eq!((start, end), (10.0, 13.0));
        assert_eq!(r.busy_ns(), 13.0);
        assert_eq!(r.requests(), 2);
    }

    #[test]
    fn gap_leaves_idle_time() {
        let mut r = FifoResource::new();
        r.acquire(0.0, 1.0);
        let (start, _) = r.acquire(100.0, 1.0);
        assert_eq!(start, 100.0);
        assert_eq!(r.busy_ns(), 2.0);
        assert!((r.utilization(101.0) - 2.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_clamped() {
        let mut r = FifoResource::new();
        r.acquire(0.0, 10.0);
        assert_eq!(r.utilization(5.0), 1.0);
        assert_eq!(r.utilization(0.0), 0.0);
    }

    #[test]
    fn bandwidth_service_time_is_bytes_over_rate() {
        let mut b = BandwidthResource::new(32.0); // 32 bytes/ns
        let (start, end) = b.transfer(0.0, 64.0);
        assert_eq!(start, 0.0);
        assert!((end - 2.0).abs() < 1e-12);
        assert_eq!(b.bytes(), 64.0);
    }

    #[test]
    fn saturated_channel_serializes_transfers() {
        let mut b = BandwidthResource::new(1.0);
        b.transfer(0.0, 100.0);
        let (start, end) = b.transfer(0.0, 50.0);
        assert_eq!(start, 100.0);
        assert_eq!(end, 150.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_is_rejected() {
        BandwidthResource::new(0.0);
    }
}
