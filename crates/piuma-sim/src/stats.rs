//! Simulation results: timing, traffic, and per-category breakdowns.

use crate::program::OpTag;
use std::collections::BTreeMap;
use std::fmt;

/// Accumulated statistics for one [`OpTag`] category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TagStats {
    /// Operations executed.
    pub count: u64,
    /// Bytes moved to/from DRAM.
    pub bytes: f64,
    /// Thread-time attributed to the category: stall time for blocking
    /// operations, engine occupancy for DMA transfers, pipeline time for
    /// compute.
    pub time_ns: f64,
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Wall-clock of the simulated kernel in nanoseconds (the time at which
    /// every thread finished and every outstanding transfer drained).
    pub total_ns: f64,
    /// Total bytes read from DRAM.
    pub bytes_read: f64,
    /// Total bytes written to DRAM.
    pub bytes_written: f64,
    /// Per-category statistics.
    pub breakdown: BTreeMap<OpTag, TagStats>,
    /// Mean utilization of the DRAM slice channels over the run.
    pub dram_utilization: f64,
    /// Mean utilization of the DMA engines over the run.
    pub dma_utilization: f64,
    /// Mean utilization of the MTP issue pipelines over the run.
    pub pipeline_utilization: f64,
    /// Number of simulated threads.
    pub threads: usize,
    /// Per-thread finish times (ns), indexed by thread id — the raw
    /// material for load-imbalance analysis.
    pub thread_finish_ns: Vec<f64>,
}

impl SimResult {
    /// Achieved DRAM bandwidth in GB/s over the run.
    pub fn achieved_bandwidth_gbps(&self) -> f64 {
        if self.total_ns <= 0.0 {
            return 0.0;
        }
        (self.bytes_read + self.bytes_written) / self.total_ns
    }

    /// Throughput in GFLOP/s given the kernel's FLOP count.
    pub fn gflops(&self, flops: f64) -> f64 {
        if self.total_ns <= 0.0 {
            return 0.0;
        }
        flops / self.total_ns
    }

    /// Load imbalance: latest thread finish over the mean finish (1.0 for
    /// perfectly balanced work, larger when stragglers dominate — the
    /// vertex-parallel failure mode of Section II-C).
    pub fn load_imbalance(&self) -> f64 {
        if self.thread_finish_ns.is_empty() {
            return 1.0;
        }
        let max = self.thread_finish_ns.iter().copied().fold(0.0, f64::max);
        let mean: f64 =
            self.thread_finish_ns.iter().sum::<f64>() / self.thread_finish_ns.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Fraction of per-category time attributed to `tag` (0 when nothing
    /// was recorded).
    pub fn time_fraction(&self, tag: OpTag) -> f64 {
        let total: f64 = self.breakdown.values().map(|s| s.time_ns).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.breakdown.get(&tag).map_or(0.0, |s| s.time_ns) / total
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SimResult: {:.1} us, {:.2} GB read, {:.2} GB written, {:.1} GB/s achieved",
            self.total_ns / 1e3,
            self.bytes_read / 1e9,
            self.bytes_written / 1e9,
            self.achieved_bandwidth_gbps()
        )?;
        writeln!(
            f,
            "  utilization: dram {:.0}%, dma {:.0}%, pipelines {:.0}%",
            self.dram_utilization * 100.0,
            self.dma_utilization * 100.0,
            self.pipeline_utilization * 100.0
        )?;
        for (tag, s) in &self.breakdown {
            writeln!(
                f,
                "  {:>13}: {:>10} ops, {:>12.0} bytes, {:>12.0} ns",
                tag.to_string(),
                s.count,
                s.bytes,
                s.time_ns
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimResult {
        let mut breakdown = BTreeMap::new();
        breakdown.insert(
            OpTag::NnzRead,
            TagStats {
                count: 10,
                bytes: 640.0,
                time_ns: 300.0,
            },
        );
        breakdown.insert(
            OpTag::FeatureRead,
            TagStats {
                count: 10,
                bytes: 10240.0,
                time_ns: 700.0,
            },
        );
        SimResult {
            total_ns: 1000.0,
            bytes_read: 10880.0,
            bytes_written: 0.0,
            breakdown,
            dram_utilization: 0.5,
            dma_utilization: 0.4,
            pipeline_utilization: 0.1,
            threads: 4,
            thread_finish_ns: vec![900.0, 1000.0, 950.0, 1000.0],
        }
    }

    #[test]
    fn achieved_bandwidth_is_bytes_over_time() {
        let r = sample();
        assert!((r.achieved_bandwidth_gbps() - 10.88).abs() < 1e-9);
    }

    #[test]
    fn gflops_divides_by_time() {
        let r = sample();
        assert!((r.gflops(2_000.0) - 2.0).abs() < 1e-12);
        let zero = SimResult {
            total_ns: 0.0,
            ..sample()
        };
        assert_eq!(zero.gflops(100.0), 0.0);
    }

    #[test]
    fn time_fractions_sum_to_one() {
        let r = sample();
        let total: f64 = OpTag::ALL.iter().map(|&t| r.time_fraction(t)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((r.time_fraction(OpTag::NnzRead) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_is_max_over_mean() {
        let r = sample();
        let mean = (900.0 + 1000.0 + 950.0 + 1000.0) / 4.0;
        assert!((r.load_imbalance() - 1000.0 / mean).abs() < 1e-12);
        let empty = SimResult {
            thread_finish_ns: Vec::new(),
            ..sample()
        };
        assert_eq!(empty.load_imbalance(), 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        let text = sample().to_string();
        assert!(text.contains("nnz_read"));
        assert!(text.contains("GB/s"));
    }
}
