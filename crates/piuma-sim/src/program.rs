//! Thread programs: the instruction streams the simulator executes.

use std::fmt;

/// Category tag attached to every operation, used for the execution-time
/// breakdowns of Figures 7 (bottom) and 8 (right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpTag {
    /// Reads of the sparse matrix's non-zero arrays (column indices and
    /// values) — the "NNZ reads" whose latency the paper identifies as the
    /// critical path at small embedding dimensions.
    NnzRead,
    /// Reads of the row-pointer array.
    RowPtrRead,
    /// Reads of dense feature rows.
    FeatureRead,
    /// Writes of output rows.
    OutputWrite,
    /// Scratch-local DMA arithmetic (buffer init / copy-add).
    DmaCompute,
    /// Pipeline arithmetic (MAC loops, address generation).
    Compute,
    /// Remote atomic updates.
    Atomic,
    /// Anything else.
    Other,
}

impl OpTag {
    /// All tags, in display order.
    pub const ALL: [OpTag; 8] = [
        OpTag::NnzRead,
        OpTag::RowPtrRead,
        OpTag::FeatureRead,
        OpTag::OutputWrite,
        OpTag::DmaCompute,
        OpTag::Compute,
        OpTag::Atomic,
        OpTag::Other,
    ];
}

impl fmt::Display for OpTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpTag::NnzRead => "nnz_read",
            OpTag::RowPtrRead => "row_ptr_read",
            OpTag::FeatureRead => "feature_read",
            OpTag::OutputWrite => "output_write",
            OpTag::DmaCompute => "dma_compute",
            OpTag::Compute => "compute",
            OpTag::Atomic => "atomic",
            OpTag::Other => "other",
        };
        f.write_str(s)
    }
}

/// One operation of a thread program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Occupy the pipeline for `cycles` clock cycles (ALU work).
    Compute {
        /// Pipeline cycles consumed.
        cycles: f64,
    },
    /// Blocking load of `bytes` from DRAM slice `slice`. The thread stalls
    /// until the data returns (PIUMA MTP threads have a single in-flight
    /// instruction — "stall-on-use" collapses to stall-on-issue here).
    Load {
        /// Destination DRAM slice (global index).
        slice: usize,
        /// Transfer size in bytes.
        bytes: f64,
        /// Stats category.
        tag: OpTag,
    },
    /// Posted store of `bytes` to slice `slice`: consumes slice bandwidth
    /// but does not stall the thread.
    Store {
        /// Destination DRAM slice (global index).
        slice: usize,
        /// Transfer size in bytes.
        bytes: f64,
        /// Stats category.
        tag: OpTag,
    },
    /// Enqueue a transfer on the issuing core's DMA engine. The engine
    /// serializes issue; the thread continues immediately unless its
    /// descriptor window is full. `read_slice`/`write_slice` of `None` mean
    /// the corresponding side touches only the core-local scratchpad.
    Dma {
        /// DRAM slice read by the transfer, if any.
        read_slice: Option<usize>,
        /// DRAM slice written by the transfer, if any.
        write_slice: Option<usize>,
        /// Transfer size in bytes.
        bytes: f64,
        /// Stats category.
        tag: OpTag,
    },
    /// Block until all DMA transfers previously issued by this thread have
    /// completed.
    DmaWait,
    /// Block until every live thread in the machine reaches a barrier.
    /// Implemented by the global collectives offload engine, so it costs a
    /// fixed latency beyond the rendezvous itself.
    Barrier,
    /// Remote atomic read-modify-write of `bytes` at slice `slice`,
    /// executed by the memory-side offload engine; blocks for the round
    /// trip but consumes no pipeline time at the remote side.
    Atomic {
        /// Target DRAM slice (global index).
        slice: usize,
        /// Payload size in bytes.
        bytes: f64,
        /// Stats category.
        tag: OpTag,
    },
}

/// A lazy stream of operations executed by one simulated thread.
///
/// Programs are pulled one [`Op`] at a time; returning `None` terminates
/// the thread. Implementations are typically small state machines over a
/// shared, read-only graph.
pub trait Program: Send {
    /// Produces the next operation, or `None` when the thread is done.
    fn next_op(&mut self) -> Option<Op>;
}

/// A program backed by a pre-built vector of operations. Convenient for
/// tests and micro-experiments.
#[derive(Debug, Clone)]
pub struct VecProgram {
    ops: std::vec::IntoIter<Op>,
}

impl VecProgram {
    /// Wraps a vector of operations.
    pub fn new(ops: Vec<Op>) -> Self {
        VecProgram {
            ops: ops.into_iter(),
        }
    }
}

impl Program for VecProgram {
    fn next_op(&mut self) -> Option<Op> {
        self.ops.next()
    }
}

/// A program assembled from a closure, for ad-hoc generated streams.
pub struct FnProgram<F: FnMut() -> Option<Op> + Send> {
    f: F,
}

impl<F: FnMut() -> Option<Op> + Send> FnProgram<F> {
    /// Wraps a generator closure.
    pub fn new(f: F) -> Self {
        FnProgram { f }
    }
}

impl<F: FnMut() -> Option<Op> + Send> Program for FnProgram<F> {
    fn next_op(&mut self) -> Option<Op> {
        (self.f)()
    }
}

impl<F: FnMut() -> Option<Op> + Send> fmt::Debug for FnProgram<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnProgram").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_program_yields_in_order_then_ends() {
        let mut p = VecProgram::new(vec![Op::Compute { cycles: 1.0 }, Op::DmaWait]);
        assert_eq!(p.next_op(), Some(Op::Compute { cycles: 1.0 }));
        assert_eq!(p.next_op(), Some(Op::DmaWait));
        assert_eq!(p.next_op(), None);
    }

    #[test]
    fn fn_program_supports_stateful_generation() {
        let mut remaining = 3;
        let mut p = FnProgram::new(move || {
            if remaining == 0 {
                None
            } else {
                remaining -= 1;
                Some(Op::Compute { cycles: 2.0 })
            }
        });
        let mut count = 0;
        while p.next_op().is_some() {
            count += 1;
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn tags_have_stable_display_names() {
        assert_eq!(OpTag::NnzRead.to_string(), "nnz_read");
        assert_eq!(OpTag::ALL.len(), 8);
    }
}
