//! PIUMA machine configuration — every knob the paper's sweeps vary.

use serde::{Deserialize, Serialize};

/// Configuration of a simulated PIUMA machine.
///
/// Defaults follow the published PIUMA organization (Aananthakrishnan et
/// al., 2020): cores hosting several single-issue, in-order MTPs with 16
/// round-robin threads each, a local scratchpad, one DRAM slice and DMA
/// offload engines per core, all connected by a HyperX network over a
/// distributed global address space. Absolute rates are calibration
/// constants, not measurements; the reproduction targets the paper's
/// *normalized* curves.
///
/// # Examples
///
/// ```
/// use piuma_sim::MachineConfig;
///
/// let one_die = MachineConfig::node(8); // Fig. 7 runs on one 8-core die
/// assert_eq!(one_die.cores, 8);
/// assert_eq!(one_die.total_threads(), 8 * 4 * 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of PIUMA cores (total, across all nodes).
    pub cores: usize,
    /// Number of nodes the cores are divided over. Nodes are connected by
    /// optical links (the HyperX topology spans them), so remote accesses
    /// that cross a node boundary pay [`MachineConfig::inter_node_ns`] on
    /// top of the intra-node path. Must divide `cores`.
    pub nodes: usize,
    /// Extra one-way latency in nanoseconds for crossing a node boundary.
    pub inter_node_ns: f64,
    /// Multi-threaded pipelines per core.
    pub mtps_per_core: usize,
    /// Hardware threads per MTP (the paper sweeps 1–16; default 16).
    pub threads_per_mtp: usize,
    /// Pipeline clock in GHz (sets the cost of issue/compute cycles).
    pub clock_ghz: f64,
    /// DRAM slices per core (the DGAS distributes rows across all slices).
    pub dram_slices_per_core: usize,
    /// Sustained bandwidth of one DRAM slice, in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// DRAM access latency in nanoseconds (the paper sweeps 45–720 ns).
    pub dram_latency_ns: f64,
    /// Per-hop network latency in nanoseconds for remote-slice accesses.
    pub network_hop_ns: f64,
    /// DMA engines per core.
    pub dma_engines_per_core: usize,
    /// DMA engine per-request issue/setup occupancy in nanoseconds. The
    /// engine serializes request *issue* at this rate while completions
    /// overlap.
    pub dma_issue_ns: f64,
    /// Sustained streaming rate of one DMA engine in GB/s (its internal
    /// copy/multiply datapath; the slice bandwidth usually binds first).
    pub dma_engine_gbps: f64,
    /// Maximum DMA transfers a single thread may have outstanding before it
    /// stalls (descriptor window).
    pub dma_window: usize,
    /// Credit-based flow control between DMA engines and DRAM slices: an
    /// engine will not issue a transfer to a slice whose queued backlog
    /// exceeds this many nanoseconds of service. This bounds the
    /// head-of-line delay that fine-grained pipeline loads (e.g. NNZ reads)
    /// experience behind bulk DMA traffic, mirroring the per-channel credit
    /// schemes of real memory subsystems.
    pub dma_backlog_ns: f64,
    /// Cache-line size in bytes (granularity of pipeline line loads).
    pub cache_line_bytes: usize,
    /// Latency in nanoseconds of a remote atomic executed at the memory-side
    /// offload engine (PIUMA's "efficient remote atomics").
    pub atomic_ns: f64,
    /// Fixed cost in nanoseconds of a global barrier through the
    /// collectives offload engine, on top of the rendezvous and one network
    /// diameter.
    pub barrier_ns: f64,
    /// Effective dense-arithmetic throughput of one MTP in FLOPs per cycle,
    /// *including* the in-memory add/multiply the DMA offload engines
    /// contribute. PIUMA pipelines are scalar (1 MAC/cycle), so anything
    /// above 2 here is offload-engine assist; the default (16) calibrates a
    /// core to ~90 GFLOP/s at 1.4 GHz, matching the observed dense rates of
    /// prior work ([21]) that `PiumaDenseModel` encodes.
    pub dense_flops_per_cycle_per_mtp: f64,
}

impl MachineConfig {
    /// A single-core machine with default parameters.
    pub fn single_core() -> Self {
        MachineConfig::node(1)
    }

    /// A multi-node system: `nodes` nodes of `cores_per_node` cores each,
    /// connected by optical links. The DGAS spans all of it — programs see
    /// one address space, remote slices just get further away.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn multi_node(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes > 0 && cores_per_node > 0, "counts must be positive");
        MachineConfig {
            nodes,
            ..MachineConfig::node(nodes * cores_per_node)
        }
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.cores / self.nodes
    }

    /// The node hosting a core.
    pub fn node_of_core(&self, core: usize) -> usize {
        core / self.cores_per_node()
    }

    /// A PIUMA node with `cores` cores and default parameters.
    pub fn node(cores: usize) -> Self {
        MachineConfig {
            cores,
            nodes: 1,
            inter_node_ns: 300.0,
            mtps_per_core: 4,
            threads_per_mtp: 16,
            clock_ghz: 1.4,
            dram_slices_per_core: 1,
            dram_bandwidth_gbps: 32.0,
            dram_latency_ns: 45.0,
            network_hop_ns: 40.0,
            dma_engines_per_core: 1,
            dma_issue_ns: 0.5,
            dma_engine_gbps: 64.0,
            dma_window: 64,
            dma_backlog_ns: 120.0,
            cache_line_bytes: 64,
            atomic_ns: 60.0,
            barrier_ns: 100.0,
            dense_flops_per_cycle_per_mtp: 16.0,
        }
    }

    /// Nanoseconds per pipeline clock cycle.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Total DRAM slices in the machine.
    pub fn total_slices(&self) -> usize {
        self.cores * self.dram_slices_per_core
    }

    /// Total hardware threads in the machine.
    pub fn total_threads(&self) -> usize {
        self.cores * self.mtps_per_core * self.threads_per_mtp
    }

    /// Aggregate DRAM bandwidth in GB/s.
    pub fn aggregate_bandwidth_gbps(&self) -> f64 {
        self.total_slices() as f64 * self.dram_bandwidth_gbps
    }

    /// The core that owns DRAM slice `slice`.
    pub fn slice_owner(&self, slice: usize) -> usize {
        slice / self.dram_slices_per_core
    }

    /// Extra network latency (ns) for core `core` to reach `slice`.
    ///
    /// Local slices cost nothing extra. Remote slices pay the average
    /// HyperX path: per-hop latency times a diameter term that grows with
    /// the square root of the core count (a 2-D HyperX arrangement). At 32
    /// cores and default parameters a remote access costs ~5x the local
    /// 45 ns DRAM latency on top — matching the paper's report of NNZ reads
    /// being on average 6x slower on 32 cores than on one.
    pub fn network_latency_ns(&self, core: usize, slice: usize) -> f64 {
        let owner = self.slice_owner(slice);
        if owner == core {
            return 0.0;
        }
        let intra = self.network_hop_ns * (self.cores_per_node() as f64).sqrt();
        if self.node_of_core(owner) == self.node_of_core(core) {
            intra
        } else {
            intra + self.inter_node_ns
        }
    }

    /// Total latency (ns) of a global barrier: fixed collectives cost plus
    /// one network diameter to gather and release every core.
    pub fn barrier_latency_ns(&self) -> f64 {
        self.barrier_ns + self.network_hop_ns * (self.cores as f64).sqrt()
    }

    /// Average memory latency (ns) seen from any core for an access to a
    /// uniformly random slice — DRAM latency plus the expected network
    /// penalty. Useful for analytical cross-checks in tests.
    pub fn avg_memory_latency_ns(&self) -> f64 {
        if self.cores <= 1 {
            return self.dram_latency_ns;
        }
        let cores = self.cores as f64;
        let per_node = self.cores_per_node() as f64;
        let intra = self.network_hop_ns * per_node.sqrt();
        let remote_fraction = (cores - 1.0) / cores;
        let cross_node_fraction = (cores - per_node) / cores;
        self.dram_latency_ns + remote_fraction * intra + cross_node_fraction * self.inter_node_ns
    }

    /// Returns a copy with a different DRAM latency (sweep helper).
    pub fn with_dram_latency_ns(&self, latency: f64) -> Self {
        MachineConfig {
            dram_latency_ns: latency,
            ..self.clone()
        }
    }

    /// Returns a copy with a different per-slice bandwidth (sweep helper).
    pub fn with_dram_bandwidth_gbps(&self, bw: f64) -> Self {
        MachineConfig {
            dram_bandwidth_gbps: bw,
            ..self.clone()
        }
    }

    /// Returns a copy with a different thread count per MTP (sweep helper).
    pub fn with_threads_per_mtp(&self, threads: usize) -> Self {
        MachineConfig {
            threads_per_mtp: threads,
            ..self.clone()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any structural parameter is zero or any rate is
    /// non-positive.
    pub fn assert_valid(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(self.nodes > 0, "need at least one node");
        assert!(
            self.cores.is_multiple_of(self.nodes),
            "nodes must divide the core count"
        );
        assert!(
            self.inter_node_ns >= 0.0,
            "inter-node latency must be non-negative"
        );
        assert!(self.mtps_per_core > 0, "need at least one MTP per core");
        assert!(self.threads_per_mtp > 0, "need at least one thread per MTP");
        assert!(
            self.dram_slices_per_core > 0,
            "need at least one slice per core"
        );
        assert!(
            self.dma_engines_per_core > 0,
            "need at least one DMA engine"
        );
        assert!(self.clock_ghz > 0.0, "clock must be positive");
        assert!(self.dram_bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(self.dram_latency_ns >= 0.0, "latency must be non-negative");
        assert!(self.dma_engine_gbps > 0.0, "DMA rate must be positive");
        assert!(self.dma_window > 0, "DMA window must be positive");
        assert!(self.cache_line_bytes > 0, "cache line must be positive");
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::node(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        MachineConfig::default().assert_valid();
        MachineConfig::single_core().assert_valid();
        MachineConfig::node(32).assert_valid();
    }

    #[test]
    fn totals_multiply_out() {
        let c = MachineConfig::node(4);
        assert_eq!(c.total_slices(), 4);
        assert_eq!(c.total_threads(), 4 * 4 * 16);
        assert_eq!(c.aggregate_bandwidth_gbps(), 4.0 * 32.0);
    }

    #[test]
    fn local_access_pays_no_network() {
        let c = MachineConfig::node(16);
        assert_eq!(c.network_latency_ns(3, 3), 0.0);
        assert!(c.network_latency_ns(3, 4) > 0.0);
    }

    #[test]
    fn remote_latency_grows_with_core_count() {
        let small = MachineConfig::node(4).network_latency_ns(0, 1);
        let large = MachineConfig::node(32).network_latency_ns(0, 1);
        assert!(large > small);
    }

    #[test]
    fn thirty_two_core_remote_latency_matches_paper_scale() {
        // Paper: NNZ reads ~6x slower on 32 cores than 1 core. Our average
        // latency ratio should land in the same neighbourhood (4x-8x).
        let one = MachineConfig::node(1).avg_memory_latency_ns();
        let thirty_two = MachineConfig::node(32).avg_memory_latency_ns();
        let ratio = thirty_two / one;
        assert!(
            (4.0..8.0).contains(&ratio),
            "latency ratio {ratio} outside the paper's ballpark"
        );
    }

    #[test]
    fn sweep_helpers_change_one_field() {
        let base = MachineConfig::node(2);
        let swept = base.with_dram_latency_ns(360.0);
        assert_eq!(swept.dram_latency_ns, 360.0);
        assert_eq!(swept.cores, base.cores);
        let swept = base.with_threads_per_mtp(1);
        assert_eq!(swept.threads_per_mtp, 1);
        let swept = base.with_dram_bandwidth_gbps(64.0);
        assert_eq!(swept.dram_bandwidth_gbps, 64.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_is_invalid() {
        MachineConfig {
            cores: 0,
            ..MachineConfig::default()
        }
        .assert_valid();
    }

    #[test]
    fn multi_node_divides_cores() {
        let c = MachineConfig::multi_node(4, 8);
        c.assert_valid();
        assert_eq!(c.cores, 32);
        assert_eq!(c.cores_per_node(), 8);
        assert_eq!(c.node_of_core(0), 0);
        assert_eq!(c.node_of_core(15), 1);
        assert_eq!(c.node_of_core(31), 3);
    }

    #[test]
    fn cross_node_access_pays_optical_latency() {
        let c = MachineConfig::multi_node(2, 4);
        let same_node = c.network_latency_ns(0, 1);
        let cross_node = c.network_latency_ns(0, 5);
        assert!(cross_node > same_node + 200.0);
        assert_eq!(c.network_latency_ns(2, 2), 0.0);
    }

    #[test]
    fn multi_node_raises_average_latency() {
        let single = MachineConfig::node(16).avg_memory_latency_ns();
        let multi = MachineConfig::multi_node(4, 4).avg_memory_latency_ns();
        assert!(multi > single);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn nodes_must_divide_cores() {
        MachineConfig {
            nodes: 3,
            ..MachineConfig::node(8)
        }
        .assert_valid();
    }

    #[test]
    fn slice_owner_maps_round_robin_blocks() {
        let mut c = MachineConfig::node(2);
        c.dram_slices_per_core = 2;
        assert_eq!(c.slice_owner(0), 0);
        assert_eq!(c.slice_owner(1), 0);
        assert_eq!(c.slice_owner(2), 1);
        assert_eq!(c.slice_owner(3), 1);
    }
}
