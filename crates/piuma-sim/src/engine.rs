//! The discrete-event execution engine.

use crate::config::MachineConfig;
use crate::program::{Op, OpTag, Program};
use crate::resources::{BandwidthResource, FifoResource};
use crate::stats::{SimResult, TagStats};
use resilience::guard::{RunGuard, RunOutcome, StopReason};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::error::Error;
use std::fmt;

/// How often (in processed events) a guarded run polls its [`RunGuard`].
/// Power of two so the check compiles to a mask test.
const GUARD_CHECK_EVENTS: u64 = 1024;

/// Error produced when a simulation cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No threads were supplied.
    NoThreads,
    /// A thread was placed on a core outside the machine.
    BadCore {
        /// The offending core index.
        core: usize,
        /// Cores available.
        cores: usize,
    },
    /// A program referenced a DRAM slice outside the machine.
    BadSlice {
        /// The offending slice index.
        slice: usize,
        /// Slices available.
        slices: usize,
    },
    /// An injected fault from the resilience layer (testing only).
    Fault {
        /// The fault-point site name.
        site: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoThreads => write!(f, "simulation requires at least one thread"),
            SimError::BadCore { core, cores } => {
                write!(
                    f,
                    "thread placed on core {core} but machine has {cores} cores"
                )
            }
            SimError::BadSlice { slice, slices } => {
                write!(f, "access to slice {slice} but machine has {slices} slices")
            }
            SimError::Fault { site } => write!(f, "injected fault at `{site}`"),
        }
    }
}

impl Error for SimError {}

/// Placement of one simulated thread: which core it runs on and the program
/// it executes. Threads of a core are assigned round-robin to its MTPs.
pub struct ThreadSpec {
    /// Core hosting the thread.
    pub core: usize,
    /// The instruction stream.
    pub program: Box<dyn Program>,
}

impl ThreadSpec {
    /// Places `program` on `core`.
    pub fn on_core(core: usize, program: Box<dyn Program>) -> Self {
        ThreadSpec { core, program }
    }
}

impl fmt::Debug for ThreadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadSpec")
            .field("core", &self.core)
            .finish_non_exhaustive()
    }
}

/// Orderable f64 key for the event heap (times are always finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct ThreadState {
    core: usize,
    mtp: usize,    // global MTP index
    engine: usize, // global DMA engine index
    program: Box<dyn Program>,
    ready: f64,
    dma_inflight: VecDeque<f64>,
}

/// The PIUMA discrete-event simulator.
///
/// Construct with a [`MachineConfig`], then [`Simulator::run`] a set of
/// [`ThreadSpec`]s to completion. See the crate-level docs for the model.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
}

impl Simulator {
    /// Creates a simulator for the given machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MachineConfig::assert_valid`]).
    pub fn new(config: MachineConfig) -> Self {
        config.assert_valid();
        Simulator { config }
    }

    /// The machine being simulated.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs the supplied threads to completion and reports timing/traffic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoThreads`] for an empty thread list,
    /// [`SimError::BadCore`] for a misplaced thread, and
    /// [`SimError::BadSlice`] if a program addresses a slice outside the
    /// machine.
    pub fn run(&self, threads: Vec<ThreadSpec>) -> Result<SimResult, SimError> {
        self.run_traced(threads, 0).map(|(result, _)| result)
    }

    /// Like [`Simulator::run`], but additionally records up to
    /// `max_events` per-operation [`TraceEvent`]s (in execution order) for
    /// timeline inspection and debugging. A limit of 0 disables tracing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_traced(
        &self,
        threads: Vec<ThreadSpec>,
        max_events: usize,
    ) -> Result<(SimResult, Vec<TraceEvent>), SimError> {
        let (result, trace, _) = self.run_inner(threads, max_events, None)?;
        Ok((result, trace))
    }

    /// Like [`Simulator::run`], but polls `guard` every
    /// [`GUARD_CHECK_EVENTS`] processed events: a fired wall-clock budget
    /// or cancellation ends the simulation early with
    /// [`RunOutcome::Partial`] carrying the statistics accumulated so far
    /// (simulated time, traffic, and breakdowns of the events already
    /// executed) instead of running an unbounded event loop to the end.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`]; guard stops are not errors.
    pub fn run_guarded(
        &self,
        threads: Vec<ThreadSpec>,
        guard: &RunGuard,
    ) -> Result<RunOutcome<SimResult>, SimError> {
        let (result, _, stopped) = self.run_inner(threads, 0, Some(guard))?;
        Ok(match stopped {
            None => RunOutcome::Complete(result),
            Some(reason) => RunOutcome::Partial {
                value: result,
                reason,
            },
        })
    }

    fn run_inner(
        &self,
        threads: Vec<ThreadSpec>,
        max_events: usize,
        guard: Option<&RunGuard>,
    ) -> Result<(SimResult, Vec<TraceEvent>, Option<StopReason>), SimError> {
        resilience::fault_point_err!("sim.run", SimError::Fault { site: "sim.run" });
        let mut trace: Vec<TraceEvent> = Vec::new();
        let mut record = |event: TraceEvent| {
            if trace.len() < max_events {
                trace.push(event);
            }
        };
        if threads.is_empty() {
            return Err(SimError::NoThreads);
        }
        let cfg = &self.config;
        let n_slices = cfg.total_slices();
        let n_mtps = cfg.cores * cfg.mtps_per_core;
        let n_engines = cfg.cores * cfg.dma_engines_per_core;

        let mut pipelines: Vec<FifoResource> = (0..n_mtps).map(|_| FifoResource::new()).collect();
        let mut engines: Vec<FifoResource> = (0..n_engines).map(|_| FifoResource::new()).collect();
        let mut dram: Vec<BandwidthResource> = (0..n_slices)
            .map(|_| BandwidthResource::new(cfg.dram_bandwidth_gbps))
            .collect();

        // Round-robin thread placement onto the core's MTPs and engines.
        let mut per_core_count = vec![0usize; cfg.cores];
        let mut states: Vec<ThreadState> = Vec::with_capacity(threads.len());
        for spec in threads {
            if spec.core >= cfg.cores {
                return Err(SimError::BadCore {
                    core: spec.core,
                    cores: cfg.cores,
                });
            }
            let ordinal = per_core_count[spec.core];
            per_core_count[spec.core] += 1;
            states.push(ThreadState {
                core: spec.core,
                mtp: spec.core * cfg.mtps_per_core + ordinal % cfg.mtps_per_core,
                engine: spec.core * cfg.dma_engines_per_core + ordinal % cfg.dma_engines_per_core,
                program: spec.program,
                ready: 0.0,
                dma_inflight: VecDeque::new(),
            });
        }

        let mut breakdown: BTreeMap<OpTag, TagStats> = BTreeMap::new();
        let mut bytes_read = 0.0f64;
        let mut bytes_written = 0.0f64;
        let cycle = cfg.cycle_ns();

        let mut heap: BinaryHeap<Reverse<(TimeKey, usize)>> = (0..states.len())
            .map(|tid| Reverse((TimeKey(0.0), tid)))
            .collect();
        let mut finish_time = 0.0f64;
        let mut thread_finish = vec![0.0f64; states.len()];

        // Global-barrier rendezvous state.
        let mut live_threads = states.len();
        let mut parked: Vec<usize> = Vec::new();
        let mut barrier_horizon = 0.0f64;

        let mut events: u64 = 0;
        let mut stopped: Option<StopReason> = None;

        while let Some(Reverse((TimeKey(now), tid))) = heap.pop() {
            // Poll before counting so a zero-budget guard stops ahead of the
            // first event even in sims far smaller than the check interval.
            if events & (GUARD_CHECK_EVENTS - 1) == 0 {
                if let Some(g) = guard {
                    if let Some(reason) = g.should_stop() {
                        stopped = Some(reason);
                        break;
                    }
                }
            }
            events += 1;
            resilience::fault_point!("sim.event");
            let st = &mut states[tid];
            debug_assert_eq!(st.ready, now);
            let Some(op) = st.program.next_op() else {
                // Thread done; drain its outstanding DMA transfers into the
                // finish time.
                let last_dma = st.dma_inflight.iter().copied().fold(0.0, f64::max);
                thread_finish[tid] = st.ready.max(last_dma);
                finish_time = finish_time.max(thread_finish[tid]);
                live_threads -= 1;
                // A finished thread never reaches the barrier: release the
                // waiters if it was the last straggler.
                if !parked.is_empty() && parked.len() == live_threads {
                    release_barrier(&mut parked, &mut heap, &mut states, barrier_horizon, cfg);
                    barrier_horizon = 0.0;
                }
                continue;
            };

            match op {
                Op::Compute { cycles } => {
                    let (_, end) = pipelines[st.mtp].acquire(st.ready, cycles * cycle);
                    let entry = breakdown.entry(OpTag::Compute).or_default();
                    entry.count += 1;
                    entry.time_ns += end - st.ready;
                    record(TraceEvent {
                        thread: tid,
                        kind: "compute",
                        tag: OpTag::Compute,
                        start_ns: st.ready,
                        end_ns: end,
                    });
                    st.ready = end;
                }
                Op::Load { slice, bytes, tag } => {
                    check_slice(slice, n_slices)?;
                    // Single-instruction issue: round-robin interleaves with
                    // other threads' work instead of queueing behind it.
                    let issued = st.ready + cycle;
                    pipelines[st.mtp].note_busy(cycle);
                    let (_, served) = dram[slice].transfer(issued, bytes);
                    let done =
                        served + cfg.dram_latency_ns + cfg.network_latency_ns(st.core, slice);
                    let entry = breakdown.entry(tag).or_default();
                    entry.count += 1;
                    entry.bytes += bytes;
                    entry.time_ns += done - st.ready;
                    bytes_read += bytes;
                    record(TraceEvent {
                        thread: tid,
                        kind: "load",
                        tag,
                        start_ns: now,
                        end_ns: done,
                    });
                    st.ready = done;
                }
                Op::Store { slice, bytes, tag } => {
                    check_slice(slice, n_slices)?;
                    let issued = st.ready + cycle;
                    pipelines[st.mtp].note_busy(cycle);
                    let (_, served) = dram[slice].transfer(issued, bytes);
                    finish_time = finish_time.max(served + cfg.dram_latency_ns);
                    let entry = breakdown.entry(tag).or_default();
                    entry.count += 1;
                    entry.bytes += bytes;
                    entry.time_ns += issued - st.ready + cycle;
                    bytes_written += bytes;
                    record(TraceEvent {
                        thread: tid,
                        kind: "store",
                        tag,
                        start_ns: now,
                        end_ns: issued,
                    });
                    st.ready = issued;
                }
                Op::Dma {
                    read_slice,
                    write_slice,
                    bytes,
                    tag,
                } => {
                    if let Some(s) = read_slice {
                        check_slice(s, n_slices)?;
                    }
                    if let Some(s) = write_slice {
                        check_slice(s, n_slices)?;
                    }
                    // Descriptor-window stall: wait for the oldest transfer
                    // if the window is full.
                    let mut ready = st.ready;
                    if st.dma_inflight.len() >= cfg.dma_window {
                        let oldest = st.dma_inflight.pop_front().expect("window is non-empty");
                        ready = ready.max(oldest);
                    }
                    // Descriptor-queue backpressure: the writer stalls while
                    // the engine's queued work exceeds several credits'
                    // worth. This keeps the engine's clock from running far
                    // ahead of the thread's (which would let transfers
                    // reserve slice bandwidth deep in the future) while
                    // still absorbing bursts of large descriptors.
                    ready = ready.max(engines[st.engine].next_free() - cfg.dma_backlog_ns);
                    for s in [read_slice, write_slice].into_iter().flatten() {
                        ready = ready.max(dram[s].fifo().next_free() - cfg.dma_backlog_ns);
                    }
                    // One pipeline cycle writes the descriptor.
                    let issued = ready + cycle;
                    pipelines[st.mtp].note_busy(cycle);
                    // Engine serializes request issue; completions overlap.
                    let occupancy = cfg.dma_issue_ns.max(bytes / cfg.dma_engine_gbps);
                    let (_, engine_free) = engines[st.engine].acquire(issued, occupancy);
                    let engine_core = st.engine / cfg.dma_engines_per_core;
                    // Both sides reserve their slice at engine-issue time:
                    // reserving the write after the read's completion would
                    // park a phantom future reservation on the write slice
                    // and stall every gate that polls it. The copy chaining
                    // is preserved in the completion time instead.
                    let mut done = engine_free;
                    if let Some(s) = read_slice {
                        let (_, served) = dram[s].transfer(engine_free, bytes);
                        done = done.max(
                            served + cfg.dram_latency_ns + cfg.network_latency_ns(engine_core, s),
                        );
                        bytes_read += bytes;
                    }
                    if let Some(s) = write_slice {
                        let (_, served) = dram[s].transfer(engine_free, bytes);
                        done = done.max(
                            served + cfg.dram_latency_ns + cfg.network_latency_ns(engine_core, s),
                        );
                        bytes_written += bytes;
                    }
                    if read_slice.is_some() && write_slice.is_some() {
                        // A copy's write physically follows its read.
                        done += cfg.dram_latency_ns;
                    }
                    st.dma_inflight.push_back(done);
                    let entry = breakdown.entry(tag).or_default();
                    entry.count += 1;
                    entry.bytes += if read_slice.is_some() || write_slice.is_some() {
                        bytes
                    } else {
                        0.0
                    };
                    // Attribute both the engine occupancy and any
                    // window/backpressure stall the thread paid to this
                    // category — the thread really is waiting on this kind
                    // of transfer.
                    entry.time_ns += occupancy + (ready - st.ready).max(0.0);
                    record(TraceEvent {
                        thread: tid,
                        kind: "dma",
                        tag,
                        start_ns: now,
                        end_ns: done,
                    });
                    st.ready = ready.max(issued);
                }
                Op::DmaWait => {
                    let last = st.dma_inflight.drain(..).fold(0.0, f64::max);
                    let end = st.ready.max(last);
                    record(TraceEvent {
                        thread: tid,
                        kind: "dma_wait",
                        tag: OpTag::Other,
                        start_ns: now,
                        end_ns: end,
                    });
                    st.ready = end;
                }
                Op::Barrier => {
                    barrier_horizon = barrier_horizon.max(st.ready);
                    parked.push(tid);
                    if parked.len() == live_threads {
                        release_barrier(&mut parked, &mut heap, &mut states, barrier_horizon, cfg);
                        barrier_horizon = 0.0;
                    }
                    // Parked: not re-queued until released.
                    continue;
                }
                Op::Atomic { slice, bytes, tag } => {
                    check_slice(slice, n_slices)?;
                    let issued = st.ready + cycle;
                    pipelines[st.mtp].note_busy(cycle);
                    let (_, served) = dram[slice].transfer(issued, bytes);
                    let done = served
                        + cfg.dram_latency_ns
                        + cfg.network_latency_ns(st.core, slice)
                        + cfg.atomic_ns;
                    let entry = breakdown.entry(tag).or_default();
                    entry.count += 1;
                    entry.bytes += bytes;
                    entry.time_ns += done - st.ready;
                    bytes_written += bytes;
                    record(TraceEvent {
                        thread: tid,
                        kind: "atomic",
                        tag,
                        start_ns: now,
                        end_ns: done,
                    });
                    st.ready = done;
                }
            }
            heap.push(Reverse((TimeKey(st.ready), tid)));
        }

        // A guard stop leaves threads mid-program; fold their current
        // positions in so the partial result reflects simulated time so far.
        if stopped.is_some() {
            for st in &states {
                finish_time = finish_time.max(st.ready);
            }
        }

        // Drain: account for channel tails.
        for d in &dram {
            finish_time = finish_time.max(d.fifo().next_free());
        }
        for e in &engines {
            finish_time = finish_time.max(e.next_free());
        }

        let horizon = finish_time.max(f64::MIN_POSITIVE);
        let mean = |total: f64, n: usize| if n == 0 { 0.0 } else { total / n as f64 };
        let dram_util = mean(
            dram.iter().map(|d| d.fifo().utilization(horizon)).sum(),
            dram.len(),
        );
        let dma_util = mean(
            engines.iter().map(|e| e.utilization(horizon)).sum(),
            engines.len(),
        );
        let pipe_util = mean(
            pipelines.iter().map(|p| p.utilization(horizon)).sum(),
            pipelines.len(),
        );

        Ok((
            SimResult {
                total_ns: finish_time,
                bytes_read,
                bytes_written,
                breakdown,
                dram_utilization: dram_util,
                dma_utilization: dma_util,
                pipeline_utilization: pipe_util,
                threads: states.len(),
                thread_finish_ns: thread_finish,
            },
            trace,
            stopped,
        ))
    }
}

/// One recorded operation from [`Simulator::run_traced`]: which thread ran
/// what, and over which interval of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Thread id (index into the `ThreadSpec` list).
    pub thread: usize,
    /// Operation kind: `"compute"`, `"load"`, `"store"`, `"dma"`,
    /// `"dma_wait"`, `"atomic"`.
    pub kind: &'static str,
    /// The stats category the operation was attributed to.
    pub tag: OpTag,
    /// When the thread began the operation (ns).
    pub start_ns: f64,
    /// When the operation's effect completed (ns).
    pub end_ns: f64,
}

/// Releases every thread parked at the global barrier at
/// `horizon + barrier latency`.
fn release_barrier(
    parked: &mut Vec<usize>,
    heap: &mut BinaryHeap<Reverse<(TimeKey, usize)>>,
    states: &mut [ThreadState],
    horizon: f64,
    cfg: &MachineConfig,
) {
    let release = horizon + cfg.barrier_latency_ns();
    for tid in parked.drain(..) {
        states[tid].ready = release;
        heap.push(Reverse((TimeKey(release), tid)));
    }
}

fn check_slice(slice: usize, slices: usize) -> Result<(), SimError> {
    if slice >= slices {
        return Err(SimError::BadSlice { slice, slices });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::VecProgram;
    use resilience::guard::CancelToken;

    fn one_thread(config: MachineConfig, ops: Vec<Op>) -> SimResult {
        Simulator::new(config)
            .run(vec![ThreadSpec::on_core(0, Box::new(VecProgram::new(ops)))])
            .unwrap()
    }

    #[test]
    fn empty_thread_list_is_rejected() {
        let sim = Simulator::new(MachineConfig::single_core());
        assert_eq!(sim.run(vec![]).unwrap_err(), SimError::NoThreads);
    }

    #[test]
    fn misplaced_thread_is_rejected() {
        let sim = Simulator::new(MachineConfig::single_core());
        let err = sim
            .run(vec![ThreadSpec::on_core(
                5,
                Box::new(VecProgram::new(vec![])),
            )])
            .unwrap_err();
        assert!(matches!(err, SimError::BadCore { core: 5, cores: 1 }));
    }

    #[test]
    fn bad_slice_is_rejected() {
        let sim = Simulator::new(MachineConfig::single_core());
        let err = sim
            .run(vec![ThreadSpec::on_core(
                0,
                Box::new(VecProgram::new(vec![Op::Load {
                    slice: 9,
                    bytes: 8.0,
                    tag: OpTag::NnzRead,
                }])),
            )])
            .unwrap_err();
        assert!(matches!(err, SimError::BadSlice { slice: 9, .. }));
    }

    #[test]
    fn single_load_pays_service_plus_latency() {
        let cfg = MachineConfig::single_core();
        let r = one_thread(
            cfg.clone(),
            vec![Op::Load {
                slice: 0,
                bytes: 64.0,
                tag: OpTag::FeatureRead,
            }],
        );
        let expected = cfg.cycle_ns() + 64.0 / cfg.dram_bandwidth_gbps + cfg.dram_latency_ns;
        assert!(
            (r.total_ns - expected).abs() < 1e-9,
            "got {} want {}",
            r.total_ns,
            expected
        );
        assert_eq!(r.bytes_read, 64.0);
    }

    #[test]
    fn blocking_loads_serialize_per_thread() {
        let cfg = MachineConfig::single_core();
        let ops = vec![
            Op::Load {
                slice: 0,
                bytes: 64.0,
                tag: OpTag::FeatureRead,
            };
            10
        ];
        let r = one_thread(cfg.clone(), ops);
        // Each load's latency sits on the critical path: >= 10 * 45 ns.
        assert!(r.total_ns >= 10.0 * cfg.dram_latency_ns);
    }

    #[test]
    fn parallel_threads_overlap_latency() {
        let cfg = MachineConfig::single_core();
        let make_ops = || {
            vec![
                Op::Load {
                    slice: 0,
                    bytes: 8.0,
                    tag: OpTag::NnzRead,
                };
                4
            ]
        };
        let sequential = one_thread(cfg.clone(), {
            let mut v = make_ops();
            v.extend(make_ops());
            v
        });
        let sim = Simulator::new(cfg);
        let parallel = sim
            .run(vec![
                ThreadSpec::on_core(0, Box::new(VecProgram::new(make_ops()))),
                ThreadSpec::on_core(0, Box::new(VecProgram::new(make_ops()))),
            ])
            .unwrap();
        assert!(
            parallel.total_ns < sequential.total_ns * 0.75,
            "multithreading should hide latency: {} vs {}",
            parallel.total_ns,
            sequential.total_ns
        );
    }

    #[test]
    fn dma_transfers_overlap_their_latency() {
        // N DMA reads issued by one thread: issue serializes at the engine,
        // completions overlap, so total << N * latency.
        let cfg = MachineConfig::single_core();
        let n = 32usize;
        let ops: Vec<Op> = (0..n)
            .map(|_| Op::Dma {
                read_slice: Some(0),
                write_slice: None,
                bytes: 64.0,
                tag: OpTag::FeatureRead,
            })
            .chain(std::iter::once(Op::DmaWait))
            .collect();
        let r = one_thread(cfg.clone(), ops);
        let serialized = n as f64 * cfg.dram_latency_ns;
        assert!(
            r.total_ns < serialized * 0.5,
            "DMA should pipeline: {} vs fully serialized {}",
            r.total_ns,
            serialized
        );
        assert_eq!(r.bytes_read, n as f64 * 64.0);
    }

    #[test]
    fn dma_window_limits_runahead() {
        // With a window of 1 the thread must wait for each transfer before
        // issuing the next, re-serializing the latency.
        let mut cfg = MachineConfig::single_core();
        cfg.dma_window = 1;
        let n = 16usize;
        let ops: Vec<Op> = (0..n)
            .map(|_| Op::Dma {
                read_slice: Some(0),
                write_slice: None,
                bytes: 64.0,
                tag: OpTag::FeatureRead,
            })
            .chain(std::iter::once(Op::DmaWait))
            .collect();
        let narrow = one_thread(cfg.clone(), ops.clone());
        cfg.dma_window = 16;
        let wide = one_thread(cfg, ops);
        assert!(
            narrow.total_ns > wide.total_ns * 2.0,
            "window=1 {} should be much slower than window=16 {}",
            narrow.total_ns,
            wide.total_ns
        );
    }

    #[test]
    fn stores_do_not_block_the_thread() {
        let cfg = MachineConfig::single_core();
        let r = one_thread(
            cfg.clone(),
            vec![
                Op::Store {
                    slice: 0,
                    bytes: 1024.0,
                    tag: OpTag::OutputWrite,
                },
                Op::Compute { cycles: 1.0 },
            ],
        );
        // The store's DRAM latency still shows up in the drain time.
        assert!(r.total_ns >= cfg.dram_latency_ns);
        assert_eq!(r.bytes_written, 1024.0);
    }

    #[test]
    fn atomics_include_offload_cost() {
        let cfg = MachineConfig::single_core();
        let r = one_thread(
            cfg.clone(),
            vec![Op::Atomic {
                slice: 0,
                bytes: 64.0,
                tag: OpTag::Atomic,
            }],
        );
        assert!(r.total_ns >= cfg.dram_latency_ns + cfg.atomic_ns);
    }

    #[test]
    fn remote_access_is_slower_than_local() {
        let cfg = MachineConfig::node(4);
        let sim = Simulator::new(cfg);
        let local = sim
            .run(vec![ThreadSpec::on_core(
                0,
                Box::new(VecProgram::new(vec![Op::Load {
                    slice: 0,
                    bytes: 8.0,
                    tag: OpTag::NnzRead,
                }])),
            )])
            .unwrap();
        let remote = sim
            .run(vec![ThreadSpec::on_core(
                0,
                Box::new(VecProgram::new(vec![Op::Load {
                    slice: 3,
                    bytes: 8.0,
                    tag: OpTag::NnzRead,
                }])),
            )])
            .unwrap();
        assert!(remote.total_ns > local.total_ns);
    }

    #[test]
    fn bandwidth_binds_throughput_under_saturation() {
        // Many threads streaming large DMA reads: achieved bandwidth should
        // approach the slice bandwidth.
        let cfg = MachineConfig::single_core();
        let sim = Simulator::new(cfg.clone());
        let threads: Vec<ThreadSpec> = (0..32)
            .map(|_| {
                let ops: Vec<Op> = (0..64)
                    .map(|_| Op::Dma {
                        read_slice: Some(0),
                        write_slice: None,
                        bytes: 1024.0,
                        tag: OpTag::FeatureRead,
                    })
                    .chain(std::iter::once(Op::DmaWait))
                    .collect();
                ThreadSpec::on_core(0, Box::new(VecProgram::new(ops)))
            })
            .collect();
        let r = sim.run(threads).unwrap();
        let achieved = r.achieved_bandwidth_gbps();
        assert!(
            achieved > cfg.dram_bandwidth_gbps * 0.8,
            "achieved {achieved} GB/s of {} GB/s",
            cfg.dram_bandwidth_gbps
        );
        assert!(achieved <= cfg.dram_bandwidth_gbps * 1.001);
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = MachineConfig::node(2);
        let run = || {
            let sim = Simulator::new(cfg.clone());
            let threads: Vec<ThreadSpec> = (0..8)
                .map(|i| {
                    let ops: Vec<Op> = (0..16)
                        .map(|j| Op::Load {
                            slice: (i + j) % 2,
                            bytes: 64.0,
                            tag: OpTag::FeatureRead,
                        })
                        .collect();
                    ThreadSpec::on_core(i % 2, Box::new(VecProgram::new(ops)))
                })
                .collect();
            sim.run(threads).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_ns, b.total_ns);
        assert_eq!(a.breakdown, b.breakdown);
    }

    #[test]
    fn barrier_synchronizes_threads() {
        // Thread A computes for a long time, thread B barely at all; after
        // the barrier both must resume at the same instant, later than A's
        // arrival plus the barrier latency.
        let cfg = MachineConfig::single_core();
        let slow_cycles = 10_000.0;
        let sim = Simulator::new(cfg.clone());
        let r = sim
            .run(vec![
                ThreadSpec::on_core(
                    0,
                    Box::new(VecProgram::new(vec![
                        Op::Compute {
                            cycles: slow_cycles,
                        },
                        Op::Barrier,
                        Op::Compute { cycles: 1.0 },
                    ])),
                ),
                ThreadSpec::on_core(
                    0,
                    Box::new(VecProgram::new(vec![
                        Op::Barrier,
                        Op::Compute { cycles: 1.0 },
                    ])),
                ),
            ])
            .unwrap();
        let expected_min = slow_cycles * cfg.cycle_ns() + cfg.barrier_latency_ns();
        assert!(
            r.total_ns >= expected_min,
            "total {} should include the straggler + barrier ({expected_min})",
            r.total_ns
        );
        assert!(r.total_ns < expected_min + 100.0);
    }

    #[test]
    fn barrier_releases_when_other_threads_finish() {
        // One thread hits a barrier, the other simply ends: the waiter must
        // not deadlock.
        let cfg = MachineConfig::single_core();
        let sim = Simulator::new(cfg);
        let r = sim
            .run(vec![
                ThreadSpec::on_core(
                    0,
                    Box::new(VecProgram::new(vec![
                        Op::Barrier,
                        Op::Compute { cycles: 5.0 },
                    ])),
                ),
                ThreadSpec::on_core(
                    0,
                    Box::new(VecProgram::new(vec![Op::Compute { cycles: 2000.0 }])),
                ),
            ])
            .unwrap();
        assert!(r.total_ns.is_finite());
        assert!(r.total_ns > 0.0);
    }

    #[test]
    fn consecutive_barriers_work() {
        let cfg = MachineConfig::single_core();
        let make = || {
            Box::new(VecProgram::new(vec![
                Op::Barrier,
                Op::Compute { cycles: 10.0 },
                Op::Barrier,
                Op::Compute { cycles: 10.0 },
            ])) as Box<dyn Program>
        };
        let r = Simulator::new(cfg.clone())
            .run(vec![
                ThreadSpec::on_core(0, make()),
                ThreadSpec::on_core(0, make()),
            ])
            .unwrap();
        assert!(r.total_ns >= 2.0 * cfg.barrier_latency_ns());
    }

    #[test]
    fn tracing_records_ordered_events_up_to_the_limit() {
        let cfg = MachineConfig::single_core();
        let ops = vec![
            Op::Compute { cycles: 10.0 },
            Op::Load {
                slice: 0,
                bytes: 64.0,
                tag: OpTag::FeatureRead,
            },
            Op::Dma {
                read_slice: Some(0),
                write_slice: None,
                bytes: 128.0,
                tag: OpTag::FeatureRead,
            },
            Op::DmaWait,
        ];
        let (result, trace) = Simulator::new(cfg)
            .run_traced(
                vec![ThreadSpec::on_core(
                    0,
                    Box::new(VecProgram::new(ops.clone())),
                )],
                100,
            )
            .unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0].kind, "compute");
        assert_eq!(trace[1].kind, "load");
        assert_eq!(trace[2].kind, "dma");
        assert_eq!(trace[3].kind, "dma_wait");
        for w in trace.windows(2) {
            assert!(w[1].start_ns >= w[0].start_ns);
        }
        assert!(trace.iter().all(|e| e.end_ns >= e.start_ns));

        // The limit truncates; a zero limit disables tracing entirely, and
        // timing is identical either way.
        let (r2, t2) = Simulator::new(MachineConfig::single_core())
            .run_traced(
                vec![ThreadSpec::on_core(0, Box::new(VecProgram::new(ops)))],
                2,
            )
            .unwrap();
        assert_eq!(t2.len(), 2);
        assert_eq!(r2.total_ns, result.total_ns);
    }

    #[test]
    fn utilizations_are_fractions() {
        let cfg = MachineConfig::single_core();
        let r = one_thread(
            cfg,
            vec![
                Op::Compute { cycles: 100.0 },
                Op::Load {
                    slice: 0,
                    bytes: 64.0,
                    tag: OpTag::FeatureRead,
                },
            ],
        );
        for u in [
            r.dram_utilization,
            r.dma_utilization,
            r.pipeline_utilization,
        ] {
            assert!((0.0..=1.0).contains(&u));
        }
        assert!(r.pipeline_utilization > 0.0);
    }

    fn load_program(n: usize) -> Vec<Op> {
        vec![
            Op::Load {
                slice: 0,
                bytes: 64.0,
                tag: OpTag::FeatureRead,
            };
            n
        ]
    }

    #[test]
    fn guarded_run_with_unbounded_guard_matches_plain_run() {
        let cfg = MachineConfig::single_core();
        let plain = one_thread(cfg.clone(), load_program(16));
        let guard = RunGuard::unbounded();
        let outcome = Simulator::new(cfg)
            .run_guarded(
                vec![ThreadSpec::on_core(
                    0,
                    Box::new(VecProgram::new(load_program(16))),
                )],
                &guard,
            )
            .unwrap();
        match outcome {
            RunOutcome::Complete(r) => assert_eq!(r.total_ns, plain.total_ns),
            RunOutcome::Partial { .. } => panic!("unbounded guard stopped the run"),
        }
    }

    #[test]
    fn cancelled_token_yields_partial_before_first_event() {
        let token = CancelToken::new();
        token.cancel();
        let guard = RunGuard::with_token(token);
        let outcome = Simulator::new(MachineConfig::single_core())
            .run_guarded(
                vec![ThreadSpec::on_core(
                    0,
                    Box::new(VecProgram::new(load_program(16))),
                )],
                &guard,
            )
            .unwrap();
        match outcome {
            RunOutcome::Partial { reason, .. } => {
                assert_eq!(reason, StopReason::Cancelled);
            }
            RunOutcome::Complete(_) => panic!("cancelled run completed"),
        }
    }

    #[test]
    fn zero_budget_yields_partial() {
        let guard = RunGuard::with_budget(std::time::Duration::ZERO);
        let outcome = Simulator::new(MachineConfig::single_core())
            .run_guarded(
                vec![ThreadSpec::on_core(
                    0,
                    Box::new(VecProgram::new(load_program(64))),
                )],
                &guard,
            )
            .unwrap();
        match outcome {
            RunOutcome::Partial { reason, .. } => {
                assert_eq!(reason, StopReason::BudgetExceeded);
            }
            RunOutcome::Complete(_) => panic!("zero-budget run completed"),
        }
    }

    #[test]
    fn armed_sim_run_fault_surfaces_as_typed_error() {
        use resilience::fault::{self, FaultConfig, FaultKind};
        let _armed = fault::arm(FaultConfig::new(3).point("sim.run", FaultKind::Error, 1.0));
        let err = Simulator::new(MachineConfig::single_core())
            .run(vec![ThreadSpec::on_core(
                0,
                Box::new(VecProgram::new(load_program(4))),
            )])
            .unwrap_err();
        assert_eq!(err, SimError::Fault { site: "sim.run" });
    }
}
