//! Disarmed fault points must be free: no allocations, no locks.
//!
//! The same counting-allocator pattern as `gcn/tests/workspace_alloc.rs`
//! pins the "guaranteed no-op when disabled" contract of `fault_point!` /
//! `fault_point_err!`: a million disarmed visits allocate zero bytes.
//! (`FAULT_SEED` must not be set when running this test binary; the first
//! assertion checks that.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATED_BYTES: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a transparent wrapper over `System`; every method forwards the
// caller's layout/pointer untouched, so `System`'s contract is preserved.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same layout contract as `System::alloc`, forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s layout contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same pointer/layout contract as `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `alloc` above with this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System::realloc`, forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(new_size.saturating_sub(layout.size()), Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn guarded_step(x: u64) -> Result<u64, String> {
    resilience::fault_point!("zero_cost.step");
    resilience::fault_point_err!("zero_cost.step.err", "injected".to_string());
    Ok(x.wrapping_mul(0x9e37_79b9).rotate_left(13))
}

#[test]
fn disarmed_fault_points_allocate_nothing() {
    assert!(
        std::env::var("FAULT_SEED").is_err(),
        "this test measures the DISARMED path; unset FAULT_SEED"
    );

    // Warm-up: the very first `armed()` call runs the one-time env probe,
    // which may allocate (env::var returns a String). Pay it here.
    let mut acc = 0u64;
    acc = acc.wrapping_add(guarded_step(acc).unwrap());

    ALLOCATED_BYTES.store(0, Ordering::Relaxed);
    for _ in 0..1_000_000 {
        acc = acc.wrapping_add(guarded_step(acc).unwrap());
    }
    let bytes = ALLOCATED_BYTES.load(Ordering::Relaxed);
    assert_eq!(
        bytes, 0,
        "1M disarmed fault-point visits allocated {bytes} bytes (acc={acc})"
    );
}
