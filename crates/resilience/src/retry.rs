//! Bounded retry with backoff, converting escaped panics into values.
//!
//! The retry loop wraps each attempt in `catch_unwind`, so a panicking
//! kernel (injected or real) becomes a recoverable [`Failure::Panic`]
//! rather than taking the process down. This is only sound for attempts
//! that are *idempotent re-runs from scratch*: every `*_into` kernel in
//! this workspace fully overwrites its output buffer, so a half-written
//! buffer from a crashed attempt is erased by the next one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// How many attempts to make and how long to pause between them.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum attempts, including the first (`0` is treated as `1`).
    pub attempts: u32,
    /// Pause before the first re-attempt.
    pub backoff: Duration,
    /// Multiplier applied to the pause after each failed attempt.
    pub multiplier: u32,
    /// Upper bound on the pause between attempts.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts with 1 ms → 2 ms → 4 ms backoff.
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            backoff: Duration::from_millis(1),
            multiplier: 2,
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy with `attempts` tries and no pause between them.
    pub fn immediate(attempts: u32) -> Self {
        RetryPolicy {
            attempts,
            backoff: Duration::ZERO,
            multiplier: 1,
            max_backoff: Duration::ZERO,
        }
    }
}

/// One failed attempt: a typed error or a caught panic.
#[derive(Debug)]
pub enum Failure<E> {
    /// The attempt returned `Err`.
    Error(E),
    /// The attempt panicked; the payload rendered as text.
    Panic(String),
}

impl<E: std::fmt::Display> std::fmt::Display for Failure<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Error(e) => write!(f, "error: {e}"),
            Failure::Panic(p) => write!(f, "panic: {p}"),
        }
    }
}

/// All attempts failed.
#[derive(Debug)]
pub struct RetryError<E> {
    /// How many attempts were made.
    pub attempts: u32,
    /// The failure from the final attempt.
    pub last: Failure<E>,
}

impl<E: std::fmt::Display> std::fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "all {} attempts failed; last: {}",
            self.attempts, self.last
        )
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for RetryError<E> {}

/// A successful value plus how much recovery it took to get it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery<T> {
    /// The successful result.
    pub value: T,
    /// Attempts made, including the successful one (`1` = first try).
    pub attempts: u32,
    /// Panics caught and retried on the way.
    pub recovered_panics: u32,
    /// Typed errors retried on the way.
    pub recovered_errors: u32,
}

/// Render a caught panic payload as text (`&str` and `String` payloads
/// pass through; anything else becomes a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        // lint:allow(L009): failure path only — runs after a panic was
        // already caught, so the steady-state hot loop never gets here.
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        // lint:allow(L009): failure path only (see above).
        "non-string panic payload".to_string()
    }
}

/// Run `f` until it succeeds or the policy is exhausted, catching panics.
///
/// `f` must be an idempotent re-run from scratch (see module docs) — that
/// is why wrapping it in `AssertUnwindSafe` is sound: no attempt observes
/// state a previous crashed attempt left behind.
pub fn run<T, E, F>(policy: &RetryPolicy, mut f: F) -> Result<Recovery<T>, RetryError<E>>
where
    F: FnMut() -> Result<T, E>,
{
    let attempts = policy.attempts.max(1);
    let mut pause = policy.backoff;
    let mut recovered_panics = 0;
    let mut recovered_errors = 0;
    let mut made = 0;
    loop {
        made += 1;
        let outcome = catch_unwind(AssertUnwindSafe(&mut f));
        let failure = match outcome {
            Ok(Ok(value)) => {
                return Ok(Recovery {
                    value,
                    attempts: made,
                    recovered_panics,
                    recovered_errors,
                })
            }
            Ok(Err(e)) => Failure::Error(e),
            Err(payload) => Failure::Panic(panic_message(payload.as_ref())),
        };
        if made >= attempts {
            return Err(RetryError {
                attempts: made,
                last: failure,
            });
        }
        match failure {
            Failure::Error(_) => recovered_errors += 1,
            Failure::Panic(_) => recovered_panics += 1,
        }
        if !pause.is_zero() {
            std::thread::sleep(pause.min(policy.max_backoff));
            pause = pause.saturating_mul(policy.multiplier.max(1));
        }
    }
}

/// Replace the global panic hook with a silent one for the guard's
/// lifetime; restores the previous hook on drop.
///
/// Chaos tests inject hundreds of panics that are all caught and retried;
/// without this the default hook floods stderr with expected backtraces.
/// The hook is process-global, so hold this only inside regions already
/// serialized by [`fault::arm`](crate::fault::arm).
pub fn quiet_panics() -> QuietPanicGuard {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    QuietPanicGuard { prev: Some(prev) }
}

/// The boxed process-global panic hook, as stored by `std::panic`.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// Guard returned by [`quiet_panics`].
pub struct QuietPanicGuard {
    prev: Option<PanicHook>,
}

impl Drop for QuietPanicGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_is_one_attempt() {
        let r: Recovery<u32> = run(&RetryPolicy::default(), || Ok::<_, String>(5)).unwrap();
        assert_eq!(r.value, 5);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.recovered_panics + r.recovered_errors, 0);
    }

    #[test]
    fn recovers_from_panics_and_errors() {
        let _quiet = quiet_panics();
        let mut n = 0;
        let r = run(&RetryPolicy::immediate(4), || {
            n += 1;
            match n {
                1 => panic!("injected"),
                2 => Err("typed".to_string()),
                _ => Ok(n),
            }
        })
        .unwrap();
        assert_eq!(r.value, 3);
        assert_eq!(r.attempts, 3);
        assert_eq!(r.recovered_panics, 1);
        assert_eq!(r.recovered_errors, 1);
    }

    #[test]
    fn exhaustion_reports_last_failure() {
        let _quiet = quiet_panics();
        let err = run::<u32, _, _>(&RetryPolicy::immediate(2), || {
            Err::<u32, _>("always".to_string())
        })
        .unwrap_err();
        assert_eq!(err.attempts, 2);
        assert!(matches!(err.last, Failure::Error(ref e) if e == "always"));
        assert!(err.to_string().contains("2 attempts"));
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let _quiet = quiet_panics();
        let p = catch_unwind(|| panic!("literal")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "literal");
        let p = catch_unwind(|| panic!("{}", String::from("formatted"))).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted");
    }
}
