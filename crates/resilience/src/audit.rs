//! Poisoned-lock recovery with an audit trail.
//!
//! A `std::sync::Mutex` is poisoned when a thread panics while holding it.
//! For the locks in this workspace that is never a correctness problem:
//! they guard either plain counters or buffers that the next job fully
//! overwrites, so the right response is to take the data anyway via
//! `PoisonError::into_inner`. PR 3 established that idiom in the GEMM
//! kernels; this module centralizes it and *counts* every recovery, so
//! chaos tests can assert that injected panics actually exercised the
//! poisoning path and operators can see it in [`PoolHealth`-style
//! reports](crate::guard).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

static RECOVERIES: AtomicU64 = AtomicU64::new(0);
// Small, touched only on the (rare) recovery path; keyed by site name.
static SITES: Mutex<Vec<(&'static str, u64)>> = Mutex::new(Vec::new());

fn note(site: &'static str) {
    // lint:allow(L006): monotonic event counter; readers only need an
    // eventually-consistent total.
    RECOVERIES.fetch_add(1, Ordering::Relaxed);
    let mut sites = SITES.lock().unwrap_or_else(|e| e.into_inner());
    match sites.iter_mut().find(|(s, _)| *s == site) {
        Some((_, n)) => *n += 1,
        None => sites.push((site, 1)),
    }
}

/// Lock `m`, recovering (and recording) if the lock is poisoned.
///
/// Use only for locks whose protected data stays valid across a panic —
/// counters, fully-overwritten buffers, registries. The `site` name tags
/// the recovery in [`recovery_log`].
pub fn recover<'a, T>(site: &'static str, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(e) => {
            note(site);
            e.into_inner()
        }
    }
}

/// Consume `m` and return its data, recovering (and recording) if the
/// lock is poisoned. The by-value analogue of [`recover`] for the
/// end-of-run pattern `Mutex::into_inner`.
pub fn recover_into<T>(site: &'static str, m: Mutex<T>) -> T {
    match m.into_inner() {
        Ok(v) => v,
        Err(e) => {
            note(site);
            e.into_inner()
        }
    }
}

/// Exclusive-access analogue of [`recover`]: `Mutex::get_mut` for owners
/// holding `&mut`, recovering (and recording) if the lock is poisoned.
pub fn recover_mut<'a, T>(site: &'static str, m: &'a mut Mutex<T>) -> &'a mut T {
    match m.get_mut() {
        Ok(v) => v,
        Err(e) => {
            note(site);
            e.into_inner()
        }
    }
}

/// `Condvar::wait` with the same poisoning-recovery policy as [`recover`].
pub fn recover_wait<'a, T>(
    site: &'static str,
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(e) => {
            note(site);
            e.into_inner()
        }
    }
}

/// `Condvar::wait_timeout` with the same poisoning-recovery policy as
/// [`recover`]. Returns the reacquired guard and whether the wait timed
/// out (`true` = the duration elapsed without a notification). The
/// serving batcher's window wait uses this so a panic injected into a
/// producer never wedges a consumer on a poisoned queue lock.
pub fn recover_wait_timeout<'a, T>(
    site: &'static str,
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: std::time::Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(e) => {
            note(site);
            let (g, t) = e.into_inner();
            (g, t.timed_out())
        }
    }
}

/// Total poisoned-lock recoveries since process start.
pub fn poison_recoveries() -> u64 {
    // lint:allow(L006): see note(); monotonic counter read.
    RECOVERIES.load(Ordering::Relaxed)
}

/// Per-site recovery counts, for diagnostics and chaos-test assertions.
pub fn recovery_log() -> Vec<(&'static str, u64)> {
    SITES.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_from_poison_and_counts_it() {
        let m = Arc::new(Mutex::new(41u32));
        let m2 = Arc::clone(&m);
        let before = poison_recoveries();
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(m.is_poisoned());
        let mut g = recover("test.audit", &m);
        *g += 1;
        assert_eq!(*g, 42);
        drop(g);
        assert_eq!(poison_recoveries(), before + 1);
        assert!(recovery_log()
            .iter()
            .any(|(s, n)| *s == "test.audit" && *n >= 1));
    }

    #[test]
    fn recover_into_and_mut_take_poisoned_data() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison");
        })
        .join();
        let before = poison_recoveries();
        let mut m = Arc::into_inner(m).expect("sole owner");
        assert_eq!(*recover_mut("test.audit.mut", &mut m), 7);
        assert_eq!(recover_into("test.audit.into", m), 7);
        assert_eq!(poison_recoveries(), before + 2);
    }

    #[test]
    fn clean_lock_is_not_counted() {
        let m = Mutex::new(0u32);
        let before = poison_recoveries();
        drop(recover("test.audit.clean", &m));
        assert_eq!(poison_recoveries(), before);
    }
}
