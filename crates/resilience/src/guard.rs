//! Cooperative cancellation and wall-clock budgets for long runs.
//!
//! Simulator sweeps and multi-layer inference can run for a long time; a
//! production serving system needs to bound them without killing the
//! process. A [`RunGuard`] combines an optional [`CancelToken`] (another
//! thread asks the run to stop) with an optional wall-clock budget; the
//! instrumented loop polls [`RunGuard::should_stop`] at safe points and,
//! when asked to stop, returns a typed [`RunOutcome::Partial`] carrying
//! whatever progress it made instead of hanging or discarding it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared flag a controller sets to ask a running computation to stop.
///
/// Clones share the flag. Cancellation is sticky: once cancelled, always
/// cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ask every computation holding a clone of this token to stop.
    pub fn cancel(&self) {
        // lint:allow(L006): sticky one-way flag polled at loop safe points;
        // no data is published through it.
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](Self::cancel) been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        // lint:allow(L006): see cancel().
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a guarded run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock budget was exhausted.
    BudgetExceeded,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::BudgetExceeded => write!(f, "wall-clock budget exceeded"),
        }
    }
}

/// Combined cancellation + wall-clock budget for one run.
#[derive(Debug, Clone)]
pub struct RunGuard {
    token: Option<CancelToken>,
    deadline: Option<Instant>,
    started: Instant,
}

impl RunGuard {
    /// A guard that never stops the run (both mechanisms disabled).
    pub fn unbounded() -> Self {
        RunGuard {
            token: None,
            deadline: None,
            started: Instant::now(),
        }
    }

    /// Stop the run once `budget` of wall-clock time has elapsed
    /// (measured from this call).
    pub fn with_budget(budget: Duration) -> Self {
        RunGuard::unbounded().and_budget(budget)
    }

    /// Stop the run when `token` is cancelled.
    pub fn with_token(token: CancelToken) -> Self {
        RunGuard::unbounded().and_token(token)
    }

    /// Add a wall-clock budget to this guard (measured from now).
    ///
    /// If the guard already carries a deadline — e.g. it was derived from
    /// an enclosing guard via [`RunGuard::child`] — the **tighter** of the
    /// two wins: a budget added inside an already-guarded region can only
    /// shrink the remaining time, never extend past the outer deadline.
    pub fn and_budget(mut self, budget: Duration) -> Self {
        let candidate = Instant::now() + budget;
        self.deadline = Some(match self.deadline {
            Some(existing) => existing.min(candidate),
            None => candidate,
        });
        self
    }

    /// Add a cancellation token to this guard.
    pub fn and_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Derive a guard for a nested region: the child shares this guard's
    /// cancellation token and inherits its deadline, so budgets added to
    /// the child (via [`RunGuard::and_budget`]) are clamped to the outer
    /// deadline. Cancelling the parent's token cancels the child; the
    /// child's elapsed clock restarts at this call.
    pub fn child(&self) -> Self {
        RunGuard {
            token: self.token.clone(),
            deadline: self.deadline,
            started: Instant::now(),
        }
    }

    /// [`RunGuard::child`] with an additional budget for the nested
    /// region — the effective deadline is the tighter of the parent's
    /// deadline and `now + budget`.
    pub fn child_with_budget(&self, budget: Duration) -> Self {
        self.child().and_budget(budget)
    }

    /// Time remaining until the deadline, if one is set. Zero once the
    /// deadline has passed. Admission controllers use this to shed
    /// requests whose estimated service time exceeds the remaining
    /// budget rather than letting them time out mid-run.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Poll at loop safe points: `Some(reason)` once the run should stop.
    /// Cancellation takes priority over the budget.
    pub fn should_stop(&self) -> Option<StopReason> {
        if self.token.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopReason::BudgetExceeded);
        }
        None
    }

    /// Wall-clock time since the guard was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Default for RunGuard {
    fn default() -> Self {
        RunGuard::unbounded()
    }
}

/// Result of a guarded run: finished, or typed partial progress.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome<T> {
    /// The run finished normally; the value is final.
    Complete(T),
    /// The guard stopped the run; `value` holds the progress made so far.
    Partial {
        /// Progress made before the stop (semantics defined per call site,
        /// e.g. "activations after `layers_done` layers").
        value: T,
        /// Why the run stopped.
        reason: StopReason,
    },
}

impl<T> RunOutcome<T> {
    /// Did the run finish without being stopped?
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Complete(_))
    }

    /// The stop reason, if the run was cut short.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            RunOutcome::Complete(_) => None,
            RunOutcome::Partial { reason, .. } => Some(*reason),
        }
    }

    /// The carried value (complete or partial), by reference.
    pub fn get(&self) -> &T {
        match self {
            RunOutcome::Complete(v) | RunOutcome::Partial { value: v, .. } => v,
        }
    }

    /// Consume the outcome, keeping the carried value.
    pub fn into_value(self) -> T {
        match self {
            RunOutcome::Complete(v) | RunOutcome::Partial { value: v, .. } => v,
        }
    }

    /// Map the carried value, preserving completeness.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> RunOutcome<U> {
        match self {
            RunOutcome::Complete(v) => RunOutcome::Complete(f(v)),
            RunOutcome::Partial { value, reason } => RunOutcome::Partial {
                value: f(value),
                reason,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_stops() {
        let g = RunGuard::unbounded();
        assert_eq!(g.should_stop(), None);
    }

    #[test]
    fn cancellation_is_sticky_and_shared() {
        let t = CancelToken::new();
        let g = RunGuard::with_token(t.clone());
        assert_eq!(g.should_stop(), None);
        t.cancel();
        assert_eq!(g.should_stop(), Some(StopReason::Cancelled));
        assert!(t.clone().is_cancelled());
    }

    #[test]
    fn zero_budget_stops_immediately() {
        let g = RunGuard::with_budget(Duration::ZERO);
        assert_eq!(g.should_stop(), Some(StopReason::BudgetExceeded));
    }

    #[test]
    fn cancellation_outranks_budget() {
        let t = CancelToken::new();
        t.cancel();
        let g = RunGuard::with_budget(Duration::ZERO).and_token(t);
        assert_eq!(g.should_stop(), Some(StopReason::Cancelled));
    }

    #[test]
    fn nested_budget_cannot_extend_outer_deadline() {
        // Outer guard with an already-expired budget; an inner region
        // asking for a generous budget must stay expired.
        let outer = RunGuard::with_budget(Duration::ZERO);
        let inner = outer.child_with_budget(Duration::from_secs(3600));
        assert_eq!(inner.should_stop(), Some(StopReason::BudgetExceeded));
        // and_budget on an existing guard clamps the same way.
        let extended = outer.clone().and_budget(Duration::from_secs(3600));
        assert_eq!(extended.should_stop(), Some(StopReason::BudgetExceeded));
    }

    #[test]
    fn nested_budget_can_tighten() {
        let outer = RunGuard::with_budget(Duration::from_secs(3600));
        let inner = outer.child_with_budget(Duration::ZERO);
        assert_eq!(inner.should_stop(), Some(StopReason::BudgetExceeded));
        assert_eq!(outer.should_stop(), None);
    }

    #[test]
    fn child_shares_cancellation() {
        let t = CancelToken::new();
        let outer = RunGuard::with_token(t.clone());
        let inner = outer.child();
        assert_eq!(inner.should_stop(), None);
        t.cancel();
        assert_eq!(inner.should_stop(), Some(StopReason::Cancelled));
    }

    #[test]
    fn remaining_reports_time_left() {
        assert_eq!(RunGuard::unbounded().remaining(), None);
        let g = RunGuard::with_budget(Duration::from_secs(3600));
        let r = g.remaining().expect("budgeted guard has a deadline");
        assert!(r > Duration::from_secs(3500));
        assert_eq!(
            RunGuard::with_budget(Duration::ZERO).remaining(),
            Some(Duration::ZERO)
        );
    }

    #[test]
    fn outcome_accessors() {
        let c: RunOutcome<u32> = RunOutcome::Complete(3);
        assert!(c.is_complete());
        assert_eq!(*c.get(), 3);
        assert_eq!(c.map(|v| v + 1).into_value(), 4);
        let p = RunOutcome::Partial {
            value: 7u32,
            reason: StopReason::BudgetExceeded,
        };
        assert!(!p.is_complete());
        assert_eq!(p.stop_reason(), Some(StopReason::BudgetExceeded));
        assert_eq!(p.into_value(), 7);
    }
}
