//! Deterministic, seeded fault-injection registry.
//!
//! Call sites are instrumented with [`fault_point!`] (panics / artificial
//! latency at an execution point) or [`fault_point_err!`] (typed early
//! `return Err(..)`). Each site is identified by a `&'static str` name such
//! as `"pool.worker"` or `"graph.io.matrix_market"`.
//!
//! # Disarmed cost
//!
//! When injection is disarmed — the default — a fault point is a single
//! relaxed atomic load and a never-taken branch. No allocation, no lock,
//! no syscall. `crates/resilience/tests/zero_cost.rs` pins this with a
//! counting global allocator.
//!
//! # Arming
//!
//! * Environment: setting `FAULT_SEED=<u64>` arms the process-wide
//!   registry at first use. `FAULT_RATE=<f64>` (default `0.01`) sets the
//!   per-site firing probability, `FAULT_LATENCY_US=<u64>` (default `50`)
//!   the injected sleep, and `FAULT_POINTS=prefix=kind:rate,...` installs
//!   per-point overrides (e.g. `FAULT_POINTS=pool.=panic:0.05,sim.=latency`).
//! * Programmatic: [`arm`] installs a [`FaultConfig`] and returns an
//!   [`ArmedGuard`] that serializes armed regions across threads (tests in
//!   one binary cannot interleave two different fault configurations) and
//!   disarms on drop.
//!
//! # Determinism
//!
//! Whether a site fires on its `n`-th visit is a pure function of
//! `(seed, site name, n)` via an FNV-1a hash — independent of timing,
//! thread interleaving, and pointer addresses — so a failing chaos seed
//! replays exactly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once};
use std::time::Duration;

/// Which failure mode a fault site injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind with `panic!` at the site.
    Panic,
    /// Sleep for the configured latency, then continue normally.
    Latency,
    /// Make [`should_fail`] return `true`, so a `fault_point_err!` site
    /// returns its typed error.
    Error,
}

/// Per-point override selected by site-name prefix.
#[derive(Debug, Clone)]
pub struct PointOverride {
    /// Matches every site whose name starts with this prefix.
    pub prefix: String,
    /// Firing probability for matched sites (overrides the global rate).
    pub rate: f64,
    /// Pin the failure mode for matched sites instead of deriving it from
    /// the hash stream.
    pub kind: Option<FaultKind>,
}

/// Configuration installed by [`arm`] (or parsed from the environment).
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the deterministic firing decisions.
    pub seed: u64,
    /// Default per-visit firing probability for every site.
    pub rate: f64,
    /// Sleep injected when a site fires with [`FaultKind::Latency`].
    pub latency: Duration,
    /// Prefix-matched per-point overrides; first match wins.
    pub overrides: Vec<PointOverride>,
}

impl FaultConfig {
    /// A config that fires nowhere; use the builder methods to enable sites.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            rate: 0.0,
            latency: Duration::from_micros(50),
            overrides: Vec::new(),
        }
    }

    /// Set the global per-visit firing probability.
    pub fn rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Set the injected latency for [`FaultKind::Latency`] firings.
    pub fn latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Add a per-point override for sites starting with `prefix`.
    pub fn point(mut self, prefix: &str, kind: FaultKind, rate: f64) -> Self {
        self.overrides.push(PointOverride {
            prefix: prefix.to_string(),
            rate,
            kind: Some(kind),
        });
        self
    }

    /// Seed + rate from `FAULT_SEED` / `FAULT_RATE` if set, else the given
    /// defaults. Used by chaos tests so a CI matrix can redirect the seed.
    pub fn from_env_or(seed: u64, rate: f64) -> Self {
        let seed = std::env::var("FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(seed);
        let rate = std::env::var("FAULT_RATE")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(rate);
        FaultConfig::new(seed).rate(rate)
    }
}

/// Counters for one fault site, reported by [`stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Times the site was visited while armed.
    pub visits: u64,
    /// Panics injected.
    pub panics: u64,
    /// Latency injections.
    pub latencies: u64,
    /// Typed-error injections.
    pub errors: u64,
}

/// Snapshot of all per-site counters since the registry was (re)armed.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Per-site counters keyed by site name.
    pub sites: BTreeMap<&'static str, SiteStats>,
}

impl FaultStats {
    /// Total injected failures (panics + latencies + errors) across sites.
    pub fn total_injected(&self) -> u64 {
        self.sites
            .values()
            .map(|s| s.panics + s.latencies + s.errors)
            .sum()
    }

    /// Total site visits while armed.
    pub fn total_visits(&self) -> u64 {
        self.sites.values().map(|s| s.visits).sum()
    }
}

struct Registry {
    config: FaultConfig,
    sites: BTreeMap<&'static str, SiteStats>,
}

// Fast-path flag: a disarmed fault point reads only this.
static ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);
// Serializes armed regions: two tests arming different configs in the same
// binary must not interleave.
static ARM_LOCK: Mutex<()> = Mutex::new(());

/// `true` if fault injection is currently armed. The disarmed path is a
/// relaxed load (after a one-time env probe) — no allocation, no lock.
#[inline]
pub fn armed() -> bool {
    ENV_INIT.call_once(init_from_env);
    // lint:allow(L006): monotonic arm/disarm flag; the registry mutex inside
    // the armed slow path publishes the configuration itself.
    ARMED.load(Ordering::Relaxed)
}

fn init_from_env() {
    let Ok(seed) = std::env::var("FAULT_SEED") else {
        return;
    };
    let Ok(seed) = seed.trim().parse::<u64>() else {
        return;
    };
    let rate = std::env::var("FAULT_RATE")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0.01);
    let latency_us = std::env::var("FAULT_LATENCY_US")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(50);
    let mut config = FaultConfig::new(seed)
        .rate(rate)
        .latency(Duration::from_micros(latency_us));
    if let Ok(points) = std::env::var("FAULT_POINTS") {
        config.overrides.extend(parse_points(&points));
    }
    install(config);
}

/// Parse `prefix=kind:rate` entries separated by `,` or `;`. `kind` and
/// `rate` are each optional (`pool.=panic`, `sim.=0.5`, `io=error:0.2`).
fn parse_points(spec: &str) -> Vec<PointOverride> {
    let mut out = Vec::new();
    for entry in spec.split([',', ';']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let Some((prefix, val)) = entry.split_once('=') else {
            continue;
        };
        let mut kind = None;
        let mut rate = 1.0;
        for part in val.split(':') {
            match part.trim() {
                "panic" => kind = Some(FaultKind::Panic),
                "latency" => kind = Some(FaultKind::Latency),
                "error" => kind = Some(FaultKind::Error),
                other => {
                    if let Ok(r) = other.parse::<f64>() {
                        rate = r;
                    }
                }
            }
        }
        out.push(PointOverride {
            prefix: prefix.trim().to_string(),
            rate,
            kind,
        });
    }
    out
}

fn install(config: FaultConfig) {
    let mut reg = audit::recover("resilience.registry", &REGISTRY);
    *reg = Some(Registry {
        config,
        sites: BTreeMap::new(),
    });
    // lint:allow(L006): flag readers re-check under the registry mutex.
    ARMED.store(true, Ordering::Relaxed);
}

use crate::audit;

/// Guard returned by [`arm`]; disarms the registry when dropped and holds
/// the global arm lock so armed regions never interleave across threads.
pub struct ArmedGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        // lint:allow(L006): see install().
        ARMED.store(false, Ordering::Relaxed);
        *audit::recover("resilience.registry", &REGISTRY) = None;
    }
}

/// Arm fault injection with `config` for the lifetime of the returned
/// guard. Blocks until any other armed region has been dropped.
pub fn arm(config: FaultConfig) -> ArmedGuard {
    ENV_INIT.call_once(|| {}); // programmatic arming preempts env arming
    let lock = audit::recover("resilience.arm_lock", &ARM_LOCK);
    install(config);
    ArmedGuard { _lock: lock }
}

/// Snapshot the per-site counters of the currently armed registry
/// (empty when disarmed).
pub fn stats() -> FaultStats {
    let reg = audit::recover("resilience.registry", &REGISTRY);
    match reg.as_ref() {
        Some(r) => FaultStats {
            sites: r.sites.clone(),
        },
        None => FaultStats::default(),
    }
}

/// FNV-1a over the seed, site name, and per-site visit counter: the firing
/// decision stream is reproducible regardless of thread interleaving.
fn decision_hash(seed: u64, site: &str, visit: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in seed.to_le_bytes() {
        mix(b);
    }
    for &b in site.as_bytes() {
        mix(b);
    }
    for b in visit.to_le_bytes() {
        mix(b);
    }
    h
}

fn unit_interval(h: u64) -> f64 {
    // Top 53 bits → [0, 1); f64 has exactly 53 bits of mantissa.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Decide whether `site` fires on this visit and with which kind.
/// Returns the action plus the configured latency (for `Latency` firings).
fn decide(site: &'static str, err_site: bool) -> Option<(FaultKind, Duration)> {
    let mut reg = audit::recover("resilience.registry", &REGISTRY);
    let reg = reg.as_mut()?;
    let stats = reg.sites.entry(site).or_default();
    let visit = stats.visits;
    stats.visits += 1;

    let over = reg
        .config
        .overrides
        .iter()
        .find(|o| site.starts_with(o.prefix.as_str()));
    let rate = over.map_or(reg.config.rate, |o| o.rate);
    let pinned = over.and_then(|o| o.kind);

    let h = decision_hash(reg.config.seed, site, visit);
    if unit_interval(h) >= rate {
        return None;
    }
    // A second, independent hash stream picks the kind when not pinned.
    let kind = pinned.unwrap_or_else(|| {
        let k = decision_hash(reg.config.seed ^ 0x9e37_79b9_7f4a_7c15, site, visit);
        if err_site {
            FaultKind::Error
        } else if k & 1 == 0 {
            FaultKind::Panic
        } else {
            FaultKind::Latency
        }
    });
    match kind {
        FaultKind::Panic => stats.panics += 1,
        FaultKind::Latency => stats.latencies += 1,
        FaultKind::Error => stats.errors += 1,
    }
    Some((kind, reg.config.latency))
}

/// Slow path of [`fault_point!`]: called only while armed. May panic or
/// sleep; an `Error` decision at a plain execution point falls back to a
/// panic (there is no error channel to return through).
#[cold]
pub fn inject_execution(site: &'static str) {
    // The registry lock is released before panicking/sleeping: `decide`
    // returns the action, we perform it here.
    match decide(site, false) {
        Some((FaultKind::Latency, latency)) => std::thread::sleep(latency),
        Some((FaultKind::Panic | FaultKind::Error, _)) => {
            panic!("injected fault at `{site}`")
        }
        None => {}
    }
}

/// Slow path of [`fault_point_err!`]: called only while armed. Returns
/// `true` when the site should return its typed error this visit; a pinned
/// `Panic` kind panics instead, a `Latency` kind sleeps and returns `false`.
#[cold]
pub fn should_fail(site: &'static str) -> bool {
    match decide(site, true) {
        Some((FaultKind::Error, _)) => true,
        Some((FaultKind::Panic, _)) => panic!("injected fault at `{site}`"),
        Some((FaultKind::Latency, latency)) => {
            std::thread::sleep(latency);
            false
        }
        None => false,
    }
}

/// Execution fault point: may inject a panic or artificial latency at this
/// site while armed; a guaranteed no-op (one relaxed load) while disarmed.
///
/// ```
/// fn step() {
///     resilience::fault_point!("example.step");
///     // ... real work ...
/// }
/// step();
/// ```
#[macro_export]
macro_rules! fault_point {
    ($site:literal) => {
        if $crate::fault::armed() {
            $crate::fault::inject_execution($site);
        }
    };
}

/// Error-returning fault point: while armed, may `return Err($err)` from
/// the enclosing function at this site; a no-op while disarmed.
///
/// ```
/// fn load() -> Result<u32, String> {
///     resilience::fault_point_err!("example.load", "injected".to_string());
///     Ok(42)
/// }
/// assert_eq!(load(), Ok(42));
/// ```
#[macro_export]
macro_rules! fault_point_err {
    ($site:literal, $err:expr) => {
        if $crate::fault::armed() && $crate::fault::should_fail($site) {
            return Err($err);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_do_nothing() {
        // Not armed (and FAULT_SEED is not set under `cargo test`).
        fault_point!("test.noop");
        let r: Result<u32, &str> = (|| {
            fault_point_err!("test.noop.err", "nope");
            Ok(7)
        })();
        assert_eq!(r, Ok(7));
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let observe = |seed: u64| -> Vec<bool> {
            let _g = arm(FaultConfig::new(seed)
                .rate(0.5)
                .point("test.det", FaultKind::Error, 0.5));
            (0..64).map(|_| should_fail("test.det")).collect()
        };
        let a = observe(42);
        let b = observe(42);
        let c = observe(43);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should differ at rate 0.5");
        assert!(a.iter().any(|&x| x), "rate 0.5 must fire within 64 visits");
        assert!(!a.iter().all(|&x| x), "rate 0.5 must also pass sometimes");
    }

    #[test]
    fn overrides_pin_kind_and_rate() {
        let _g = arm(FaultConfig::new(7).point("test.always", FaultKind::Error, 1.0));
        assert!(should_fail("test.always"));
        // Sites not matching the override use the global rate (0 here).
        assert!(!should_fail("other.site"));
        let s = stats();
        assert_eq!(s.sites["test.always"].errors, 1);
        assert_eq!(s.sites["other.site"].visits, 1);
        assert_eq!(s.sites["other.site"].errors, 0);
    }

    #[test]
    fn injected_panic_is_catchable_and_counted() {
        let _g = arm(FaultConfig::new(1).point("test.boom", FaultKind::Panic, 1.0));
        let r = std::panic::catch_unwind(|| {
            fault_point!("test.boom");
        });
        assert!(r.is_err());
        assert_eq!(stats().sites["test.boom"].panics, 1);
    }

    #[test]
    fn parse_points_grammar() {
        let p = parse_points("pool.=panic:0.5, sim.=latency; io=0.25,junk");
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].prefix, "pool.");
        assert_eq!(p[0].kind, Some(FaultKind::Panic));
        assert!((p[0].rate - 0.5).abs() < 1e-12);
        assert_eq!(p[1].kind, Some(FaultKind::Latency));
        assert!((p[1].rate - 1.0).abs() < 1e-12);
        assert_eq!(p[2].prefix, "io");
        assert_eq!(p[2].kind, None);
        assert!((p[2].rate - 0.25).abs() < 1e-12);
    }
}
