//! Fault injection, retry, run guards, and lock-recovery audit.
//!
//! This crate is the workspace's robustness toolkit. It is deliberately
//! dependency-free so that every other crate — including `pool` (which
//! everything else depends on) and the `piuma-sim` event loop — can use it
//! without dependency cycles.
//!
//! The pieces compose as follows:
//!
//! * [`fault`] — a deterministic, seeded fault-injection registry. Code
//!   under test is instrumented with named [`fault_point!`] /
//!   [`fault_point_err!`] sites that compile to a guaranteed no-op (one
//!   relaxed atomic load, zero allocations) while injection is disarmed,
//!   and inject panics, artificial latency, or typed error returns when
//!   armed via the environment (`FAULT_SEED`, `FAULT_RATE`, `FAULT_POINTS`)
//!   or programmatically via [`fault::arm`].
//! * [`retry`] — bounded retry with backoff that converts escaped panics
//!   into values, so a caller can re-run an idempotent computation after
//!   an injected (or real) crash.
//! * [`guard`] — cooperative cancellation tokens and wall-clock budgets
//!   ([`guard::RunGuard`]) plus the [`guard::RunOutcome`] type that long
//!   runs return instead of hanging: complete, or typed partial progress.
//! * [`audit`] — poisoned-lock recovery helpers that centralize the
//!   `lock().unwrap_or_else(|e| e.into_inner())` idiom and count every
//!   recovery so chaos tests can assert poisoning was actually exercised.

pub mod audit;
pub mod fault;
pub mod guard;
pub mod retry;

pub use fault::{ArmedGuard, FaultConfig, FaultKind, FaultStats};
pub use guard::{CancelToken, RunGuard, RunOutcome, StopReason};
pub use retry::{Failure, Recovery, RetryError, RetryPolicy};
