//! The experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment in [`experiments`] produces an [`ExperimentOutput`]: a
//! set of rendered text tables (printed to the terminal) and CSV files (for
//! plotting). The `repro` binary drives them:
//!
//! ```text
//! repro table1            # Table I
//! repro fig5 --full       # Fig. 5 at full fidelity
//! repro all --out results # everything, CSVs under results/
//! ```
//!
//! The mapping from experiment id to paper figure is catalogued in
//! `DESIGN.md`; expected-shape checks live in `EXPERIMENTS.md` and the
//! workspace integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiments;
pub mod output;
pub mod table;

pub use output::ExperimentOutput;
pub use table::TextTable;
