//! Experiment output container and disk emission.

use std::fmt;
use std::io;
use std::path::Path;

/// The rendered result of one experiment: named text sections for the
/// terminal plus named CSV files for plotting.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOutput {
    /// Experiment id, e.g. `"fig5"`.
    pub name: String,
    /// `(section title, rendered text)` pairs, in display order.
    pub sections: Vec<(String, String)>,
    /// `(file name, csv content)` pairs.
    pub csv_files: Vec<(String, String)>,
}

impl ExperimentOutput {
    /// Creates an empty output for the named experiment.
    pub fn new(name: &str) -> Self {
        ExperimentOutput {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Appends a rendered text section.
    pub fn section(&mut self, title: &str, body: impl fmt::Display) -> &mut Self {
        self.sections.push((title.to_string(), body.to_string()));
        self
    }

    /// Appends a CSV file.
    pub fn csv(&mut self, file_name: &str, content: String) -> &mut Self {
        self.csv_files.push((file_name.to_string(), content));
        self
    }

    /// Writes all CSV files under `dir` (created if needed), prefixed with
    /// the experiment name.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv_files(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (name, content) in &self.csv_files {
            std::fs::write(dir.join(format!("{}_{}", self.name, name)), content)?;
        }
        Ok(())
    }
}

impl fmt::Display for ExperimentOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== {} ====", self.name)?;
        for (title, body) in &self.sections {
            writeln!(f, "\n-- {title} --")?;
            writeln!(f, "{body}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_sections_in_order() {
        let mut o = ExperimentOutput::new("figX");
        o.section("first", "alpha").section("second", "beta");
        let text = o.to_string();
        let a = text.find("alpha").unwrap();
        let b = text.find("beta").unwrap();
        assert!(a < b);
        assert!(text.contains("==== figX ===="));
    }

    #[test]
    fn csv_files_are_written_with_prefix() {
        let dir = std::env::temp_dir().join(format!("report-test-{}", std::process::id()));
        let mut o = ExperimentOutput::new("t1");
        o.csv("data.csv", "a,b\n1,2\n".to_string());
        o.write_csv_files(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t1_data.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
