//! Plain-text table rendering.

use std::fmt;

/// A simple left-padded text table with a header row.
///
/// # Examples
///
/// ```
/// use report::TextTable;
///
/// let mut t = TextTable::new(vec!["name", "value"]);
/// t.row(vec!["alpha".to_string(), "1".to_string()]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("alpha"));
/// assert!(rendered.contains("name"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let escape = |s: &String| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(escape).collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(escape).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, cell) in r.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["1".into(), "22".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bb"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn csv_round_trips_simple_cells() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next(), Some("a,bb"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        TextTable::new(vec!["a", "b"]).row(vec!["1".into()]);
    }
}
