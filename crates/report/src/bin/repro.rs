//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--full] [--out DIR]
//! repro all [--full] [--out DIR]
//! repro --list
//! ```

use report::experiments::{Experiment, Fidelity};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: repro <experiment>... [--full] [--out DIR]\n\
     \n\
     experiments: table1 fig2..fig10 ext_multinode ext_hetero ext_distributed ablation | all\n\
     --full      run simulator experiments at full fidelity (slower)\n\
     --out DIR   also write CSV files under DIR\n\
     --list      list available experiments"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<Experiment> = Vec::new();
    let mut fidelity = Fidelity::Quick;
    let mut out_dir: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => fidelity = Fidelity::Full,
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out requires a directory\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out_dir = Some(PathBuf::from(dir));
            }
            "--list" => {
                for e in Experiment::ALL {
                    println!("{}", e.name());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "all" => experiments.extend(Experiment::ALL),
            name => match Experiment::from_name(name) {
                Some(e) => experiments.push(e),
                None => {
                    eprintln!("unknown experiment '{name}'\n\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
        }
        i += 1;
    }

    if experiments.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    for e in experiments {
        eprintln!("[repro] running {} ({fidelity:?})...", e.name());
        let output = e.run(fidelity);
        println!("{output}");
        if let Some(dir) = &out_dir {
            if let Err(err) = output.write_csv_files(dir) {
                eprintln!("failed to write CSVs for {}: {err}", e.name());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[repro] wrote {} CSV file(s) under {}",
                output.csv_files.len(),
                dir.display()
            );
        }
    }
    ExitCode::SUCCESS
}
