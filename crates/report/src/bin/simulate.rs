//! `simulate` — run a PIUMA kernel over a real graph file.
//!
//! ```text
//! simulate --graph web.mtx --kernel dma --cores 8 --k 64
//! simulate --rmat 14x16 --kernel unrolled --cores 32 --k 256 --latency 360
//! simulate --graph edges.txt --kernel walk --walkers 512 --steps 64
//! ```
//!
//! Graphs load from Matrix Market (`.mtx`) or whitespace edge lists
//! (anything else); `--rmat SxF` generates a power-law R-MAT graph of scale
//! `S` and edge factor `F` instead.

use graph::io::{read_edge_list, read_matrix_market};
use graph::{Graph, RmatConfig};
use piuma_kernels::walk_sim::simulate_random_walks;
use piuma_kernels::{SpmmSimulation, SpmmVariant};
use piuma_sim::MachineConfig;
use sparse::Csr;
use std::io::BufReader;
use std::process::ExitCode;

struct Args {
    graph_path: Option<String>,
    rmat: Option<(u32, usize)>,
    kernel: String,
    cores: usize,
    k: usize,
    latency: Option<f64>,
    threads_per_mtp: Option<usize>,
    walkers: usize,
    steps: usize,
}

fn usage() -> &'static str {
    "usage: simulate (--graph FILE | --rmat SxF) [--kernel dma|unrolled|vertex|walk]\n\
     \n\
     --cores N            PIUMA cores (default 8)\n\
     --k N                embedding dimension for SpMM kernels (default 64)\n\
     --latency NS         DRAM latency override\n\
     --threads N          threads per MTP override\n\
     --walkers N          walkers for the walk kernel (default 512)\n\
     --steps N            steps per walker (default 64)"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        graph_path: None,
        rmat: None,
        kernel: "dma".to_string(),
        cores: 8,
        k: 64,
        latency: None,
        threads_per_mtp: None,
        walkers: 512,
        steps: 64,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--graph" => args.graph_path = Some(value(&argv, i, "--graph")?),
            "--rmat" => {
                let spec = value(&argv, i, "--rmat")?;
                let (s, f) = spec
                    .split_once('x')
                    .ok_or_else(|| format!("--rmat expects SxF, got '{spec}'"))?;
                args.rmat = Some((
                    s.parse().map_err(|e| format!("bad scale: {e}"))?,
                    f.parse().map_err(|e| format!("bad edge factor: {e}"))?,
                ));
            }
            "--kernel" => args.kernel = value(&argv, i, "--kernel")?,
            "--cores" => {
                args.cores = value(&argv, i, "--cores")?
                    .parse()
                    .map_err(|e| format!("bad cores: {e}"))?
            }
            "--k" => {
                args.k = value(&argv, i, "--k")?
                    .parse()
                    .map_err(|e| format!("bad k: {e}"))?
            }
            "--latency" => {
                args.latency = Some(
                    value(&argv, i, "--latency")?
                        .parse()
                        .map_err(|e| format!("bad latency: {e}"))?,
                )
            }
            "--threads" => {
                args.threads_per_mtp = Some(
                    value(&argv, i, "--threads")?
                        .parse()
                        .map_err(|e| format!("bad threads: {e}"))?,
                )
            }
            "--walkers" => {
                args.walkers = value(&argv, i, "--walkers")?
                    .parse()
                    .map_err(|e| format!("bad walkers: {e}"))?
            }
            "--steps" => {
                args.steps = value(&argv, i, "--steps")?
                    .parse()
                    .map_err(|e| format!("bad steps: {e}"))?
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag '{other}'\n\n{}", usage())),
        }
        i += if argv[i].starts_with("--") && argv[i] != "--help" {
            2
        } else {
            1
        };
    }
    if args.graph_path.is_none() && args.rmat.is_none() {
        return Err(format!("need --graph or --rmat\n\n{}", usage()));
    }
    Ok(args)
}

fn load_graph(args: &Args) -> Result<Csr, String> {
    if let Some((scale, factor)) = args.rmat {
        let g = Graph::rmat(&RmatConfig::power_law(scale, factor), 42);
        eprintln!(
            "[simulate] generated rmat: {} vertices, {} edges",
            g.vertices(),
            g.edges()
        );
        return Ok(g.into_adjacency());
    }
    let path = args.graph_path.as_deref().expect("checked in parse_args");
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let reader = BufReader::new(file);
    let csr = if path.ends_with(".mtx") {
        read_matrix_market(reader).map_err(|e| format!("parse {path}: {e}"))?
    } else {
        read_edge_list(reader, None)
            .map_err(|e| format!("parse {path}: {e}"))?
            .into_adjacency()
    };
    eprintln!(
        "[simulate] loaded {path}: {}x{}, {} non-zeros",
        csr.nrows(),
        csr.ncols(),
        csr.nnz()
    );
    Ok(csr)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let a = match load_graph(&args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = MachineConfig::node(args.cores);
    if let Some(lat) = args.latency {
        cfg = cfg.with_dram_latency_ns(lat);
    }
    if let Some(t) = args.threads_per_mtp {
        cfg = cfg.with_threads_per_mtp(t);
    }

    match args.kernel.as_str() {
        "walk" => match simulate_random_walks(&cfg, &a, args.walkers, args.steps) {
            Ok(r) => {
                println!(
                    "{} walkers x {} steps: {:.1} Msteps/s",
                    args.walkers, args.steps, r.msteps_per_second
                );
                println!("{}", r.sim);
            }
            Err(e) => {
                eprintln!("simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        name => {
            let variant = match name {
                "dma" => SpmmVariant::Dma,
                "unrolled" => SpmmVariant::LoopUnrolled,
                "vertex" => SpmmVariant::DmaVertexParallel,
                other => {
                    eprintln!("unknown kernel '{other}' (dma|unrolled|vertex|walk)");
                    return ExitCode::FAILURE;
                }
            };
            match SpmmSimulation::new(cfg, variant).run(&a, args.k) {
                Ok(r) => {
                    println!(
                        "{variant} SpMM K={}: {:.2} GFLOP/s ({:.0}% of bandwidth model)",
                        args.k,
                        r.gflops,
                        r.model_fraction() * 100.0
                    );
                    println!("{}", r.sim);
                }
                Err(e) => {
                    eprintln!("simulation failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
