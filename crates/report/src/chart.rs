//! Minimal ASCII charts for terminal-rendered figures.

/// Renders a horizontal bar chart. Each entry is `(label, value)`; bars are
/// scaled to `width` characters against the maximum value.
///
/// # Examples
///
/// ```
/// let chart = report::chart::bar_chart(
///     &[("a".to_string(), 2.0), ("b".to_string(), 4.0)],
///     20,
/// );
/// assert!(chart.contains('#'));
/// ```
pub fn bar_chart(entries: &[(String, f64)], width: usize) -> String {
    let max = entries
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in entries {
        let n = ((value / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{:>label_w$} | {:<width$} {:.3}\n",
            label,
            "#".repeat(n),
            value,
            label_w = label_w,
            width = width
        ));
    }
    out
}

/// Renders a stacked horizontal bar per entry, where each entry carries a
/// label and per-segment fractions (0..1) with one glyph per segment kind.
/// Used for the execution-time-breakdown figures.
pub fn stacked_bar_chart(entries: &[(String, Vec<f64>)], glyphs: &[char], width: usize) -> String {
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, fractions) in entries {
        assert_eq!(
            fractions.len(),
            glyphs.len(),
            "fraction count must match glyph count"
        );
        let mut bar = String::new();
        for (frac, glyph) in fractions.iter().zip(glyphs) {
            let n = (frac * width as f64).round().max(0.0) as usize;
            bar.extend(std::iter::repeat_n(*glyph, n));
        }
        out.push_str(&format!("{:>label_w$} | {bar}\n", label, label_w = label_w));
    }
    out
}

/// Renders a sparkline-style series of `(x, y)` pairs as rows of `y` scaled
/// into `width` columns — a quick visual for sweeps.
pub fn series(points: &[(f64, f64)], width: usize) -> String {
    let entries: Vec<(String, f64)> = points
        .iter()
        .map(|(x, y)| (format!("{x:.0}"), *y))
        .collect();
    bar_chart(&entries, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(&[("x".into(), 1.0), ("y".into(), 2.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        let hashes = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[0]), 5);
        assert_eq!(hashes(lines[1]), 10);
    }

    #[test]
    fn stacked_bars_use_all_glyphs() {
        let chart = stacked_bar_chart(&[("row".into(), vec![0.5, 0.5])], &['S', 'D'], 10);
        assert!(chart.contains("SSSSS"));
        assert!(chart.contains("DDDDD"));
    }

    #[test]
    #[should_panic(expected = "glyph count")]
    fn mismatched_glyphs_panic() {
        stacked_bar_chart(&[("r".into(), vec![1.0])], &['a', 'b'], 4);
    }

    #[test]
    fn series_formats_x_labels() {
        let s = series(&[(45.0, 1.0), (90.0, 2.0)], 8);
        assert!(s.contains("45"));
        assert!(s.contains("90"));
    }

    #[test]
    fn empty_input_renders_empty() {
        assert_eq!(bar_chart(&[], 10), "");
    }
}
