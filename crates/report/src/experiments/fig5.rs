//! Figure 5 — SpMM algorithms on PIUMA versus the bandwidth model:
//! strong scaling of the DMA and loop-unrolled kernels, normalized to
//! single-core DMA performance.

use super::common::scaled_twin;
use super::Fidelity;
use crate::chart::bar_chart;
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use piuma_kernels::{SpmmSimulation, SpmmVariant};
use piuma_sim::MachineConfig;

/// Core counts swept (the paper shows 1–32).
pub const CORES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Core count.
    pub cores: usize,
    /// Embedding dimension.
    pub k: usize,
    /// DMA-kernel throughput (GFLOP/s).
    pub dma_gflops: f64,
    /// Loop-unrolled throughput (GFLOP/s).
    pub unrolled_gflops: f64,
    /// Analytical-model throughput (GFLOP/s).
    pub model_gflops: f64,
}

/// Runs the sweep on a scaled `products` twin for the given dimensions.
pub fn sweep(fidelity: Fidelity, ks: &[usize]) -> Vec<Point> {
    let a = scaled_twin(OgbDataset::Products, fidelity);
    let mut points = Vec::new();
    for &k in ks {
        for cores in CORES {
            let cfg = MachineConfig::node(cores);
            let dma = SpmmSimulation::new(cfg.clone(), SpmmVariant::Dma)
                .run(&a, k)
                .expect("placement is in-range by construction");
            let unrolled = SpmmSimulation::new(cfg, SpmmVariant::LoopUnrolled)
                .run(&a, k)
                .expect("placement is in-range by construction");
            points.push(Point {
                cores,
                k,
                dma_gflops: dma.gflops,
                unrolled_gflops: unrolled.gflops,
                model_gflops: dma.model_gflops,
            });
        }
    }
    points
}

/// Regenerates Figure 5.
pub fn run(fidelity: Fidelity) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("fig5");
    let ks: &[usize] = match fidelity {
        Fidelity::Quick => &[256],
        Fidelity::Full => &[8, 64, 256],
    };
    let points = sweep(fidelity, ks);
    let base = points
        .iter()
        .find(|p| p.cores == 1 && p.k == *ks.last().expect("non-empty sweep"))
        .expect("single-core point exists")
        .dma_gflops;

    let mut table = TextTable::new(vec![
        "K",
        "cores",
        "dma_norm",
        "unrolled_norm",
        "model_norm",
        "dma_gflops",
        "unrolled_gflops",
        "model_gflops",
    ]);
    for p in &points {
        table.row(vec![
            p.k.to_string(),
            p.cores.to_string(),
            format!("{:.2}", p.dma_gflops / base),
            format!("{:.2}", p.unrolled_gflops / base),
            format!("{:.2}", p.model_gflops / base),
            format!("{:.2}", p.dma_gflops),
            format!("{:.2}", p.unrolled_gflops),
            format!("{:.2}", p.model_gflops),
        ]);
    }
    out.csv("scaling.csv", table.to_csv());
    out.section(
        "SpMM strong scaling on PIUMA (normalized to 1-core DMA)",
        &table,
    );

    let k_main = *ks.last().expect("non-empty sweep");
    let bars: Vec<(String, f64)> = points
        .iter()
        .filter(|p| p.k == k_main)
        .flat_map(|p| {
            [
                (format!("{}c dma", p.cores), p.dma_gflops / base),
                (format!("{}c unrolled", p.cores), p.unrolled_gflops / base),
                (format!("{}c model", p.cores), p.model_gflops / base),
            ]
        })
        .collect();
    out.section(
        &format!("K={k_main} normalized throughput"),
        bar_chart(&bars, 40),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_tracks_model_and_unrolled_falls_behind() {
        let points = sweep(Fidelity::Quick, &[64]);
        let at = |cores: usize| points.iter().find(|p| p.cores == cores).unwrap();
        // Fig. 5: DMA stays within ~85% of the model through mid scale,
        // while loop unrolling collapses past 8 cores.
        assert!(at(8).dma_gflops / at(8).model_gflops > 0.75);
        let dma_32 = at(32).dma_gflops / at(32).model_gflops;
        let unrolled_32 = at(32).unrolled_gflops / at(32).model_gflops;
        assert!(
            dma_32 > unrolled_32 + 0.15,
            "dma {dma_32:.2} vs unrolled {unrolled_32:.2} at 32 cores"
        );
        assert!(unrolled_32 < 0.5, "unrolled at 32 cores: {unrolled_32:.2}");
    }

    #[test]
    fn dma_scales_monotonically() {
        let points = sweep(Fidelity::Quick, &[64]);
        for w in points.windows(2) {
            assert!(
                w[1].dma_gflops > w[0].dma_gflops,
                "DMA throughput dropped from {} to {} cores",
                w[0].cores,
                w[1].cores
            );
        }
    }
}
