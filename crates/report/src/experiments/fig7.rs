//! Figure 7 — consequences of MTP thread count on latency insensitivity,
//! and the execution-time breakdown at K = 8.

use super::common::{pct, scaled_twin};
use super::Fidelity;
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use piuma_kernels::{SpmmSimulation, SpmmVariant};
use piuma_sim::program::OpTag;
use piuma_sim::MachineConfig;
use sparse::Csr;

/// Threads-per-MTP sweep (default hardware maximum is 16).
pub const THREADS: [usize; 5] = [1, 2, 4, 8, 16];
/// DRAM latencies swept (ns).
pub const LATENCIES: [f64; 5] = [45.0, 90.0, 180.0, 360.0, 720.0];
/// The experiment runs on one 8-core die, as in the paper.
pub const CORES: usize = 8;

/// Sweep result: `(threads_per_mtp, k, latency_ns, gflops)`.
pub fn sweep(a: &Csr, ks: &[usize]) -> Vec<(usize, usize, f64, f64)> {
    let mut points = Vec::new();
    for &tpm in &THREADS {
        for &k in ks {
            for &lat in &LATENCIES {
                let cfg = MachineConfig::node(CORES)
                    .with_threads_per_mtp(tpm)
                    .with_dram_latency_ns(lat);
                let gf = SpmmSimulation::new(cfg, SpmmVariant::Dma)
                    .run(a, k)
                    .expect("in-range placement")
                    .gflops;
                points.push((tpm, k, lat, gf));
            }
        }
    }
    points
}

/// Regenerates Figure 7: the thread/latency sweep (top) and the K=8
/// execution-time breakdown (bottom).
pub fn run(fidelity: Fidelity) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("fig7");
    let a = scaled_twin(OgbDataset::Products, fidelity);
    let ks = [8usize, 256];
    let points = sweep(&a, &ks);

    let mut table = TextTable::new(vec!["thr/MTP", "K", "latency_ns", "gflops", "vs_45ns"]);
    for &(tpm, k, lat, gf) in &points {
        let base = points
            .iter()
            .find(|&&(t, kk, l, _)| t == tpm && kk == k && l == 45.0)
            .expect("45ns point")
            .3;
        table.row(vec![
            tpm.to_string(),
            k.to_string(),
            format!("{lat:.0}"),
            format!("{gf:.2}"),
            format!("{:.2}", gf / base),
        ]);
    }
    out.csv("threads.csv", table.to_csv());
    out.section(
        "Latency tolerance vs threads per MTP (8-core die, DMA SpMM)",
        &table,
    );

    // Bottom: breakdown for K = 8 across thread counts at default latency.
    let mut bd = TextTable::new(vec![
        "thr/MTP",
        "nnz_read%",
        "row_ptr%",
        "dma_feature%",
        "output%",
        "compute%",
    ]);
    for &tpm in &THREADS {
        let cfg = MachineConfig::node(CORES).with_threads_per_mtp(tpm);
        let r = SpmmSimulation::new(cfg, SpmmVariant::Dma)
            .run(&a, 8)
            .expect("in-range placement");
        bd.row(vec![
            tpm.to_string(),
            pct(r.sim.time_fraction(OpTag::NnzRead)),
            pct(r.sim.time_fraction(OpTag::RowPtrRead)),
            pct(r.sim.time_fraction(OpTag::FeatureRead)),
            pct(r.sim.time_fraction(OpTag::OutputWrite)),
            pct(r.sim.time_fraction(OpTag::Compute)),
        ]);
    }
    out.csv("breakdown_k8.csv", bd.to_csv());
    out.section("Execution-time breakdown for K=8", &bd);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_loses_latency_tolerance_at_small_k() {
        // Fig. 7: "when the number of threads is reduced, the latency
        // insensitivity property is lost for smaller embedding dimensions".
        let a = scaled_twin(OgbDataset::Products, Fidelity::Quick);
        let points = sweep(&a, &[8]);
        let retained = |tpm: usize| {
            let at = |l: f64| {
                points
                    .iter()
                    .find(|&&(t, _, lat, _)| t == tpm && lat == l)
                    .unwrap()
                    .3
            };
            at(360.0) / at(45.0)
        };
        assert!(
            retained(1) < retained(16) - 0.2,
            "1 thread retains {:.2}, 16 threads retain {:.2}",
            retained(1),
            retained(16)
        );
    }

    #[test]
    fn single_thread_keeps_tolerance_at_large_k() {
        // Fig. 7: "...while it is retained for higher embedding dimensions".
        let a = scaled_twin(OgbDataset::Products, Fidelity::Quick);
        let points = sweep(&a, &[256]);
        let at = |l: f64| {
            points
                .iter()
                .find(|&&(t, _, lat, _)| t == 1 && lat == l)
                .unwrap()
                .3
        };
        assert!(
            at(360.0) / at(45.0) > 0.75,
            "K=256 single-thread retention {:.2}",
            at(360.0) / at(45.0)
        );
    }

    #[test]
    fn nnz_share_shrinks_with_more_threads_overlap() {
        // More threads -> more overlap of NNZ stalls with DMA work; the
        // total time shrinks even though per-op stalls are unchanged.
        let a = scaled_twin(OgbDataset::Products, Fidelity::Quick);
        let gf = |tpm: usize| {
            let cfg = MachineConfig::node(CORES).with_threads_per_mtp(tpm);
            SpmmSimulation::new(cfg, SpmmVariant::Dma)
                .run(&a, 8)
                .unwrap()
                .gflops
        };
        assert!(gf(16) > gf(1) * 1.5);
    }
}
