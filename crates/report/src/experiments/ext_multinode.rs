//! Extension — multi-node PIUMA scaling (Section II-D / Key Takeaway 1 of
//! Section V-A: "As the number of nodes in a PIUMA system increases, the
//! DGAS memory capacity and effective bandwidth increase proportionally").
//!
//! The scaling curves come from first principles: the *actual* shard
//! partition (`shard::ShardPlan`, the same NNZ/row-balanced blocks the
//! executable `shard::ShardedGcn` runs) is projected onto one PIUMA node
//! per shard by [`shard::simulate_model`] — per-node dense/DRAM bounds,
//! DMA halo gathers over the HyperX path, a closing barrier. Efficiency
//! falls out of the partition's measured halo volume and imbalance rather
//! than being seeded.
//!
//! When `results/BENCH_shard_scaling.json` exists (written by the
//! `shard_scaling` bench), its measured wall-clock medians and achieved
//! GFLOPS for the matching configuration are shown next to the model, so
//! the table reads measured-vs-model side by side.

use super::common::scaled_twin;
use super::Fidelity;
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use shard::sim::parallel_efficiency;
use shard::{simulate_model, PartitionKind, ShardPlan};

/// Node counts swept (8 cores per node).
pub const NODES: [usize; 4] = [1, 2, 4, 8];
/// Cores per node.
pub const CORES_PER_NODE: usize = 8;

/// Runs the sweep; returns `(nodes, gflops, parallel_efficiency)`.
pub fn sweep(fidelity: Fidelity, k: usize) -> Vec<(usize, f64, f64)> {
    let a = scaled_twin(OgbDataset::Products, fidelity);
    let dims = [(k, k)];
    let base = simulate_model(
        &ShardPlan::new(&a, 1, PartitionKind::Rows1D).expect("square twin partitions"),
        &dims,
        CORES_PER_NODE,
    );
    NODES
        .iter()
        .map(|&nodes| {
            let plan =
                ShardPlan::new(&a, nodes, PartitionKind::Rows1D).expect("square twin partitions");
            let r = simulate_model(&plan, &dims, CORES_PER_NODE);
            let eff = parallel_efficiency(&base, 1, &r, nodes);
            (nodes, r.gflops(), eff)
        })
        .collect()
}

/// Extracts `"key": <number>` from a one-row JSON line.
fn field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Measured `(median_ms, gflops)` for a 1D natural-order configuration
/// from `results/BENCH_shard_scaling.json`, if the bench has run.
pub fn measured(k: usize, workers: usize) -> Option<(f64, f64)> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_shard_scaling.json"
    );
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        if !line.contains("\"kind\": \"1d\"") || !line.contains("\"reordered\": false") {
            continue;
        }
        let (Some(w), Some(f)) = (field(line, "workers"), field(line, "f")) else {
            continue;
        };
        if w as usize == workers && f as usize == k {
            return Some((field(line, "median_ms")?, field(line, "measured_gflops")?));
        }
    }
    None
}

/// Regenerates the multi-node scaling study.
pub fn run(fidelity: Fidelity) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("ext_multinode");
    let mut table = TextTable::new(vec![
        "nodes",
        "cores",
        "K",
        "gflops",
        "efficiency",
        "measured_ms",
        "measured_gflops",
    ]);
    for k in [8usize, 256] {
        for (nodes, gf, eff) in sweep(fidelity, k) {
            let (m_ms, m_gf) = match measured(k, nodes) {
                Some((ms, gf)) => (format!("{ms:.3}"), format!("{gf:.2}")),
                None => ("-".into(), "-".into()),
            };
            table.row(vec![
                nodes.to_string(),
                (nodes * CORES_PER_NODE).to_string(),
                k.to_string(),
                format!("{gf:.2}"),
                format!("{eff:.2}"),
                m_ms,
                m_gf,
            ]);
        }
    }
    out.csv("scaling.csv", table.to_csv());
    out.section(
        "Multi-node PIUMA strong scaling (sharded GCN projection, 8 cores/node, optical links)",
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use piuma_kernels::{SpmmSimulation, SpmmVariant};
    use piuma_sim::MachineConfig;

    #[test]
    fn multi_node_scaling_stays_strong_at_k256() {
        // The whole point of the DGAS + latency-tolerance design: adding
        // nodes keeps helping even though every cross-node access pays
        // ~300 ns extra.
        let rows = sweep(Fidelity::Quick, 256);
        let (nodes, _, eff) = rows[rows.len() - 1];
        assert_eq!(nodes, 8);
        assert!(eff >= 0.74, "8-node efficiency {eff:.2}");
        // Throughput itself must be monotone in node count.
        for w in rows.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn narrow_features_scale_worse_than_wide() {
        // The paper's qualitative gap: K=8 exposes the K-independent
        // per-row exchange overheads that K=256 amortizes.
        let wide = sweep(Fidelity::Quick, 256);
        let narrow = sweep(Fidelity::Quick, 8);
        let wide_eff = wide[wide.len() - 1].2;
        let narrow_eff = narrow[narrow.len() - 1].2;
        assert!(
            narrow_eff < wide_eff - 0.2,
            "K=8 eff {narrow_eff:.2} must trail K=256 eff {wide_eff:.2}"
        );
    }

    #[test]
    fn cross_node_latency_costs_something() {
        // Same total cores, more nodes -> more optical hops -> no faster.
        let a = scaled_twin(OgbDataset::Products, Fidelity::Quick);
        let single = SpmmSimulation::new(MachineConfig::node(8), SpmmVariant::Dma)
            .run(&a, 64)
            .unwrap()
            .gflops;
        let split = SpmmSimulation::new(MachineConfig::multi_node(4, 2), SpmmVariant::Dma)
            .run(&a, 64)
            .unwrap()
            .gflops;
        assert!(
            split <= single * 1.02,
            "split {split:.1} vs single {single:.1}"
        );
    }

    #[test]
    fn measured_rows_parse_when_bench_artifact_exists() {
        // The scanner either finds a full measured row or reports none;
        // it must not panic on the checked-in artifact.
        if let Some((ms, gf)) = measured(256, 8) {
            assert!(ms > 0.0 && gf > 0.0);
        }
        assert!(measured(999, 3).is_none(), "absent configs yield None");
    }
}
