//! Extension — multi-node PIUMA scaling (Section II-D / Key Takeaway 1 of
//! Section V-A: "As the number of nodes in a PIUMA system increases, the
//! DGAS memory capacity and effective bandwidth increase proportionally").
//!
//! We strong-scale the DMA SpMM kernel from 1 to 8 nodes of 8 cores each,
//! with cross-node accesses paying the optical-link latency, and check that
//! the latency-tolerant design keeps scaling near-linear anyway.

use super::common::scaled_twin;
use super::Fidelity;
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use piuma_kernels::{SpmmSimulation, SpmmVariant};
use piuma_sim::MachineConfig;

/// Node counts swept (8 cores per node).
pub const NODES: [usize; 4] = [1, 2, 4, 8];
/// Cores per node.
pub const CORES_PER_NODE: usize = 8;

/// Runs the sweep; returns `(nodes, gflops, parallel_efficiency)`.
pub fn sweep(fidelity: Fidelity, k: usize) -> Vec<(usize, f64, f64)> {
    let a = scaled_twin(OgbDataset::Products, fidelity);
    let mut rows = Vec::new();
    let mut base = 0.0;
    for &nodes in &NODES {
        let cfg = MachineConfig::multi_node(nodes, CORES_PER_NODE);
        let gf = SpmmSimulation::new(cfg, SpmmVariant::Dma)
            .run(&a, k)
            .expect("in-range placement")
            .gflops;
        if nodes == 1 {
            base = gf;
        }
        rows.push((nodes, gf, gf / (base * nodes as f64)));
    }
    rows
}

/// Regenerates the multi-node scaling study.
pub fn run(fidelity: Fidelity) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("ext_multinode");
    let mut table = TextTable::new(vec!["nodes", "cores", "K", "gflops", "efficiency"]);
    for k in [8usize, 256] {
        for (nodes, gf, eff) in sweep(fidelity, k) {
            table.row(vec![
                nodes.to_string(),
                (nodes * CORES_PER_NODE).to_string(),
                k.to_string(),
                format!("{gf:.2}"),
                format!("{eff:.2}"),
            ]);
        }
    }
    out.csv("scaling.csv", table.to_csv());
    out.section(
        "Multi-node PIUMA strong scaling (DMA SpMM, 8 cores/node, optical links)",
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_node_scaling_stays_strong_at_k256() {
        // The whole point of the DGAS + latency-tolerance design: adding
        // nodes keeps helping even though every cross-node access pays
        // ~300 ns extra.
        let rows = sweep(Fidelity::Quick, 256);
        let (nodes, _, eff) = rows[rows.len() - 1];
        assert_eq!(nodes, 8);
        assert!(eff > 0.5, "8-node efficiency {eff:.2}");
        // Throughput itself must be monotone in node count.
        for w in rows.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn cross_node_latency_costs_something() {
        // Same total cores, more nodes -> more optical hops -> no faster.
        let a = scaled_twin(OgbDataset::Products, Fidelity::Quick);
        let single = SpmmSimulation::new(MachineConfig::node(8), SpmmVariant::Dma)
            .run(&a, 64)
            .unwrap()
            .gflops;
        let split = SpmmSimulation::new(MachineConfig::multi_node(4, 2), SpmmVariant::Dma)
            .run(&a, 64)
            .unwrap()
            .gflops;
        assert!(
            split <= single * 1.02,
            "split {split:.1} vs single {single:.1}"
        );
    }
}
