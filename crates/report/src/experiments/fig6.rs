//! Figure 6 — DRAM bandwidth and latency sensitivity of the DMA SpMM
//! kernel on 2/4/8-core PIUMA systems at K = 8 and 256.

use super::common::scaled_twin;
use super::Fidelity;
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use piuma_kernels::{SpmmSimulation, SpmmVariant};
use piuma_sim::MachineConfig;
use sparse::Csr;

/// Core counts of the paper's Figure 6.
pub const CORES: [usize; 3] = [2, 4, 8];
/// Bandwidth multipliers applied to the per-slice default. The sweep stops
/// at 2x: beyond that the DMA engines' streaming rate (not the network or
/// the slices) becomes the binding resource in our model.
pub const BW_SCALE: [f64; 4] = [0.25, 0.5, 1.0, 2.0];
/// DRAM latencies swept (ns), 45 to 720 as in the paper.
pub const LATENCIES: [f64; 5] = [45.0, 90.0, 180.0, 360.0, 720.0];

fn gflops(a: &Csr, cfg: MachineConfig, k: usize) -> f64 {
    SpmmSimulation::new(cfg, SpmmVariant::Dma)
        .run(a, k)
        .expect("in-range placement")
        .gflops
}

/// Bandwidth sweep: returns `(cores, k, bw_scale, gflops)` points.
pub fn bandwidth_sweep(a: &Csr, ks: &[usize]) -> Vec<(usize, usize, f64, f64)> {
    let mut points = Vec::new();
    for &cores in &CORES {
        for &k in ks {
            for &scale in &BW_SCALE {
                let base = MachineConfig::node(cores);
                let cfg = base.with_dram_bandwidth_gbps(base.dram_bandwidth_gbps * scale);
                points.push((cores, k, scale, gflops(a, cfg, k)));
            }
        }
    }
    points
}

/// Latency sweep: returns `(cores, k, latency_ns, gflops)` points.
pub fn latency_sweep(a: &Csr, ks: &[usize]) -> Vec<(usize, usize, f64, f64)> {
    let mut points = Vec::new();
    for &cores in &CORES {
        for &k in ks {
            for &lat in &LATENCIES {
                let cfg = MachineConfig::node(cores).with_dram_latency_ns(lat);
                points.push((cores, k, lat, gflops(a, cfg, k)));
            }
        }
    }
    points
}

/// Regenerates Figure 6 (top: bandwidth sweep, bottom: latency sweep).
pub fn run(fidelity: Fidelity) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("fig6");
    let a = scaled_twin(OgbDataset::Products, fidelity);
    let ks: &[usize] = &[8, 256];

    let mut bw_table = TextTable::new(vec!["cores", "K", "bw_scale", "gflops", "vs_1x"]);
    let bw_points = bandwidth_sweep(&a, ks);
    for &(cores, k, scale, gf) in &bw_points {
        let base = bw_points
            .iter()
            .find(|&&(c, kk, s, _)| c == cores && kk == k && s == 1.0)
            .expect("1x point exists")
            .3;
        bw_table.row(vec![
            cores.to_string(),
            k.to_string(),
            format!("{scale:.2}"),
            format!("{gf:.2}"),
            format!("{:.2}", gf / base),
        ]);
    }
    out.csv("bandwidth.csv", bw_table.to_csv());
    out.section(
        "Top: DRAM bandwidth sweep (DMA SpMM, 16 thr/MTP)",
        &bw_table,
    );

    let mut lat_table = TextTable::new(vec!["cores", "K", "latency_ns", "gflops", "vs_45ns"]);
    let lat_points = latency_sweep(&a, ks);
    for &(cores, k, lat, gf) in &lat_points {
        let base = lat_points
            .iter()
            .find(|&&(c, kk, l, _)| c == cores && kk == k && l == 45.0)
            .expect("45ns point exists")
            .3;
        lat_table.row(vec![
            cores.to_string(),
            k.to_string(),
            format!("{lat:.0}"),
            format!("{gf:.2}"),
            format!("{:.2}", gf / base),
        ]);
    }
    out.csv("latency.csv", lat_table.to_csv());
    out.section(
        "Bottom: DRAM latency sweep (DMA SpMM, 16 thr/MTP)",
        &lat_table,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn twin() -> Csr {
        scaled_twin(OgbDataset::Products, Fidelity::Quick)
    }

    #[test]
    fn throughput_scales_near_linearly_with_bandwidth() {
        // Fig. 6 top: "system performance scales linearly as the available
        // bandwidth of a single DRAM slice increases".
        let a = twin();
        let points = bandwidth_sweep(&a, &[256]);
        for &cores in &CORES {
            let gf = |s: f64| {
                points
                    .iter()
                    .find(|&&(c, _, sc, _)| c == cores && sc == s)
                    .unwrap()
                    .3
            };
            let ratio = gf(2.0) / gf(1.0);
            assert!(
                (1.6..=2.15).contains(&ratio),
                "{cores} cores: 2x bandwidth gave {ratio:.2}x"
            );
        }
    }

    #[test]
    fn latency_insensitive_to_360ns_with_full_threads() {
        // Fig. 6 bottom: flat response up to 360 ns DRAM latency.
        let a = twin();
        let points = latency_sweep(&a, &[256]);
        for &cores in &CORES {
            let gf = |l: f64| {
                points
                    .iter()
                    .find(|&&(c, _, lat, _)| c == cores && lat == l)
                    .unwrap()
                    .3
            };
            let retained = gf(360.0) / gf(45.0);
            assert!(
                retained > 0.85,
                "{cores} cores: {:.0}% retained at 360 ns",
                retained * 100.0
            );
        }
    }

    #[test]
    fn extreme_latency_eventually_hurts_small_k() {
        // 720 ns at K=8 approaches the per-thread issue limit.
        let a = twin();
        let points = latency_sweep(&a, &[8]);
        let gf = |l: f64| {
            points
                .iter()
                .find(|&&(c, _, lat, _)| c == 8 && lat == l)
                .unwrap()
                .3
        };
        assert!(gf(720.0) < gf(45.0));
    }
}
