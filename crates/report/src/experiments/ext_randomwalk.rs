//! Extension — random-walk throughput (Section VI: "The random-walk
//! algorithm is known to be latency bound, and PIUMA being latency
//! optimized, has been shown to greatly accelerate random-walk over
//! standard CPUs").

use super::common::scaled_twin;
use super::Fidelity;
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use piuma_kernels::walk_sim::{cpu_walk_msteps_per_second, simulate_random_walks};
use piuma_sim::MachineConfig;

/// Walker counts swept on the 8-core die.
pub const WALKERS: [usize; 4] = [16, 64, 256, 512];
/// Walk length per walker.
pub const STEPS: usize = 64;

/// Regenerates the random-walk study.
pub fn run(fidelity: Fidelity) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("ext_randomwalk");
    let a = scaled_twin(OgbDataset::Products, fidelity);
    let cfg = MachineConfig::node(8);

    let mut table = TextTable::new(vec!["walkers", "msteps_per_s", "dram_util", "per_walk_us"]);
    for &w in &WALKERS {
        let r = simulate_random_walks(&cfg, &a, w, STEPS).expect("in-range placement");
        table.row(vec![
            w.to_string(),
            format!("{:.1}", r.msteps_per_second),
            format!("{:.2}", r.sim.dram_utilization),
            format!("{:.2}", r.sim.total_ns / 1e3),
        ]);
    }
    out.csv("walkers.csv", table.to_csv());
    out.section(
        "Random-walk throughput vs concurrent walkers (8-core die)",
        &table,
    );

    let mut cmp = TextTable::new(vec!["system", "msteps_per_s"]);
    let piuma =
        simulate_random_walks(&cfg, &a, cfg.total_threads(), STEPS).expect("in-range placement");
    cmp.row(vec![
        "piuma 8-core die (512 thr)".into(),
        format!("{:.1}", piuma.msteps_per_second),
    ]);
    cmp.row(vec![
        "xeon socket model (40c, mlp 8, 120 ns)".into(),
        format!("{:.1}", cpu_walk_msteps_per_second(40, 8.0, 120.0)),
    ]);
    out.csv("comparison.csv", cmp.to_csv());
    out.section("Die-vs-socket walk throughput", &cmp);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_grows_with_walkers_and_beats_cpu() {
        let out = run(Fidelity::Quick);
        let csv = &out.csv_files[0].1;
        let rates: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(rates.len(), WALKERS.len());
        for w in rates.windows(2) {
            assert!(w[1] > w[0], "throughput must grow with walkers: {rates:?}");
        }
    }
}
