//! Table I — the OGB dataset catalog.

use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;

/// Regenerates Table I, extended with the derived statistics (average
/// degree, density) the characterization relies on.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("table1");
    let mut t = TextTable::new(vec![
        "name", "|V|", "|E|", "avg_deg", "density", "in_dim", "out_dim",
    ]);
    for d in OgbDataset::TABLE1 {
        let s = d.stats();
        t.row(vec![
            s.name.to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            format!("{:.1}", s.avg_degree()),
            format!("{:.2e}", s.density()),
            s.input_dim.to_string(),
            s.output_dim.to_string(),
        ]);
    }
    out.csv("datasets.csv", t.to_csv());
    out.section("OGB dataset descriptions (Table I)", &t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_nine_datasets() {
        let out = run();
        let body = &out.sections[0].1;
        for name in [
            "ddi",
            "proteins",
            "arxiv",
            "collab",
            "ppa",
            "mag",
            "products",
            "citation2",
            "papers",
        ] {
            assert!(body.contains(name), "missing {name}");
        }
        assert!(body.contains("111059956"));
        assert!(body.contains("1615685872"));
    }
}
