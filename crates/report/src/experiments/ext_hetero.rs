//! Extension — the heterogeneous SoC of Section VI: sweep the ratio of
//! PIUMA dies to dense-accelerator tiles per workload.

use super::common::{dataset_workload, ms};
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use platform_models::HeterogeneousSoc;

/// Total tile budget of the swept package (4 dies' worth of silicon).
pub const TILES: usize = 4;

/// Regenerates the heterogeneous-SoC design sweep.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("ext_hetero");
    let soc = HeterogeneousSoc::all_piuma(TILES);

    let mut table = TextTable::new(vec!["dataset", "K", "dense_tiles", "total_ms", "best?"]);
    for d in [
        OgbDataset::Ddi,
        OgbDataset::Arxiv,
        OgbDataset::Products,
        OgbDataset::Papers,
    ] {
        for k in [8usize, 64, 256] {
            let w = dataset_workload(d, k);
            let (best, _) = soc.best_split(&w);
            for dense_tiles in 0..TILES {
                let t = soc.with_dense_tiles(dense_tiles).gcn_times(&w);
                table.row(vec![
                    d.to_string(),
                    k.to_string(),
                    dense_tiles.to_string(),
                    ms(t.total_ns()),
                    if dense_tiles == best {
                        "*".into()
                    } else {
                        String::new()
                    },
                ]);
            }
        }
    }
    out.csv("sweep.csv", table.to_csv());
    out.section(
        "Heterogeneous SoC: PIUMA dies vs dense tiles (Section VI proposal)",
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_ratio_shifts_with_workload() {
        let soc = HeterogeneousSoc::all_piuma(TILES);
        // Sparse-heavy: keep the dies. Dense-heavy: trade some away.
        let (ddi8, _) = soc.best_split(&dataset_workload(OgbDataset::Ddi, 8));
        let (mag256, _) = soc.best_split(&dataset_workload(OgbDataset::Mag, 256));
        assert_eq!(ddi8, 0);
        assert!(mag256 >= 1);
    }

    #[test]
    fn output_marks_exactly_one_best_per_cell() {
        let out = run();
        let body = &out.sections[0].1;
        let stars = body.matches('*').count();
        // 4 datasets x 3 K values = 12 sweeps, one star each.
        assert_eq!(stars, 12);
    }
}
