//! Figure 9 — single-node GCN and SpMM speedups of PIUMA and the A100
//! against the dual-socket Xeon baseline, across datasets and embedding
//! dimensions.

use super::common::{dataset_workload, K_SWEEP};
use crate::chart::bar_chart;
use crate::{ExperimentOutput, TextTable};
use analytic::workload::GcnWorkload;
use graph::OgbDataset;
use platform_models::{GpuModel, PiumaModel, XeonModel};

/// Speedups for one `(dataset, K)` cell.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupPoint {
    /// GCN speedup of PIUMA over the CPU baseline.
    pub piuma_gcn: f64,
    /// GCN speedup of the GPU over the CPU baseline.
    pub gpu_gcn: f64,
    /// SpMM-kernel-only speedup of PIUMA over CPU.
    pub piuma_spmm: f64,
    /// SpMM-kernel-only speedup of GPU over CPU.
    pub gpu_spmm: f64,
}

/// Computes the Figure 9 speedups for one dataset and hidden dimension.
pub fn speedups(d: OgbDataset, hidden: usize) -> SpeedupPoint {
    let w: GcnWorkload = dataset_workload(d, hidden);
    let xeon = XeonModel::default();
    let gpu = GpuModel::default();
    let piuma = PiumaModel::default();

    let tx = xeon.gcn_times_full(&w);
    let tg = gpu.gcn_times(&w);
    let tp = piuma.gcn_times(&w);

    let cpu_spmm: f64 = tx.spmm_ns;
    let piuma_spmm: f64 = tp.spmm_ns;
    // GPU SpMM-kernel speedup per the companion study compares on-device
    // kernel time only.
    let gpu_spmm: f64 = tg.spmm_ns;
    SpeedupPoint {
        piuma_gcn: tp.speedup_over(&tx),
        gpu_gcn: tg.speedup_over(&tx),
        piuma_spmm: cpu_spmm / piuma_spmm,
        gpu_spmm: cpu_spmm / gpu_spmm,
    }
}

/// Regenerates Figure 9.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("fig9");
    let mut table = TextTable::new(vec![
        "dataset",
        "K",
        "piuma_gcn_x",
        "gpu_gcn_x",
        "piuma_spmm_x",
        "gpu_spmm_x",
    ]);
    let mut bars: Vec<(String, f64)> = Vec::new();
    for d in OgbDataset::FIGURE9 {
        for k in K_SWEEP {
            let s = speedups(d, k);
            table.row(vec![
                d.to_string(),
                k.to_string(),
                format!("{:.2}", s.piuma_gcn),
                format!("{:.2}", s.gpu_gcn),
                format!("{:.2}", s.piuma_spmm),
                format!("{:.2}", s.gpu_spmm),
            ]);
            if k == 64 {
                bars.push((format!("{d} piuma"), s.piuma_gcn));
                bars.push((format!("{d} gpu"), s.gpu_gcn));
            }
        }
    }
    out.csv("speedups.csv", table.to_csv());
    out.section(
        "GCN and SpMM speedups vs dual-socket Xeon (single node each)",
        &table,
    );
    out.section("GCN speedup at K=64 (bars)", bar_chart(&bars, 40));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piuma_gcn_always_beats_cpu() {
        for d in OgbDataset::FIGURE9 {
            for k in [8usize, 64, 256] {
                let s = speedups(d, k);
                assert!(s.piuma_gcn > 1.0, "{d} K={k}: {:.2}", s.piuma_gcn);
            }
        }
    }

    #[test]
    fn gpu_loses_at_small_k_and_wins_at_large_k() {
        // Fig. 9: "GPUs actually performed worse than CPUs for lower
        // embedding dimensions due to the offloading overhead", while GPU
        // speedup grows with K.
        let low = speedups(OgbDataset::Products, 8);
        let high = speedups(OgbDataset::Products, 256);
        assert!(low.gpu_gcn < 1.0, "GPU at K=8: {:.2}", low.gpu_gcn);
        assert!(high.gpu_gcn > low.gpu_gcn);
        assert!(high.gpu_gcn > 1.0, "GPU at K=256: {:.2}", high.gpu_gcn);
    }

    #[test]
    fn gpu_collapses_on_papers() {
        // The sampling cliff: GPU far below CPU on the graph that does not
        // fit in device memory.
        for k in [8usize, 256] {
            let s = speedups(OgbDataset::Papers, k);
            assert!(s.gpu_gcn < 0.7, "papers K={k}: gpu {:.2}", s.gpu_gcn);
        }
    }

    #[test]
    fn piuma_speedup_shrinks_with_k_while_gpu_grows() {
        let low = speedups(OgbDataset::Citation2, 8);
        let high = speedups(OgbDataset::Citation2, 256);
        assert!(low.piuma_gcn > high.piuma_gcn);
        assert!(low.gpu_gcn < high.gpu_gcn);
    }

    #[test]
    fn piuma_beats_gpu_on_low_locality_synthetic_graphs() {
        // Fig. 9: PIUMA significantly outperforms GPU on SpMM for
        // power-16 / power-22.
        for d in [OgbDataset::Power16, OgbDataset::Power22] {
            let s = speedups(d, 64);
            assert!(
                s.piuma_spmm > 1.0,
                "{d}: piuma spmm speedup {:.2}",
                s.piuma_spmm
            );
        }
    }
}
