//! Figure 10 — GCN execution-time breakdown on PIUMA, complementing the
//! CPU (Fig. 3) and GPU (Fig. 4) breakdowns.

use super::common::{dataset_workload, ms, pct, scaled_twin, K_SWEEP};
use super::Fidelity;
use crate::chart::stacked_bar_chart;
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use piuma_kernels::gcn_sim::simulate_gcn_layer;
use piuma_sim::MachineConfig;
use platform_models::{Phase, PiumaModel};

/// Regenerates the Figure 10 sweep.
pub fn run(fidelity: Fidelity) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("fig10");
    let model = PiumaModel::default();

    let mut table = TextTable::new(vec!["dataset", "K", "spmm%", "dense%", "glue%", "total_ms"]);
    let mut bars: Vec<(String, Vec<f64>)> = Vec::new();
    for d in OgbDataset::TABLE1 {
        for k in K_SWEEP {
            let t = model.gcn_times(&dataset_workload(d, k));
            table.row(vec![
                d.to_string(),
                k.to_string(),
                pct(t.fraction(Phase::Spmm)),
                pct(t.fraction(Phase::Dense)),
                pct(t.fraction(Phase::Glue)),
                ms(t.total_ns()),
            ]);
            if k == 256 {
                bars.push((
                    d.to_string(),
                    vec![
                        t.fraction(Phase::Spmm),
                        t.fraction(Phase::Dense),
                        t.fraction(Phase::Glue),
                    ],
                ));
            }
        }
    }
    out.csv("breakdown.csv", table.to_csv());
    out.section(
        "PIUMA GCN execution-time breakdown (32-core node model)",
        &table,
    );
    out.section(
        "K=256 shares (S = SpMM, D = Dense MM, G = Glue)",
        stacked_bar_chart(&bars, &['S', 'D', 'G'], 50),
    );

    // Consistency check: the same breakdown measured by the event-driven
    // simulator on a scaled twin (one hidden layer, 8-core die).
    let twin = scaled_twin(OgbDataset::Products, fidelity);
    let cfg = MachineConfig::node(8);
    let mut sim_table = TextTable::new(vec!["K", "sim_spmm%", "sim_dense%"]);
    for k in [8usize, 64, 256] {
        let layer = simulate_gcn_layer(&cfg, &twin, k, k).expect("in-range placement");
        sim_table.row(vec![
            k.to_string(),
            pct(layer.spmm_fraction()),
            pct(layer.dense_fraction()),
        ]);
    }
    out.csv("simulated.csv", sim_table.to_csv());
    out.section(
        "Simulator cross-check: hidden-layer breakdown on a scaled products twin",
        &sim_table,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_frac(d: OgbDataset, k: usize) -> f64 {
        PiumaModel::default()
            .gcn_times(&dataset_workload(d, k))
            .fraction(Phase::Dense)
    }

    #[test]
    fn dense_share_grows_with_k_everywhere() {
        // Key takeaway 2: increasing K shifts pressure from SpMM to Dense.
        for d in OgbDataset::TABLE1 {
            assert!(
                dense_frac(d, 256) > dense_frac(d, 8),
                "{d}: {:.2} -> {:.2}",
                dense_frac(d, 8),
                dense_frac(d, 256)
            );
        }
    }

    #[test]
    fn sparse_citation_graphs_are_dense_dominated_at_256() {
        for d in [
            OgbDataset::Arxiv,
            OgbDataset::Collab,
            OgbDataset::Mag,
            OgbDataset::Citation2,
        ] {
            assert!(dense_frac(d, 256) > 0.65, "{d}: {:.2}", dense_frac(d, 256));
        }
    }

    #[test]
    fn products_lands_near_the_paper_band_at_256() {
        // Paper: ppa/products show 50-60% Dense MM at K=256 on PIUMA.
        let f = dense_frac(OgbDataset::Products, 256);
        assert!((0.4..0.75).contains(&f), "products dense share {f:.2}");
    }
}
