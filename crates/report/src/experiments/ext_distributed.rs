//! Extension — distributed-memory CPU versus PIUMA DGAS scaling
//! (Section V-A's closing argument, with the COST critique of ref. [24]).

use super::common::{dataset_workload, ms};
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use platform_models::{DistributedXeonModel, PiumaModel};

/// Cluster sizes swept.
pub const NODES: [usize; 5] = [1, 2, 4, 8, 16];

/// Regenerates the DGAS-vs-MPI scaling comparison.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("ext_distributed");
    let w = dataset_workload(OgbDataset::Papers, 64);

    let mut table = TextTable::new(vec![
        "system",
        "nodes",
        "total_ms",
        "speedup_vs_1",
        "efficiency",
    ]);
    let xeon1 = DistributedXeonModel::cluster(1).gcn_times(&w).total_ns();
    for &n in &NODES {
        let cluster = DistributedXeonModel::cluster(n);
        let t = cluster.gcn_times(&w).total_ns();
        table.row(vec![
            "xeon+mpi".into(),
            n.to_string(),
            ms(t),
            format!("{:.2}", xeon1 / t),
            format!("{:.2}", cluster.parallel_efficiency(&w)),
        ]);
    }
    let piuma_base = PiumaModel::with_cores(8).gcn_times(&w).total_ns();
    for &n in &NODES {
        let t = PiumaModel::with_cores(8 * n).gcn_times(&w).total_ns();
        table.row(vec![
            "piuma-dgas".into(),
            n.to_string(),
            ms(t),
            format!("{:.2}", piuma_base / t),
            format!("{:.2}", piuma_base / t / n as f64),
        ]);
    }
    out.csv("scaling.csv", table.to_csv());
    out.section(
        "Scaling papers/K=64 GCN: MPI Xeon cluster vs PIUMA DGAS (8 cores/node)",
        &table,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgas_out_scales_mpi() {
        let w = dataset_workload(OgbDataset::Papers, 64);
        let mpi16 = DistributedXeonModel::cluster(16).parallel_efficiency(&w);
        let piuma16 = {
            let t1 = PiumaModel::with_cores(8).gcn_times(&w).total_ns();
            let t16 = PiumaModel::with_cores(128).gcn_times(&w).total_ns();
            t1 / t16 / 16.0
        };
        assert!(
            piuma16 > mpi16 + 0.2,
            "DGAS efficiency {piuma16:.2} vs MPI {mpi16:.2}"
        );
    }

    #[test]
    fn output_covers_both_systems() {
        let out = run();
        let body = &out.sections[0].1;
        assert!(body.contains("xeon+mpi"));
        assert!(body.contains("piuma-dgas"));
    }
}
