//! Ablations over the simulator's design choices.
//!
//! `DESIGN.md` calls out three mechanisms the DMA kernel's performance
//! rests on; each gets an ablation so the claim "the phenomena emerge from
//! the model" is testable:
//!
//! 1. **descriptor window** — how many outstanding DMA transfers one thread
//!    may have. Too small re-serializes the latency the engine exists to
//!    hide.
//! 2. **backlog credit** — the flow control bounding how far bulk DMA
//!    traffic runs ahead of fine-grained loads. Too large starves NNZ reads
//!    behind head-of-line DMA bursts; too small throttles the engine.
//! 3. **network hop latency** — the remote-access penalty that separates
//!    the DMA kernel from the loop-unrolled one at scale.

use super::common::{dataset_workload, scaled_twin};
use super::Fidelity;
use crate::{ExperimentOutput, TextTable};
use analytic::fusion::FusionAnalysis;
use analytic::ElementSizes;
use graph::OgbDataset;
use piuma_kernels::{SpmmSimulation, SpmmVariant};
use piuma_sim::MachineConfig;
use sparse::Csr;

/// Descriptor-window sizes swept.
pub const WINDOWS: [usize; 5] = [1, 4, 16, 64, 256];
/// Backlog credits (ns) swept.
pub const CREDITS: [f64; 5] = [15.0, 60.0, 120.0, 480.0, 100_000.0];
/// Network hop latencies (ns) swept.
pub const HOPS: [f64; 4] = [0.0, 20.0, 40.0, 160.0];

fn gflops(a: &Csr, cfg: MachineConfig, variant: SpmmVariant, k: usize) -> f64 {
    SpmmSimulation::new(cfg, variant)
        .run(a, k)
        .expect("in-range placement")
        .gflops
}

/// Window ablation on an 8-core die at K = 8 — small transfers are where
/// per-thread run-ahead is the only latency-hiding mechanism.
pub fn window_sweep(a: &Csr) -> Vec<(usize, f64)> {
    WINDOWS
        .iter()
        .map(|&w| {
            let mut cfg = MachineConfig::node(8);
            cfg.dma_window = w;
            (w, gflops(a, cfg, SpmmVariant::Dma, 8))
        })
        .collect()
}

/// Credit ablation on an 8-core die at K = 64, run at a *small* descriptor
/// window (8): flow control and the window interact. With a deep window a
/// saturated slice queue is itself the latency-hiding mechanism, so credit
/// barely matters; with a shallow window, unbounded credit lets bulk DMA
/// bursts head-of-line-block the NNZ loads that feed the engine, and
/// throughput collapses.
pub fn credit_sweep(a: &Csr) -> Vec<(f64, f64)> {
    CREDITS
        .iter()
        .map(|&c| {
            let mut cfg = MachineConfig::node(8);
            cfg.dma_backlog_ns = c;
            cfg.dma_window = 8;
            (c, gflops(a, cfg, SpmmVariant::Dma, 64))
        })
        .collect()
}

/// Hop-latency ablation at 16 cores, K = 64, for both kernel variants.
pub fn hop_sweep(a: &Csr) -> Vec<(f64, f64, f64)> {
    HOPS.iter()
        .map(|&h| {
            let mut cfg = MachineConfig::node(16);
            cfg.network_hop_ns = h;
            (
                h,
                gflops(a, cfg.clone(), SpmmVariant::Dma, 64),
                gflops(a, cfg, SpmmVariant::LoopUnrolled, 64),
            )
        })
        .collect()
}

/// Regenerates all three ablations.
pub fn run(fidelity: Fidelity) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("ablation");
    let a = scaled_twin(OgbDataset::Products, fidelity);

    let mut wt = TextTable::new(vec!["dma_window", "gflops"]);
    for (w, gf) in window_sweep(&a) {
        wt.row(vec![w.to_string(), format!("{gf:.2}")]);
    }
    out.csv("window.csv", wt.to_csv());
    out.section("Descriptor window (8 cores, K=8, DMA)", &wt);

    let mut ct = TextTable::new(vec!["backlog_credit_ns", "gflops"]);
    for (c, gf) in credit_sweep(&a) {
        ct.row(vec![format!("{c:.0}"), format!("{gf:.2}")]);
    }
    out.csv("credit.csv", ct.to_csv());
    out.section(
        "DMA-slice backlog credit (8 cores, K=64, window=8, DMA)",
        &ct,
    );

    let mut ht = TextTable::new(vec!["hop_ns", "dma_gflops", "unrolled_gflops"]);
    for (h, dma, unrolled) in hop_sweep(&a) {
        ht.row(vec![
            format!("{h:.0}"),
            format!("{dma:.2}"),
            format!("{unrolled:.2}"),
        ]);
    }
    out.csv("hops.csv", ht.to_csv());
    out.section("Network hop latency (16 cores, K=64)", &ht);

    // Graphite-style layer fusion (Related Work, ref [9]): the software
    // optimization the paper flags as "interesting for PIUMA".
    let mut ft = TextTable::new(vec!["dataset", "K", "fusion_speedup", "traffic_saved"]);
    for d in [
        OgbDataset::Arxiv,
        OgbDataset::Collab,
        OgbDataset::Products,
        OgbDataset::Papers,
    ] {
        for k in [64usize, 256] {
            let layer = dataset_workload(d, k).layers()[1];
            let a = FusionAnalysis::of(&layer, ElementSizes::default());
            ft.row(vec![
                d.to_string(),
                k.to_string(),
                format!("{:.2}x", a.speedup()),
                format!("{:.0}%", a.traffic_saved() * 100.0),
            ]);
        }
    }
    out.csv("fusion.csv", ft.to_csv());
    out.section("Layer fusion (Graphite, ref [9]) on the sparse path", &ft);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn twin() -> Csr {
        scaled_twin(OgbDataset::Products, Fidelity::Quick)
    }

    #[test]
    fn tiny_windows_serialize_the_latency() {
        let rows = window_sweep(&twin());
        let at = |w: usize| rows.iter().find(|&&(x, _)| x == w).unwrap().1;
        assert!(
            at(64) > at(1) * 1.5,
            "window 64 ({:.1}) should far outrun window 1 ({:.1})",
            at(64),
            at(1)
        );
        // Diminishing returns: the last doubling barely matters.
        assert!(at(256) < at(64) * 1.2);
    }

    #[test]
    fn unbounded_credit_is_harmful_at_small_windows() {
        // With effectively infinite credit and a shallow descriptor window,
        // NNZ loads queue behind deep DMA backlogs while the threads that
        // would refill the engine sit stalled — the failure mode the credit
        // mechanism exists to prevent.
        let rows = credit_sweep(&twin());
        let bounded = rows[2].1; // 120 ns default
        let unbounded = rows.last().expect("non-empty sweep").1;
        assert!(
            bounded > unbounded * 1.2,
            "default credit {bounded:.1} should clearly beat unbounded {unbounded:.1}"
        );
        // Too little credit throttles the engine instead.
        assert!(rows[0].1 < bounded);
    }

    #[test]
    fn fusion_matches_graphites_reported_band_on_sparse_graphs() {
        // Graphite reports ~1.3x for SpMM via layer fusion; citation-style
        // graphs land in that band, dense graphs benefit less.
        let arxiv = FusionAnalysis::of(
            &dataset_workload(OgbDataset::Arxiv, 256).layers()[1],
            ElementSizes::default(),
        );
        assert!(
            (1.15..1.45).contains(&arxiv.speedup()),
            "{:.2}",
            arxiv.speedup()
        );
        let products = FusionAnalysis::of(
            &dataset_workload(OgbDataset::Products, 256).layers()[1],
            ElementSizes::default(),
        );
        assert!(products.speedup() < arxiv.speedup());
    }

    #[test]
    fn unrolled_kernel_is_more_hop_sensitive() {
        let rows = hop_sweep(&twin());
        let degradation = |sel: fn(&(f64, f64, f64)) -> f64| {
            let first = sel(&rows[0]);
            let last = sel(rows.last().expect("non-empty sweep"));
            last / first
        };
        let dma_retention = degradation(|r| r.1);
        let unrolled_retention = degradation(|r| r.2);
        assert!(
            dma_retention > unrolled_retention,
            "dma retains {dma_retention:.2}, unrolled {unrolled_retention:.2}"
        );
    }
}
