//! One module per paper table/figure. See `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured notes.

pub mod ablation;
pub mod common;
pub mod ext_distributed;
pub mod ext_hetero;
pub mod ext_multinode;
pub mod ext_randomwalk;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;

use crate::ExperimentOutput;

/// Fidelity of simulator-backed experiments: `Quick` uses small scaled
/// graphs (CI-friendly), `Full` uses larger twins for smoother curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Small graphs, coarse sweeps (seconds).
    Quick,
    /// Larger graphs, fine sweeps (minutes).
    Full,
}

/// Every reproducible experiment, in paper order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table I — dataset catalog.
    Table1,
    /// Fig. 2 — SpMM-share contours over scale x density (CPU).
    Fig2,
    /// Fig. 3 — CPU execution-time breakdown.
    Fig3,
    /// Fig. 4 — GPU execution-time breakdown.
    Fig4,
    /// Fig. 5 — SpMM variants vs bandwidth model on PIUMA.
    Fig5,
    /// Fig. 6 — bandwidth and latency sensitivity on PIUMA.
    Fig6,
    /// Fig. 7 — threads-per-MTP latency tolerance on PIUMA.
    Fig7,
    /// Fig. 8 — PIUMA vs CPU strong scaling on `products`.
    Fig8,
    /// Fig. 9 — GCN / SpMM speedups vs the CPU baseline.
    Fig9,
    /// Fig. 10 — PIUMA execution-time breakdown.
    Fig10,
    /// Extension — multi-node PIUMA scaling over optical links.
    ExtMultinode,
    /// Extension — Section VI heterogeneous-SoC design sweep.
    ExtHetero,
    /// Extension — distributed CPU (MPI) vs PIUMA DGAS scaling.
    ExtDistributed,
    /// Extension — latency-bound random walks (Section VI).
    ExtRandomwalk,
    /// Ablations of the simulator's design choices.
    Ablation,
}

impl Experiment {
    /// All experiments in paper order, extensions last.
    pub const ALL: [Experiment; 15] = [
        Experiment::Table1,
        Experiment::Fig2,
        Experiment::Fig3,
        Experiment::Fig4,
        Experiment::Fig5,
        Experiment::Fig6,
        Experiment::Fig7,
        Experiment::Fig8,
        Experiment::Fig9,
        Experiment::Fig10,
        Experiment::ExtMultinode,
        Experiment::ExtHetero,
        Experiment::ExtDistributed,
        Experiment::ExtRandomwalk,
        Experiment::Ablation,
    ];

    /// Looks an experiment up by id (`"table1"`, `"fig5"`, ...).
    pub fn from_name(name: &str) -> Option<Experiment> {
        Experiment::ALL
            .iter()
            .copied()
            .find(|e| e.name() == name.to_ascii_lowercase())
    }

    /// The experiment's id.
    pub fn name(&self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Fig2 => "fig2",
            Experiment::Fig3 => "fig3",
            Experiment::Fig4 => "fig4",
            Experiment::Fig5 => "fig5",
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::ExtMultinode => "ext_multinode",
            Experiment::ExtHetero => "ext_hetero",
            Experiment::ExtDistributed => "ext_distributed",
            Experiment::ExtRandomwalk => "ext_randomwalk",
            Experiment::Ablation => "ablation",
        }
    }

    /// Runs the experiment at the given fidelity.
    pub fn run(&self, fidelity: Fidelity) -> ExperimentOutput {
        match self {
            Experiment::Table1 => table1::run(),
            Experiment::Fig2 => fig2::run(),
            Experiment::Fig3 => fig3::run(),
            Experiment::Fig4 => fig4::run(),
            Experiment::Fig5 => fig5::run(fidelity),
            Experiment::Fig6 => fig6::run(fidelity),
            Experiment::Fig7 => fig7::run(fidelity),
            Experiment::Fig8 => fig8::run(fidelity),
            Experiment::Fig9 => fig9::run(),
            Experiment::Fig10 => fig10::run(fidelity),
            Experiment::ExtMultinode => ext_multinode::run(fidelity),
            Experiment::ExtHetero => ext_hetero::run(),
            Experiment::ExtDistributed => ext_distributed::run(),
            Experiment::ExtRandomwalk => ext_randomwalk::run(fidelity),
            Experiment::Ablation => ablation::run(fidelity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::from_name(e.name()), Some(e));
        }
        assert_eq!(Experiment::from_name("FIG5"), Some(Experiment::Fig5));
        assert_eq!(Experiment::from_name("nope"), None);
    }
}
