//! Figure 2 — SpMM time share as a function of graph scale and density.
//!
//! The paper sweeps RMAT graphs of uniform degree over (|V|, density) and
//! contours the fraction of a K=256 GCN layer's time spent in SpMM on CPU.
//! We evaluate the same grid through the calibrated Xeon model and annotate
//! the OGB datasets' coordinates.

use super::common::pct;
use crate::{ExperimentOutput, TextTable};
use analytic::workload::GcnWorkload;
use graph::OgbDataset;
use platform_models::{Phase, XeonModel};

/// Embedding dimension of the swept layer (in = out = 256 per the paper).
const K: usize = 256;

/// SpMM time fraction of a single K=256 GCN layer on the CPU model.
pub fn spmm_fraction(vertices: usize, density: f64) -> f64 {
    let edges = ((vertices as f64).powi(2) * density).round().max(1.0) as usize;
    // A graph must have at least ~1 edge per vertex to be meaningful here.
    let edges = edges.max(vertices);
    let w = GcnWorkload::new(vertices, edges, &[K, K]);
    let t = XeonModel::default().gcn_times_full(&w);
    t.fraction(Phase::Spmm)
}

/// Regenerates the Figure 2 grid and dataset annotations.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("fig2");

    let scales: Vec<u32> = (12..=26).step_by(2).collect();
    let densities: Vec<f64> = (0..6).map(|i| 1e-7 * 10f64.powi(i)).collect();

    let mut grid = TextTable::new(
        std::iter::once("|V| \\ density".to_string())
            .chain(densities.iter().map(|d| format!("{d:.0e}")))
            .collect::<Vec<_>>(),
    );
    for &s in &scales {
        let v = 1usize << s;
        let mut row = vec![format!("2^{s}")];
        for &d in &densities {
            row.push(pct(spmm_fraction(v, d)));
        }
        grid.row(row);
    }
    out.csv("grid.csv", grid.to_csv());
    out.section(
        "SpMM share of a K=256 GCN layer on CPU over (scale, density)",
        &grid,
    );

    let mut annot = TextTable::new(vec!["dataset", "|V|", "density", "spmm_share"]);
    for d in OgbDataset::TABLE1 {
        let s = d.stats();
        annot.row(vec![
            s.name.to_string(),
            s.vertices.to_string(),
            format!("{:.2e}", s.density()),
            pct(spmm_fraction(s.vertices, s.density())),
        ]);
    }
    out.csv("datasets.csv", annot.to_csv());
    out.section("OGB dataset coordinates on the contour map", &annot);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_grows_with_density_at_fixed_scale() {
        // Paper: "for a given graph scale, the fraction of execution time
        // spent in SpMM increases with the graph density".
        let v = 1 << 18;
        assert!(spmm_fraction(v, 1e-4) > spmm_fraction(v, 1e-6));
    }

    #[test]
    fn share_grows_with_scale_at_fixed_density() {
        // Paper: non-zeros grow quadratically with |V| at fixed density,
        // Dense MM only linearly.
        let d = 1e-5;
        assert!(spmm_fraction(1 << 22, d) > spmm_fraction(1 << 14, d));
    }

    #[test]
    fn arxiv_and_collab_sit_below_sixty_percent() {
        // Paper: "arxiv and collab are expected to spend less than 60%
        // execution time in SpMM for a layer with embedding dimension 256".
        for d in [OgbDataset::Arxiv, OgbDataset::Collab] {
            let s = d.stats();
            let f = spmm_fraction(s.vertices, s.density());
            assert!(f < 0.60, "{}: {f:.2}", s.name);
        }
    }

    #[test]
    fn dense_datasets_sit_high() {
        // proteins and products should benefit more from PIUMA.
        for d in [OgbDataset::Proteins, OgbDataset::Products] {
            let s = d.stats();
            let f = spmm_fraction(s.vertices, s.density());
            assert!(f > 0.60, "{}: {f:.2}", s.name);
        }
    }

    #[test]
    fn output_has_grid_and_annotations() {
        let out = run();
        assert_eq!(out.sections.len(), 2);
        assert_eq!(out.csv_files.len(), 2);
    }
}
