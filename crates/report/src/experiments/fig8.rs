//! Figure 8 — strong scaling of SpMM on PIUMA versus Xeon on `products`:
//! system bandwidth comparison (left), SpMM throughput comparison (middle),
//! and the 16-core PIUMA execution-time breakdown (right).

use super::common::{dataset_workload, pct, scaled_twin};
use super::Fidelity;
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use piuma_kernels::{SpmmSimulation, SpmmVariant};
use piuma_sim::program::OpTag;
use piuma_sim::MachineConfig;
use platform_models::XeonModel;

/// PIUMA core counts swept.
pub const PIUMA_CORES: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// CPU thread counts swept (beyond 80 physical cores = hyper-threading).
pub const CPU_THREADS: [usize; 7] = [1, 4, 16, 40, 80, 120, 160];

/// Left panel: `(label, bandwidth GB/s)` for both systems.
pub fn bandwidth_comparison() -> Vec<(String, f64)> {
    let xeon = XeonModel::default();
    let mut rows = Vec::new();
    for &t in &CPU_THREADS {
        rows.push((format!("xeon {t}t"), xeon.stream_bandwidth_gbps(t)));
    }
    for &c in &PIUMA_CORES {
        rows.push((
            format!("piuma {c}c"),
            MachineConfig::node(c).aggregate_bandwidth_gbps(),
        ));
    }
    rows
}

/// A `(parallelism, GFLOP/s)` scaling curve.
pub type ScalingCurve = Vec<(usize, f64)>;

/// Middle panel: SpMM throughput on `products` at K = 256, in GFLOP/s:
/// simulated PIUMA (scaled twin) and the CPU model (full-size graph),
/// both normalized later against single-core PIUMA.
pub fn spmm_comparison(fidelity: Fidelity) -> (ScalingCurve, ScalingCurve) {
    let a = scaled_twin(OgbDataset::Products, fidelity);
    let k = 256;
    let piuma: ScalingCurve = PIUMA_CORES
        .iter()
        .map(|&c| {
            let gf = SpmmSimulation::new(MachineConfig::node(c), SpmmVariant::Dma)
                .run(&a, k)
                .expect("in-range placement")
                .gflops;
            (c, gf)
        })
        .collect();

    // CPU: model the middle (hidden) layer of the full-size graph and
    // convert time to throughput, then rescale to the twin's FLOP count so
    // the two curves share units.
    let xeon = XeonModel::default();
    let layer = dataset_workload(OgbDataset::Products, k).layers()[1];
    let flops = 2.0 * layer.edges as f64 * k as f64;
    let cpu: ScalingCurve = CPU_THREADS
        .iter()
        .map(|&t| (t, flops / xeon.spmm_time_ns(&layer, t)))
        .collect();
    (piuma, cpu)
}

/// Regenerates Figure 8.
pub fn run(fidelity: Fidelity) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("fig8");

    let mut bw = TextTable::new(vec!["system", "bandwidth_gbps"]);
    for (label, gbps) in bandwidth_comparison() {
        bw.row(vec![label, format!("{gbps:.0}")]);
    }
    out.csv("bandwidth.csv", bw.to_csv());
    out.section("Left: system memory bandwidth comparison", &bw);

    let (piuma, cpu) = spmm_comparison(fidelity);
    let base = piuma[0].1;
    let mut mid = TextTable::new(vec!["system", "parallelism", "gflops", "norm_to_1c_piuma"]);
    for &(c, gf) in &piuma {
        mid.row(vec![
            "piuma".into(),
            format!("{c} cores"),
            format!("{gf:.2}"),
            format!("{:.2}", gf / base),
        ]);
    }
    for &(t, gf) in &cpu {
        mid.row(vec![
            "xeon".into(),
            format!("{t} threads"),
            format!("{gf:.2}"),
            format!("{:.2}", gf / base),
        ]);
    }
    out.csv("spmm_scaling.csv", mid.to_csv());
    out.section(
        "Middle: SpMM strong scaling on products, K=256 (normalized to 1-core PIUMA)",
        &mid,
    );

    // Right: 16-core PIUMA execution-time breakdown across K.
    let a = scaled_twin(OgbDataset::Products, fidelity);
    let mut right = TextTable::new(vec![
        "K",
        "nnz_read%",
        "row_ptr%",
        "dma_feature%",
        "output%",
    ]);
    for k in [8usize, 64, 256] {
        let r = SpmmSimulation::new(MachineConfig::node(16), SpmmVariant::Dma)
            .run(&a, k)
            .expect("in-range placement");
        right.row(vec![
            k.to_string(),
            pct(r.sim.time_fraction(OpTag::NnzRead)),
            pct(r.sim.time_fraction(OpTag::RowPtrRead)),
            pct(r.sim.time_fraction(OpTag::FeatureRead)),
            pct(r.sim.time_fraction(OpTag::OutputWrite)),
        ]);
    }
    out.csv("breakdown.csv", right.to_csv());
    out.section("Right: 16-core PIUMA SpMM time breakdown", &right);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piuma_bandwidth_passes_xeon_past_16_cores() {
        // Fig. 8 left: "the memory bandwidth of PIUMA exceeds CPU after
        // ~16 cores"; the CPU curve dips past 80 threads.
        let rows = bandwidth_comparison();
        let get = |label: &str| rows.iter().find(|(l, _)| l == label).unwrap().1;
        assert!(get("piuma 8c") < get("xeon 80t"));
        assert!(get("piuma 16c") >= get("xeon 80t") * 0.95);
        assert!(get("piuma 32c") > get("xeon 80t"));
        assert!(get("xeon 160t") < get("xeon 80t"));
    }

    #[test]
    fn nnz_read_share_shrinks_with_k() {
        // Fig. 8 right: "execution time attributed to reading non-zero
        // values decreases as the embedding dimension increases".
        let a = scaled_twin(OgbDataset::Products, Fidelity::Quick);
        let nnz_share = |k: usize| {
            SpmmSimulation::new(MachineConfig::node(16), SpmmVariant::Dma)
                .run(&a, k)
                .unwrap()
                .sim
                .time_fraction(OpTag::NnzRead)
        };
        let small = nnz_share(8);
        let large = nnz_share(256);
        assert!(
            large < small,
            "NNZ share should fall with K: {small:.2} -> {large:.2}"
        );
    }

    #[test]
    fn cpu_is_competitive_at_16_cores_but_loses_at_scale() {
        // Fig. 8 middle: at ~16 cores the CPU (with its cache advantage on
        // products) is at or above PIUMA; PIUMA pulls away with more cores.
        let (piuma, cpu) = spmm_comparison(Fidelity::Quick);
        let piuma_at = |c: usize| piuma.iter().find(|&&(x, _)| x == c).unwrap().1;
        let cpu_full = cpu.iter().find(|&&(t, _)| t == 80).unwrap().1;
        assert!(
            piuma_at(32) > cpu_full,
            "32-core PIUMA {} should beat full CPU {}",
            piuma_at(32),
            cpu_full
        );
    }
}
