//! Figure 4 — GPU execution-time breakdown (A100 model).

use super::common::{dataset_workload, ms, pct, K_SWEEP};
use crate::chart::stacked_bar_chart;
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use platform_models::{GpuModel, Phase};

/// Regenerates the Figure 4 sweep: per (dataset, K), the relative share of
/// Offload / SpMM / Dense / Glue / Sampling on the A100 model.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("fig4");
    let model = GpuModel::default();

    let mut table = TextTable::new(vec![
        "dataset",
        "K",
        "offload%",
        "spmm%",
        "dense%",
        "glue%",
        "sampling%",
        "total_ms",
    ]);
    let mut bars: Vec<(String, Vec<f64>)> = Vec::new();
    for d in OgbDataset::TABLE1 {
        for k in K_SWEEP {
            let t = model.gcn_times(&dataset_workload(d, k));
            table.row(vec![
                d.to_string(),
                k.to_string(),
                pct(t.fraction(Phase::Offload)),
                pct(t.fraction(Phase::Spmm)),
                pct(t.fraction(Phase::Dense)),
                pct(t.fraction(Phase::Glue)),
                pct(t.fraction(Phase::Sampling)),
                ms(t.total_ns()),
            ]);
            if k == 256 {
                bars.push((
                    d.to_string(),
                    vec![
                        t.fraction(Phase::Offload),
                        t.fraction(Phase::Spmm),
                        t.fraction(Phase::Dense),
                        t.fraction(Phase::Sampling),
                    ],
                ));
            }
        }
    }
    out.csv("breakdown.csv", table.to_csv());
    out.section("GPU GCN execution-time breakdown (A100-40GB model)", &table);
    out.section(
        "K=256 shares (O = Offload, S = SpMM, D = Dense, H = Host sampling)",
        stacked_bar_chart(&bars, &['O', 'S', 'D', 'H'], 50),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(d: OgbDataset, k: usize) -> platform_models::GcnPhaseTimes {
        GpuModel::default().gcn_times(&dataset_workload(d, k))
    }

    #[test]
    fn offload_dominates_fitting_graphs() {
        // Paper: "the clear performance bottleneck for GPU was the offload
        // time" for graphs that fit on the device.
        for d in [OgbDataset::Arxiv, OgbDataset::Collab, OgbDataset::Products] {
            let t = times(d, 8);
            assert!(
                t.fraction(Phase::Offload) > 0.5,
                "{d}: offload {:.2}",
                t.fraction(Phase::Offload)
            );
        }
    }

    #[test]
    fn papers_is_sampling_bound() {
        let t = times(OgbDataset::Papers, 64);
        assert!(t.fraction(Phase::Sampling) > 0.75);
        assert!(t.fraction(Phase::Sampling) + t.fraction(Phase::Offload) > 0.9);
    }

    #[test]
    fn compute_share_rises_with_k() {
        let compute = |k| {
            let t = times(OgbDataset::Products, k);
            t.fraction(Phase::Spmm) + t.fraction(Phase::Dense)
        };
        assert!(compute(256) > compute(8));
    }

    #[test]
    fn only_papers_samples() {
        for d in OgbDataset::TABLE1 {
            let t = times(d, 64);
            if d == OgbDataset::Papers {
                assert!(t.sampling_ns > 0.0);
            } else {
                assert_eq!(t.sampling_ns, 0.0, "{d} should fit on the GPU");
            }
        }
    }
}
