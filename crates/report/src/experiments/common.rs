//! Shared helpers for the experiment modules.

use super::Fidelity;
use analytic::workload::GcnWorkload;
use graph::OgbDataset;
use sparse::Csr;

/// The hidden-dimension sweep the paper uses ("8 to 256 on orders of 2",
/// thinned to powers of 4 plus the endpoints for readable tables).
pub const K_SWEEP: [usize; 6] = [8, 16, 32, 64, 128, 256];

/// The three embedding dimensions the PIUMA studies highlight.
pub const K_PIUMA: [usize; 3] = [8, 64, 256];

/// Builds the paper's 3-layer GCN workload for a dataset at a hidden dim.
pub fn dataset_workload(d: OgbDataset, hidden: usize) -> GcnWorkload {
    let s = d.stats();
    GcnWorkload::paper_model(s.vertices, s.edges, s.input_dim, hidden, s.output_dim)
}

/// Materializes the scaled synthetic twin used by simulator experiments.
/// `Quick` caps at 2^12 vertices, `Full` at 2^15 (enough edges per thread
/// that a 32-core machine's startup costs amortize away).
pub fn scaled_twin(d: OgbDataset, fidelity: Fidelity) -> Csr {
    let max_v = match fidelity {
        Fidelity::Quick => 1 << 12,
        Fidelity::Full => 1 << 15,
    };
    d.materialize_scaled(max_v, 0xC0FFEE).into_adjacency()
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats nanoseconds as engineering-friendly milliseconds.
pub fn ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_uses_dataset_dims() {
        let w = dataset_workload(OgbDataset::Arxiv, 64);
        assert_eq!(w.layers().len(), 3);
        assert_eq!(w.layers()[0].k_in, 128);
        assert_eq!(w.layers()[2].k_out, 40);
        assert_eq!(w.layers()[0].vertices, 169_343);
    }

    #[test]
    fn quick_twin_is_small() {
        let twin = scaled_twin(OgbDataset::Products, Fidelity::Quick);
        assert!(twin.nrows() <= 1 << 12);
        assert!(twin.nnz() > 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(ms(2_500_000.0), "2.500");
    }
}
