//! Figure 3 — CPU execution-time breakdown across OGB datasets and hidden
//! embedding dimensions.

use super::common::{dataset_workload, ms, pct, K_SWEEP};
use crate::chart::stacked_bar_chart;
use crate::{ExperimentOutput, TextTable};
use graph::OgbDataset;
use platform_models::{Phase, XeonModel};

/// Regenerates the Figure 3 sweep: per (dataset, K), the relative share of
/// SpMM / Dense MM / Glue plus the absolute SpMM and Dense MM times.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("fig3");
    let model = XeonModel::default();

    let mut table = TextTable::new(vec![
        "dataset", "K", "spmm%", "dense%", "glue%", "spmm_ms", "dense_ms",
    ]);
    let mut bars: Vec<(String, Vec<f64>)> = Vec::new();
    for d in OgbDataset::TABLE1 {
        for k in K_SWEEP {
            let t = model.gcn_times_full(&dataset_workload(d, k));
            table.row(vec![
                d.to_string(),
                k.to_string(),
                pct(t.fraction(Phase::Spmm)),
                pct(t.fraction(Phase::Dense)),
                pct(t.fraction(Phase::Glue)),
                ms(t.spmm_ns),
                ms(t.dense_ns),
            ]);
            if k == 256 {
                bars.push((
                    d.to_string(),
                    vec![
                        t.fraction(Phase::Spmm),
                        t.fraction(Phase::Dense),
                        t.fraction(Phase::Glue),
                    ],
                ));
            }
        }
    }
    out.csv("breakdown.csv", table.to_csv());
    out.section(
        "CPU GCN execution-time breakdown (Xeon 8380 2S model)",
        &table,
    );
    out.section(
        "K=256 shares (S = SpMM, D = Dense MM, G = Glue)",
        stacked_bar_chart(&bars, &['S', 'D', 'G'], 50),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frac(d: OgbDataset, k: usize, phase: Phase) -> f64 {
        XeonModel::default()
            .gcn_times_full(&dataset_workload(d, k))
            .fraction(phase)
    }

    #[test]
    fn large_dense_datasets_exceed_seventy_five_percent_spmm() {
        // Paper: >80% SpMM for ppa, products, ddi, proteins, papers. Our
        // calibration lands the same set above 75%.
        for d in [
            OgbDataset::Ppa,
            OgbDataset::Products,
            OgbDataset::Ddi,
            OgbDataset::Proteins,
            OgbDataset::Papers,
        ] {
            let f = frac(d, 256, Phase::Spmm);
            assert!(f > 0.70, "{d}: spmm share {f:.2}");
        }
    }

    #[test]
    fn spmm_share_grows_with_k_for_cache_resident_graphs() {
        // ddi's SpMM share rises as the cache stops covering the features;
        // proteins starts near-saturated (>90%) and must stay there.
        let low = frac(OgbDataset::Ddi, 8, Phase::Spmm);
        let high = frac(OgbDataset::Ddi, 256, Phase::Spmm);
        assert!(high > low, "ddi: {low:.2} -> {high:.2}");
        assert!(frac(OgbDataset::Proteins, 8, Phase::Spmm) > 0.85);
        assert!(frac(OgbDataset::Proteins, 256, Phase::Spmm) > 0.85);
    }

    #[test]
    fn output_covers_every_dataset_and_k() {
        let out = run();
        let body = &out.sections[0].1;
        assert!(body.contains("papers"));
        assert!(body.lines().count() > 9 * K_SWEEP.len());
    }
}
