//! SpMM on PIUMA: the two kernel variants of Section IV-B, lowered onto the
//! discrete-event simulator.
//!
//! Both variants are **edge-parallel** (Algorithm 2): the `|E|` non-zeros
//! are divided evenly across every hardware thread in the machine, and a
//! binary search over the row-pointer array locates each thread's first row.
//! They differ in how feature vectors move:
//!
//! * [`variant::SpmmVariant::LoopUnrolled`] — the fundamental algorithm:
//!   the MTP pipeline itself issues 64-byte cache-line loads for feature
//!   data and fine-grained 8-byte loads for non-zeros. Every load blocks
//!   its thread (MTP threads have a single in-flight instruction), so as
//!   remote latency grows with core count the achievable bandwidth
//!   collapses — the paper's Figure 5 purple curve.
//! * [`variant::SpmmVariant::Dma`] — the optimized kernel: after the NNZ
//!   line load, the thread *enqueues* a DMA descriptor per edge
//!   (vectorized multiply of the neighbour's feature row into the
//!   core-local accumulation buffer) and moves on; completed rows are
//!   written back by the DMA engine atomically. Issue serializes at the
//!   engine while completions overlap, so bandwidth stays saturated — the
//!   red curve, within 10–20 % of the analytical model.
//!
//! [`runner::SpmmSimulation`] drives either variant over a real CSR matrix
//! and reports achieved GFLOP/s next to the Eq. 1–5 roofline.
//!
//! # Examples
//!
//! ```
//! use piuma_kernels::{runner::SpmmSimulation, variant::SpmmVariant};
//! use piuma_sim::MachineConfig;
//! use sparse::{Coo, Csr};
//!
//! let mut coo = Coo::new(64, 64);
//! for i in 0..64usize {
//!     coo.push(i, (i + 1) % 64, 1.0);
//! }
//! let a = Csr::from_coo(&coo);
//! let sim = SpmmSimulation::new(MachineConfig::single_core(), SpmmVariant::Dma);
//! let result = sim.run(&a, 16).unwrap();
//! assert!(result.gflops > 0.0);
//! assert!(result.model_fraction() <= 1.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense_model;
pub mod dense_sim;
pub mod gcn_sim;
pub mod placement;
pub mod programs;
pub mod runner;
pub mod variant;
pub mod walk_sim;

pub use runner::{SpmmSimResult, SpmmSimulation};
pub use variant::SpmmVariant;
