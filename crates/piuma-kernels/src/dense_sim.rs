//! Dense MM (the GCN update phase) lowered onto the PIUMA simulator.
//!
//! The paper prices Dense MM on PIUMA from the observed peak FLOPS of
//! prior work rather than simulating it; [`crate::dense_model`] encodes
//! that calibration. This module closes the loop: a row-parallel GEMM
//! program (stream a row of `H`, run the MAC loop on the MTP pipeline with
//! offload-engine assist, stream out a row of `H'`) runs on the same
//! event-driven machine, and a test checks that the simulated throughput
//! agrees with the calibrated model within a factor — evidence that the
//! calibration is at least self-consistent with the machine's pipelines
//! and bandwidth.

use crate::placement::Placement;
use piuma_sim::program::{Op, OpTag, Program};
use piuma_sim::{MachineConfig, SimError, SimResult, Simulator, ThreadSpec};

/// Shape of the simulated GEMM: `(rows x k_in) * (k_in x k_out)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Rows of the tall operand (`|V|` for a GCN layer).
    pub rows: usize,
    /// Inner dimension.
    pub k_in: usize,
    /// Output width.
    pub k_out: usize,
}

impl GemmShape {
    /// FLOP count (`2 * rows * k_in * k_out`).
    pub fn flops(&self) -> f64 {
        2.0 * self.rows as f64 * self.k_in as f64 * self.k_out as f64
    }
}

/// Per-thread program: stream assigned rows through the MAC loop.
struct DenseMmProgram {
    shape: GemmShape,
    placement: Placement,
    row: usize,
    end: usize,
    mac_cycles_per_row: f64,
    loaded_weights: bool,
    pending_write: Option<usize>,
    done: bool,
}

impl DenseMmProgram {
    fn new(
        shape: GemmShape,
        placement: Placement,
        rows: std::ops::Range<usize>,
        cfg: &MachineConfig,
    ) -> Self {
        let flops_per_row = 2.0 * shape.k_in as f64 * shape.k_out as f64;
        DenseMmProgram {
            shape,
            placement,
            row: rows.start,
            end: rows.end,
            mac_cycles_per_row: flops_per_row / cfg.dense_flops_per_cycle_per_mtp,
            loaded_weights: false,
            pending_write: None,
            done: false,
        }
    }
}

impl Program for DenseMmProgram {
    fn next_op(&mut self) -> Option<Op> {
        if !self.loaded_weights {
            self.loaded_weights = true;
            // The weight tile is broadcast into each core's scratchpad once
            // and shared by its threads; charge this thread a proportional
            // sliver of that one-time transfer.
            return Some(Op::Dma {
                read_slice: Some(self.placement.feature_slice(usize::MAX / 2)),
                write_slice: None,
                bytes: ((self.shape.k_in * self.shape.k_out * 4) as f64 / 64.0).max(64.0),
                tag: OpTag::Other,
            });
        }
        if let Some(row) = self.pending_write.take() {
            // MAC loop for the row we just fetched, then stream the result out.
            return Some(Op::Compute {
                cycles: {
                    // Writes are posted by the DMA engine after the MACs.
                    let _ = row;
                    self.mac_cycles_per_row
                },
            });
        }
        if self.done {
            return None;
        }
        if self.row >= self.end {
            self.done = true;
            return Some(Op::DmaWait);
        }
        let row = self.row;
        self.row += 1;
        self.pending_write = Some(row);
        // Interleave: read next input row (the engine overlaps it with the
        // pipeline's MAC loop), write the previous output row.
        Some(Op::Dma {
            read_slice: Some(self.placement.feature_slice(row)),
            write_slice: Some(self.placement.output_slice(row)),
            bytes: ((self.shape.k_in + self.shape.k_out) * 4) as f64,
            tag: OpTag::FeatureRead,
        })
    }
}

/// Result of a simulated dense GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseSimResult {
    /// Raw simulator output.
    pub sim: SimResult,
    /// FLOP count.
    pub flops: f64,
    /// Achieved throughput in GFLOP/s.
    pub gflops: f64,
}

/// Simulates a row-parallel GEMM of `shape` on `config`.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn simulate_dense_mm(
    config: &MachineConfig,
    shape: GemmShape,
) -> Result<DenseSimResult, SimError> {
    config.assert_valid();
    let placement = Placement::new(config.total_slices(), config.cache_line_bytes);
    let threads = config.total_threads().min(shape.rows.max(1));
    let specs: Vec<ThreadSpec> = (0..threads)
        .map(|t| {
            let start = t * shape.rows / threads;
            let end = (t + 1) * shape.rows / threads;
            let core = t % config.cores;
            ThreadSpec::on_core(
                core,
                Box::new(DenseMmProgram::new(shape, placement, start..end, config)),
            )
        })
        .collect();
    let sim = Simulator::new(config.clone()).run(specs)?;
    let flops = shape.flops();
    let gflops = sim.gflops(flops);
    Ok(DenseSimResult { sim, flops, gflops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_model::PiumaDenseModel;

    #[test]
    fn simulated_dense_rate_matches_calibrated_model() {
        // The calibrated model says a node sustains
        // `gflops_per_core * cores * efficiency`; the simulated kernel on
        // the same machine must land within a factor of ~1.5 either way.
        let cfg = MachineConfig::node(8);
        let shape = GemmShape {
            rows: 1 << 13,
            k_in: 256,
            k_out: 256,
        };
        let sim = simulate_dense_mm(&cfg, shape).unwrap();
        let model = PiumaDenseModel::default();
        let model_gflops = model.node_flops_per_second(&cfg) / 1e9;
        let ratio = sim.gflops / model_gflops;
        assert!(
            (0.6..1.6).contains(&ratio),
            "simulated {:.1} GF vs model {model_gflops:.1} GF (ratio {ratio:.2})",
            sim.gflops
        );
    }

    #[test]
    fn dense_is_compute_bound_at_large_k() {
        // At K=256 the MAC loop, not the DRAM traffic, must dominate: the
        // pipeline utilization should far exceed DRAM utilization.
        let cfg = MachineConfig::node(4);
        let sim = simulate_dense_mm(
            &cfg,
            GemmShape {
                rows: 1 << 12,
                k_in: 256,
                k_out: 256,
            },
        )
        .unwrap();
        assert!(
            sim.sim.pipeline_utilization > sim.sim.dram_utilization,
            "pipelines {:.2} vs dram {:.2}",
            sim.sim.pipeline_utilization,
            sim.sim.dram_utilization
        );
        assert!(sim.sim.pipeline_utilization > 0.6);
    }

    #[test]
    fn dense_is_bandwidth_bound_at_small_k() {
        // Tall-skinny updates at K=8 move many bytes per FLOP; DRAM should
        // work at least as hard as the pipelines.
        let cfg = MachineConfig::node(4);
        let sim = simulate_dense_mm(
            &cfg,
            GemmShape {
                rows: 1 << 14,
                k_in: 8,
                k_out: 8,
            },
        )
        .unwrap();
        assert!(sim.sim.dram_utilization > sim.sim.pipeline_utilization);
    }

    #[test]
    fn throughput_scales_with_cores() {
        let shape = GemmShape {
            rows: 1 << 13,
            k_in: 128,
            k_out: 128,
        };
        let one = simulate_dense_mm(&MachineConfig::node(1), shape)
            .unwrap()
            .gflops;
        let four = simulate_dense_mm(&MachineConfig::node(4), shape)
            .unwrap()
            .gflops;
        assert!(four > one * 3.0, "4-core dense speedup {:.2}", four / one);
    }
}
