//! A whole GCN layer simulated on PIUMA: aggregation (DMA SpMM), update
//! (dense MM), and glue (elementwise activation stream), each timed by the
//! event-driven machine.
//!
//! The paper's Figure 10 composes *measured SpMM* with *modelled Dense MM*;
//! this module lets the reproduction compose two *simulated* kernels
//! instead, on scaled graph twins — an end-to-end consistency check of the
//! analytical path used for the full-size datasets.

use crate::dense_sim::{simulate_dense_mm, DenseSimResult, GemmShape};
use crate::runner::{SpmmSimResult, SpmmSimulation};
use crate::variant::SpmmVariant;
use piuma_sim::{MachineConfig, SimError};
use sparse::Csr;

/// Simulated phase times of one GCN layer on PIUMA, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnLayerSim {
    /// The aggregation (SpMM) run.
    pub spmm: SpmmSimResult,
    /// The update (dense MM) run.
    pub dense: DenseSimResult,
    /// Glue time: one elementwise DMA pass over the layer output at
    /// aggregate bandwidth (computed analytically — a pure stream has no
    /// interesting dynamics to simulate).
    pub glue_ns: f64,
}

impl GcnLayerSim {
    /// Total layer time (phases run back to back, as in the paper's
    /// unfused execution).
    pub fn total_ns(&self) -> f64 {
        self.spmm.sim.total_ns + self.dense.sim.total_ns + self.glue_ns
    }

    /// Fraction of layer time in the sparse aggregation.
    pub fn spmm_fraction(&self) -> f64 {
        self.spmm.sim.total_ns / self.total_ns()
    }

    /// Fraction of layer time in the dense update.
    pub fn dense_fraction(&self) -> f64 {
        self.dense.sim.total_ns / self.total_ns()
    }
}

/// Simulates one GCN layer (`H' = relu(A_hat H W)`) on `config`:
/// aggregation over `a` at width `k_in`, update `k_in -> k_out`.
///
/// # Errors
///
/// Propagates [`SimError`] from either kernel.
pub fn simulate_gcn_layer(
    config: &MachineConfig,
    a: &Csr,
    k_in: usize,
    k_out: usize,
) -> Result<GcnLayerSim, SimError> {
    let spmm = SpmmSimulation::new(config.clone(), SpmmVariant::Dma).run(a, k_in)?;
    let dense = simulate_dense_mm(
        config,
        GemmShape {
            rows: a.nrows(),
            k_in,
            k_out,
        },
    )?;
    // Glue: read + write of the output activation at aggregate bandwidth.
    let glue_bytes = 2.0 * (a.nrows() * k_out * 4) as f64;
    let glue_ns = glue_bytes / config.aggregate_bandwidth_gbps();
    Ok(GcnLayerSim {
        spmm,
        dense,
        glue_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Coo;

    fn twin(n: usize, deg: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = 0xFEEDusize;
        for u in 0..n {
            for _ in 0..deg {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                coo.push(u, (state >> 33) % n, 1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn dense_share_grows_with_k_in_simulation_too() {
        // The simulated composition must show Fig. 10's trend on a twin:
        // dense pressure rises with the embedding dimension.
        let cfg = MachineConfig::node(8);
        let a = twin(1 << 12, 8);
        let small = simulate_gcn_layer(&cfg, &a, 8, 8).unwrap();
        let large = simulate_gcn_layer(&cfg, &a, 256, 256).unwrap();
        assert!(
            large.dense_fraction() > small.dense_fraction(),
            "dense share {:.2} -> {:.2}",
            small.dense_fraction(),
            large.dense_fraction()
        );
        assert!(small.spmm_fraction() > 0.5, "small K should be SpMM-bound");
    }

    #[test]
    fn simulation_agrees_with_analytic_composition() {
        // The simulated layer and the analytic PiumaModel composition (same
        // machine size) must agree on the dense share within ~15 points on
        // a sparse twin at K=256 — the consistency the full-size figures
        // rely on.
        let cfg = MachineConfig::node(8);
        let a = twin(1 << 12, 6);

        let sim = simulate_gcn_layer(&cfg, &a, 256, 256).unwrap();

        let traffic = analytic::SpmmTraffic::compute(
            a.nrows(),
            a.nnz(),
            256,
            analytic::ElementSizes::default(),
        );
        let bw = cfg.aggregate_bandwidth_gbps() * 0.85 * 1e9;
        let spmm_model_ns = traffic.time_seconds(bw, bw) * 1e9;
        let dense_model = crate::dense_model::PiumaDenseModel::default();
        let dense_model_ns = dense_model.time_ns(&cfg, 2.0 * a.nrows() as f64 * 256.0 * 256.0);
        let model_dense_share = dense_model_ns / (dense_model_ns + spmm_model_ns);

        assert!(
            (sim.dense_fraction() - model_dense_share).abs() < 0.15,
            "sim {:.2} vs model {:.2}",
            sim.dense_fraction(),
            model_dense_share
        );
    }

    #[test]
    fn layer_totals_are_positive_and_composed() {
        let cfg = MachineConfig::node(2);
        let a = twin(1 << 10, 8);
        let layer = simulate_gcn_layer(&cfg, &a, 32, 16).unwrap();
        assert!(layer.total_ns() > layer.spmm.sim.total_ns);
        assert!(layer.total_ns() > layer.dense.sim.total_ns);
        assert!((layer.spmm_fraction() + layer.dense_fraction()) < 1.0);
    }
}
