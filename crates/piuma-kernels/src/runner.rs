//! Drives an SpMM variant over a CSR matrix on a simulated PIUMA machine.

use crate::placement::Placement;
use crate::programs::{partition_edges, DmaSpmmProgram, UnrolledSpmmProgram};
use crate::variant::SpmmVariant;
use analytic::{ElementSizes, SpmmTraffic};
use piuma_sim::resilience::guard::{RunGuard, RunOutcome};
use piuma_sim::{MachineConfig, SimError, SimResult, Simulator, ThreadSpec};
use sparse::Csr;
use std::sync::Arc;

/// Result of one simulated SpMM run, paired with the Eq. 1–5 roofline.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmmSimResult {
    /// Raw simulator output (timing, traffic, breakdowns, utilization).
    pub sim: SimResult,
    /// FLOP count of the kernel (`2 * |E| * K`).
    pub flops: f64,
    /// Achieved throughput in GFLOP/s.
    pub gflops: f64,
    /// Bandwidth-bound analytical-model throughput in GFLOP/s for the same
    /// machine (Eq. 5 at aggregate DRAM bandwidth).
    pub model_gflops: f64,
}

impl SpmmSimResult {
    /// Achieved fraction of the analytical model (the paper reports the DMA
    /// kernel within 10–20 % of the model, i.e. a fraction of 0.80–0.90).
    pub fn model_fraction(&self) -> f64 {
        if self.model_gflops <= 0.0 {
            return 0.0;
        }
        self.gflops / self.model_gflops
    }
}

/// A configured SpMM simulation: a machine plus a kernel variant.
///
/// # Examples
///
/// ```
/// use piuma_kernels::{SpmmSimulation, SpmmVariant};
/// use piuma_sim::MachineConfig;
/// use sparse::{Coo, Csr};
///
/// let mut coo = Coo::new(32, 32);
/// for i in 0..32usize {
///     coo.push(i, (i + 1) % 32, 1.0);
/// }
/// let a = Csr::from_coo(&coo);
/// let run = SpmmSimulation::new(MachineConfig::node(2), SpmmVariant::LoopUnrolled)
///     .run(&a, 8)
///     .unwrap();
/// assert!(run.sim.total_ns > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SpmmSimulation {
    config: MachineConfig,
    variant: SpmmVariant,
}

impl SpmmSimulation {
    /// Creates a simulation for the given machine and kernel variant.
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid.
    pub fn new(config: MachineConfig, variant: SpmmVariant) -> Self {
        config.assert_valid();
        SpmmSimulation { config, variant }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The kernel variant.
    pub fn variant(&self) -> SpmmVariant {
        self.variant
    }

    /// Simulates `out = a * H` for a dense operand of width `k` and returns
    /// timing plus the analytical roofline.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the engine (cannot occur for placements
    /// produced here, but the signature is honest).
    pub fn run(&self, a: &Csr, k: usize) -> Result<SpmmSimResult, SimError> {
        let specs = self.build_specs(a, k);
        let sim = Simulator::new(self.config.clone()).run(specs)?;
        Ok(self.attach_roofline(a, k, sim))
    }

    /// Like [`SpmmSimulation::run`], but polls `guard` during the event
    /// loop: a fired wall-clock budget or cancellation returns
    /// [`RunOutcome::Partial`] with the statistics simulated so far instead
    /// of letting a large graph monopolize the host. The roofline is
    /// attached to partial results too, so a truncated run still reports a
    /// (lower-bound) achieved throughput.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpmmSimulation::run`]; guard stops are not
    /// errors.
    pub fn run_guarded(
        &self,
        a: &Csr,
        k: usize,
        guard: &RunGuard,
    ) -> Result<RunOutcome<SpmmSimResult>, SimError> {
        let specs = self.build_specs(a, k);
        let outcome = Simulator::new(self.config.clone()).run_guarded(specs, guard)?;
        Ok(outcome.map(|sim| self.attach_roofline(a, k, sim)))
    }

    /// Builds the per-thread programs and placements for `a * H` (width
    /// `k`) on this machine.
    fn build_specs(&self, a: &Csr, k: usize) -> Vec<ThreadSpec> {
        let cfg = &self.config;
        let placement = Placement::new(cfg.total_slices(), cfg.cache_line_bytes);
        let csr = Arc::new(a.clone());

        let hw_threads = cfg.total_threads();
        // Never create more threads than edges; idle threads only slow the
        // simulation down.
        let threads = hw_threads.min(a.nnz().max(1));

        // Edge-parallel variants split non-zeros evenly (Algorithm 2);
        // the vertex-parallel variant statically splits *rows*, which is
        // exactly what exposes load imbalance on skewed graphs.
        let ranges = match self.variant {
            SpmmVariant::DmaVertexParallel => {
                let rows = a.nrows().max(1);
                let threads = threads.min(rows);
                (0..threads)
                    .map(|t| crate::programs::EdgeRange {
                        start: a.row_ptr()[t * rows / threads],
                        end: a.row_ptr()[(t + 1) * rows / threads],
                    })
                    .collect::<Vec<_>>()
            }
            _ => partition_edges(a.nnz(), threads),
        };

        let specs: Vec<ThreadSpec> = ranges
            .into_iter()
            .enumerate()
            .map(|(t, range)| {
                // Fill cores round-robin so small runs still spread over the
                // machine the way the runtime would place them.
                let core = if threads >= cfg.cores {
                    t % cfg.cores
                } else {
                    t * cfg.cores / threads
                };
                let program: Box<dyn piuma_sim::Program> = match self.variant {
                    SpmmVariant::Dma | SpmmVariant::DmaVertexParallel => {
                        Box::new(DmaSpmmProgram::new(csr.clone(), placement, range, k))
                    }
                    SpmmVariant::LoopUnrolled => Box::new(UnrolledSpmmProgram::new(
                        csr.clone(),
                        placement,
                        range,
                        k,
                        cfg.cache_line_bytes,
                    )),
                };
                ThreadSpec::on_core(core, program)
            })
            .collect();
        specs
    }

    /// Pairs a raw simulator result with the Eq. 1–5 analytical roofline.
    fn attach_roofline(&self, a: &Csr, k: usize, sim: SimResult) -> SpmmSimResult {
        let traffic = SpmmTraffic::compute(a.nrows(), a.nnz(), k, ElementSizes::default());
        let bw = self.config.aggregate_bandwidth_gbps() * 1e9; // bytes/s
        let model_time_s = traffic.time_seconds(bw, bw);
        let model_gflops = traffic.flops / model_time_s / 1e9;
        let gflops = sim.gflops(traffic.flops);
        SpmmSimResult {
            sim,
            flops: traffic.flops,
            gflops,
            model_gflops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Coo;

    /// A uniform random-ish graph big enough to saturate the machine but
    /// small enough for fast tests.
    fn test_graph(n: usize, deg: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = 0x12345678usize;
        for u in 0..n {
            for d in 0..deg {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = (state >> 33) % n;
                coo.push(u, v, 1.0 + d as f32 * 0.1);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn dma_variant_tracks_the_analytical_model() {
        let a = test_graph(1 << 10, 16);
        for k in [8usize, 64] {
            let run = SpmmSimulation::new(MachineConfig::single_core(), SpmmVariant::Dma)
                .run(&a, k)
                .unwrap();
            let frac = run.model_fraction();
            assert!(
                frac > 0.6 && frac <= 1.05,
                "K={k}: DMA variant at {frac:.2} of model"
            );
        }
    }

    #[test]
    fn dma_beats_unrolled_at_scale() {
        let a = test_graph(1 << 13, 16);
        let k = 64;
        let cfg = MachineConfig::node(8);
        let dma = SpmmSimulation::new(cfg.clone(), SpmmVariant::Dma)
            .run(&a, k)
            .unwrap();
        let unrolled = SpmmSimulation::new(cfg, SpmmVariant::LoopUnrolled)
            .run(&a, k)
            .unwrap();
        assert!(
            dma.gflops > unrolled.gflops * 1.2,
            "dma {} vs unrolled {}",
            dma.gflops,
            unrolled.gflops
        );
    }

    #[test]
    fn dma_strong_scaling_is_near_linear() {
        let a = test_graph(1 << 13, 16);
        let k = 64;
        let one = SpmmSimulation::new(MachineConfig::node(1), SpmmVariant::Dma)
            .run(&a, k)
            .unwrap();
        let four = SpmmSimulation::new(MachineConfig::node(4), SpmmVariant::Dma)
            .run(&a, k)
            .unwrap();
        let speedup = four.gflops / one.gflops;
        assert!(speedup > 3.0, "4-core DMA speedup only {speedup:.2}x");
    }

    #[test]
    fn unrolled_scaling_saturates() {
        // The loop-unrolled kernel must scale visibly worse than DMA from 1
        // to 8 cores (Fig. 5's divergence).
        let a = test_graph(1 << 13, 16);
        let k = 64;
        let eff = |variant| {
            let one = SpmmSimulation::new(MachineConfig::node(1), variant)
                .run(&a, k)
                .unwrap();
            let eight = SpmmSimulation::new(MachineConfig::node(8), variant)
                .run(&a, k)
                .unwrap();
            eight.gflops / one.gflops / 8.0
        };
        let dma_eff = eff(SpmmVariant::Dma);
        let unrolled_eff = eff(SpmmVariant::LoopUnrolled);
        assert!(
            dma_eff > unrolled_eff + 0.1,
            "dma parallel efficiency {dma_eff:.2} vs unrolled {unrolled_eff:.2}"
        );
    }

    #[test]
    fn vertex_parallel_suffers_on_power_law_graphs() {
        // Section II-C: "the vertex-parallel algorithm may exhibit load
        // imbalance". On a skewed twin, static row partitioning must lose
        // to edge partitioning; on a regular graph they should be close.
        let skewed = {
            let g = graph::Graph::rmat(&graph::RmatConfig::power_law(12, 16), 5);
            g.into_adjacency()
        };
        let cfg = MachineConfig::node(8);
        let k = 64;
        let edge = SpmmSimulation::new(cfg.clone(), SpmmVariant::Dma)
            .run(&skewed, k)
            .unwrap();
        let vertex = SpmmSimulation::new(cfg.clone(), SpmmVariant::DmaVertexParallel)
            .run(&skewed, k)
            .unwrap();
        assert!(
            edge.gflops > vertex.gflops * 1.15,
            "edge {:.1} vs vertex {:.1} on a power-law graph",
            edge.gflops,
            vertex.gflops
        );
        assert!(
            vertex.sim.load_imbalance() > edge.sim.load_imbalance(),
            "vertex imbalance {:.2} should exceed edge imbalance {:.2}",
            vertex.sim.load_imbalance(),
            edge.sim.load_imbalance()
        );

        let regular = test_graph(1 << 12, 16);
        let edge_r = SpmmSimulation::new(cfg.clone(), SpmmVariant::Dma)
            .run(&regular, k)
            .unwrap();
        let vertex_r = SpmmSimulation::new(cfg, SpmmVariant::DmaVertexParallel)
            .run(&regular, k)
            .unwrap();
        assert!(
            vertex_r.gflops > edge_r.gflops * 0.85,
            "regular graph: edge {:.1} vs vertex {:.1} should be close",
            edge_r.gflops,
            vertex_r.gflops
        );
    }

    #[test]
    fn guarded_run_completes_or_truncates_cleanly() {
        let a = test_graph(1 << 10, 8);
        let sim = SpmmSimulation::new(MachineConfig::single_core(), SpmmVariant::Dma);
        // Unbounded guard: identical to the plain run.
        let plain = sim.run(&a, 16).unwrap();
        let guard = RunGuard::unbounded();
        let outcome = sim.run_guarded(&a, 16, &guard).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.get().sim.total_ns, plain.sim.total_ns);

        // Pre-cancelled token: partial, with the roofline still attached.
        let token = piuma_sim::resilience::guard::CancelToken::new();
        token.cancel();
        let guard = RunGuard::with_token(token);
        let outcome = sim.run_guarded(&a, 16, &guard).unwrap();
        assert!(!outcome.is_complete());
        assert!(outcome.get().model_gflops > 0.0);
    }

    #[test]
    fn traffic_matches_model_within_tolerance() {
        let a = test_graph(1 << 10, 8);
        let k = 32;
        let run = SpmmSimulation::new(MachineConfig::node(2), SpmmVariant::Dma)
            .run(&a, k)
            .unwrap();
        let traffic = SpmmTraffic::compute(a.nrows(), a.nnz(), k, ElementSizes::default());
        // Reads: CSR + features (row-pointer accounting differs slightly).
        let ratio = run.sim.bytes_read / traffic.read_bytes();
        assert!(
            (0.9..1.2).contains(&ratio),
            "read traffic off by {ratio:.2}x"
        );
        // Writes: one row per vertex plus per-thread partial flushes.
        let wratio = run.sim.bytes_written / traffic.write_bytes;
        assert!(
            (0.9..1.3).contains(&wratio),
            "write traffic off by {wratio:.2}x"
        );
    }
}
