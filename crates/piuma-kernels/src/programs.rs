//! The per-thread SpMM instruction streams.
//!
//! Both variants walk a contiguous edge range of a shared CSR matrix
//! (edge-parallel work division, Algorithm 2) and differ only in the ops
//! they emit per edge. Programs are lazy: ops are generated one non-zero
//! line at a time, so simulating a million-edge kernel never materializes a
//! million-op vector per thread.

use crate::placement::Placement;
use piuma_sim::program::{Op, OpTag, Program};
use sparse::Csr;
use std::collections::VecDeque;
use std::sync::Arc;

/// Half-open edge range `[start, end)` assigned to one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRange {
    /// First edge index.
    pub start: usize,
    /// One past the last edge index.
    pub end: usize,
}

impl EdgeRange {
    /// Number of edges in the range.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the range holds no edges.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Splits `nnz` edges into `parts` contiguous ranges whose sizes differ by
/// at most one — exactly Algorithm 2's `start, end = t*|E|/T, (t+1)*|E|/T`.
pub fn partition_edges(nnz: usize, parts: usize) -> Vec<EdgeRange> {
    assert!(parts > 0, "need at least one partition");
    (0..parts)
        .map(|t| EdgeRange {
            start: t * nnz / parts,
            end: (t + 1) * nnz / parts,
        })
        .collect()
}

/// Locates the row containing edge `start` (binary search over `row_ptr`,
/// Algorithm 2 line 4).
fn row_of_edge(csr: &Csr, start: usize) -> usize {
    let row_ptr = csr.row_ptr();
    let mut u = row_ptr.partition_point(|&p| p <= start);
    u = u.saturating_sub(1);
    while row_ptr[u + 1] <= start {
        u += 1;
    }
    u
}

/// Common walking state shared by the two variants.
struct Walker {
    csr: Arc<Csr>,
    placement: Placement,
    range: EdgeRange,
    k: usize,
    /// Next edge to process.
    e: usize,
    /// Current output row.
    u: usize,
    /// Rows crossed since the last row-pointer line load.
    rows_since_ptr_load: usize,
    queue: VecDeque<Op>,
    finished: bool,
}

impl Walker {
    fn new(csr: Arc<Csr>, placement: Placement, range: EdgeRange, k: usize) -> Self {
        let mut queue = VecDeque::new();
        let mut u = 0;
        if !range.is_empty() {
            u = row_of_edge(&csr, range.start);
            // Binary search reads ~log2(V+1) row-pointer entries.
            let probes = (csr.nrows() + 1).next_power_of_two().trailing_zeros();
            for p in 0..probes {
                queue.push_back(Op::Load {
                    slice: placement.row_ptr_slice(p as usize),
                    bytes: 8.0,
                    tag: OpTag::RowPtrRead,
                });
            }
        }
        Walker {
            csr,
            placement,
            range,
            k,
            e: range.start,
            u,
            rows_since_ptr_load: 0,
            queue,
            finished: range.is_empty(),
        }
    }

    fn k_bytes(&self) -> f64 {
        (self.k * 4) as f64
    }

    /// Advances the row cursor past edge `e`, invoking `write_row` for every
    /// completed row and charging periodic row-pointer line loads.
    fn advance_rows(&mut self, e: usize, write_row: impl Fn(&Walker, usize) -> Op) {
        while e >= self.csr.row_ptr()[self.u + 1] {
            self.queue.push_back(write_row(self, self.u));
            self.u += 1;
            self.rows_since_ptr_load += 1;
            if self.rows_since_ptr_load >= self.placement.rows_per_ptr_line {
                self.rows_since_ptr_load = 0;
                self.queue.push_back(Op::Load {
                    slice: self.placement.row_ptr_slice(self.u),
                    bytes: self.placement.rows_per_ptr_line as f64 * 8.0,
                    tag: OpTag::RowPtrRead,
                });
            }
        }
    }
}

/// The DMA-offload SpMM program (the paper's optimized kernel).
///
/// Per non-zero line: one blocking line load of column indices/values, then
/// one DMA descriptor per edge that streams the neighbour's feature row
/// into the core-local accumulation buffer (vectorized multiply + copy-add,
/// modelled as a single engine pass). Completed rows are written back with
/// a DMA store; the program ends with a quiescing wait.
pub struct DmaSpmmProgram {
    w: Walker,
}

impl DmaSpmmProgram {
    /// Builds the program for one thread's edge range.
    pub fn new(csr: Arc<Csr>, placement: Placement, range: EdgeRange, k: usize) -> Self {
        DmaSpmmProgram {
            w: Walker::new(csr, placement, range, k),
        }
    }

    fn refill(&mut self) {
        if self.w.e >= self.w.range.end {
            if !self.w.finished {
                self.w.finished = true;
                // Flush the final (possibly partial) row and drain the engine.
                let k_bytes = self.w.k_bytes();
                let slice = self.w.placement.output_slice(self.w.u);
                self.w.queue.push_back(Op::Dma {
                    read_slice: None,
                    write_slice: Some(slice),
                    bytes: k_bytes,
                    tag: OpTag::OutputWrite,
                });
                self.w.queue.push_back(Op::DmaWait);
            }
            return;
        }
        // One non-zero cache line: blocking load, then a DMA descriptor per
        // edge it contains.
        let per_line = self.w.placement.edges_per_nnz_line;
        let line_start = self.w.e;
        let line_end = ((line_start / per_line + 1) * per_line).min(self.w.range.end);
        self.w.queue.push_back(Op::Load {
            slice: self.w.placement.nnz_slice(line_start),
            bytes: ((line_end - line_start) * 8) as f64,
            tag: OpTag::NnzRead,
        });
        let k_bytes = self.w.k_bytes();
        for e in line_start..line_end {
            self.w.advance_rows(e, |w, u| Op::Dma {
                read_slice: None,
                write_slice: Some(w.placement.output_slice(u)),
                bytes: w.k_bytes(),
                tag: OpTag::OutputWrite,
            });
            let v = self.w.csr.col_idx()[e] as usize;
            self.w.queue.push_back(Op::Dma {
                read_slice: Some(self.w.placement.feature_slice(v)),
                write_slice: None,
                bytes: k_bytes,
                tag: OpTag::FeatureRead,
            });
        }
        self.w.e = line_end;
    }
}

impl Program for DmaSpmmProgram {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            if let Some(op) = self.w.queue.pop_front() {
                return Some(op);
            }
            if self.w.finished {
                return None;
            }
            self.refill();
        }
    }
}

/// The loop-unrolled SpMM program (the paper's fundamental kernel).
///
/// Per edge: a blocking fine-grained 8-byte non-zero load, then blocking
/// 64-byte cache-line loads covering the neighbour's feature row, then the
/// MAC loop on the pipeline (8-way unrolled). Output rows are written with
/// posted line stores.
pub struct UnrolledSpmmProgram {
    w: Walker,
    line_bytes: f64,
}

impl UnrolledSpmmProgram {
    /// Builds the program for one thread's edge range.
    pub fn new(
        csr: Arc<Csr>,
        placement: Placement,
        range: EdgeRange,
        k: usize,
        cache_line_bytes: usize,
    ) -> Self {
        UnrolledSpmmProgram {
            w: Walker::new(csr, placement, range, k),
            line_bytes: cache_line_bytes as f64,
        }
    }

    fn push_row_store(queue: &mut VecDeque<Op>, slice: usize, k_bytes: f64, line: f64) {
        let mut remaining = k_bytes;
        while remaining > 0.0 {
            let chunk = remaining.min(line);
            queue.push_back(Op::Store {
                slice,
                bytes: chunk,
                tag: OpTag::OutputWrite,
            });
            remaining -= chunk;
        }
    }

    fn refill(&mut self) {
        if self.w.e >= self.w.range.end {
            if !self.w.finished {
                self.w.finished = true;
                let slice = self.w.placement.output_slice(self.w.u);
                let k_bytes = self.w.k_bytes();
                Self::push_row_store(&mut self.w.queue, slice, k_bytes, self.line_bytes);
            }
            return;
        }
        let e = self.w.e;
        let line = self.line_bytes;
        self.w.advance_rows(e, |w, u| {
            // Posted stores happen inside advance_rows via a single op; the
            // closure interface forces one op, so emit the full row here and
            // rely on the bandwidth server (granularity does not change the
            // byte count or the posted semantics).
            Op::Store {
                slice: w.placement.output_slice(u),
                bytes: w.k_bytes(),
                tag: OpTag::OutputWrite,
            }
        });
        // Fine-grained 8-byte non-zero read (column index + value).
        self.w.queue.push_back(Op::Load {
            slice: self.w.placement.nnz_slice(e),
            bytes: 8.0,
            tag: OpTag::NnzRead,
        });
        // Blocking cache-line loads covering the feature row.
        let v = self.w.csr.col_idx()[e] as usize;
        let slice = self.w.placement.feature_slice(v);
        let mut remaining = self.w.k_bytes();
        while remaining > 0.0 {
            let chunk = remaining.min(line);
            self.w.queue.push_back(Op::Load {
                slice,
                bytes: chunk,
                tag: OpTag::FeatureRead,
            });
            remaining -= chunk;
        }
        // 8-way unrolled MAC loop on the scalar pipeline.
        self.w.queue.push_back(Op::Compute {
            cycles: (self.w.k as f64 / 8.0).max(1.0),
        });
        self.w.e += 1;
    }
}

impl Program for UnrolledSpmmProgram {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            if let Some(op) = self.w.queue.pop_front() {
                return Some(op);
            }
            if self.w.finished {
                return None;
            }
            self.refill();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Coo;

    fn chain_csr(n: usize) -> Arc<Csr> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 1.0);
            coo.push(i, (i + 2) % n, 0.5);
        }
        Arc::new(Csr::from_coo(&coo))
    }

    fn drain(mut p: impl Program) -> Vec<Op> {
        let mut ops = Vec::new();
        while let Some(op) = p.next_op() {
            ops.push(op);
        }
        ops
    }

    #[test]
    fn partition_covers_all_edges_disjointly() {
        for (nnz, parts) in [(100, 7), (5, 8), (0, 3), (64, 64)] {
            let ranges = partition_edges(nnz, parts);
            assert_eq!(ranges.len(), parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, nnz);
        }
    }

    #[test]
    fn row_of_edge_matches_linear_scan() {
        let csr = chain_csr(32);
        for e in 0..csr.nnz() {
            let expected = (0..csr.nrows())
                .find(|&u| csr.row_ptr()[u] <= e && e < csr.row_ptr()[u + 1])
                .unwrap();
            assert_eq!(row_of_edge(&csr, e), expected, "edge {e}");
        }
    }

    #[test]
    fn dma_program_traffic_matches_analytical_model() {
        let csr = chain_csr(64);
        let k = 16;
        let placement = Placement::new(4, 64);
        let range = EdgeRange {
            start: 0,
            end: csr.nnz(),
        };
        let ops = drain(DmaSpmmProgram::new(csr.clone(), placement, range, k));

        let mut nnz_bytes = 0.0;
        let mut feature_bytes = 0.0;
        let mut write_bytes = 0.0;
        let mut feature_reads = 0;
        for op in &ops {
            match op {
                Op::Load {
                    bytes,
                    tag: OpTag::NnzRead,
                    ..
                } => nnz_bytes += bytes,
                Op::Dma {
                    bytes,
                    tag: OpTag::FeatureRead,
                    ..
                } => {
                    feature_bytes += bytes;
                    feature_reads += 1;
                }
                Op::Dma {
                    bytes,
                    tag: OpTag::OutputWrite,
                    ..
                } => write_bytes += bytes,
                _ => {}
            }
        }
        // Eq. 1-3: 8 bytes per edge of NNZ data, K*4 per edge of features,
        // K*4 per row of output (single thread: exactly nrows rows flushed,
        // as the final flush covers the last row).
        assert_eq!(nnz_bytes, (csr.nnz() * 8) as f64);
        assert_eq!(feature_reads, csr.nnz());
        assert_eq!(feature_bytes, (csr.nnz() * k * 4) as f64);
        assert_eq!(write_bytes, (csr.nrows() * k * 4) as f64);
        // The program must end with a quiescing wait.
        assert!(ops.iter().rev().any(|op| matches!(op, Op::DmaWait)));
    }

    #[test]
    fn unrolled_program_issues_blocking_feature_lines() {
        let csr = chain_csr(16);
        let k = 32; // 128 bytes -> 2 lines per edge
        let placement = Placement::new(2, 64);
        let range = EdgeRange {
            start: 0,
            end: csr.nnz(),
        };
        let ops = drain(UnrolledSpmmProgram::new(
            csr.clone(),
            placement,
            range,
            k,
            64,
        ));
        let feature_loads = ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    Op::Load {
                        tag: OpTag::FeatureRead,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(feature_loads, csr.nnz() * 2);
        let nnz_loads = ops
            .iter()
            .filter(|op| matches!(op, Op::Load { tag: OpTag::NnzRead, bytes, .. } if *bytes == 8.0))
            .count();
        assert_eq!(nnz_loads, csr.nnz());
        // No DMA ops in the unrolled variant.
        assert!(!ops.iter().any(|op| matches!(op, Op::Dma { .. })));
    }

    #[test]
    fn split_ranges_cover_each_edge_exactly_once() {
        let csr = chain_csr(64);
        let k = 8;
        let placement = Placement::new(4, 64);
        let mut total_feature_reads = 0;
        for range in partition_edges(csr.nnz(), 5) {
            let ops = drain(DmaSpmmProgram::new(csr.clone(), placement, range, k));
            total_feature_reads += ops
                .iter()
                .filter(|op| {
                    matches!(
                        op,
                        Op::Dma {
                            tag: OpTag::FeatureRead,
                            ..
                        }
                    )
                })
                .count();
        }
        assert_eq!(total_feature_reads, csr.nnz());
    }

    #[test]
    fn empty_range_produces_no_ops() {
        let csr = chain_csr(8);
        let placement = Placement::new(2, 64);
        let range = EdgeRange { start: 4, end: 4 };
        assert!(drain(DmaSpmmProgram::new(csr.clone(), placement, range, 8)).is_empty());
        assert!(drain(UnrolledSpmmProgram::new(csr, placement, range, 8, 64)).is_empty());
    }
}
