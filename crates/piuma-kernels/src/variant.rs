//! Kernel variant selection.

use serde::{Deserialize, Serialize};

/// Which SpMM implementation to simulate (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpmmVariant {
    /// Pipeline-issued loads with 8-wide loop unrolling; every memory access
    /// blocks its thread.
    LoopUnrolled,
    /// DMA-offloaded feature movement; the pipeline only reads non-zeros and
    /// enqueues descriptors.
    Dma,
    /// DMA-offloaded, but *vertex*-parallel: whole rows are assigned to
    /// threads (no atomics, no binary search), exposing the load-imbalance
    /// cost Section II-C attributes to this strategy on power-law graphs.
    DmaVertexParallel,
}

impl std::fmt::Display for SpmmVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpmmVariant::LoopUnrolled => f.write_str("loop-unrolled"),
            SpmmVariant::Dma => f.write_str("dma"),
            SpmmVariant::DmaVertexParallel => f.write_str("dma-vertex-parallel"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper_labels() {
        assert_eq!(SpmmVariant::Dma.to_string(), "dma");
        assert_eq!(
            SpmmVariant::DmaVertexParallel.to_string(),
            "dma-vertex-parallel"
        );
        assert_eq!(SpmmVariant::LoopUnrolled.to_string(), "loop-unrolled");
    }
}
