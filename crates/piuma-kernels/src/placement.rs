//! DGAS data placement: which DRAM slice holds which array element.
//!
//! PIUMA distributes shared arrays across all DRAM slices of the machine
//! (block-cyclic in hardware). At the granularity this simulator works at,
//! what matters is that (a) accesses spread uniformly over slices and
//! (b) the mapping is deterministic. Rows and cache lines map to slices by
//! simple modular placement.

use serde::{Deserialize, Serialize};

/// Placement of the SpMM operands over `slices` DRAM slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    slices: usize,
    /// Edges per non-zero cache line (line bytes / 8-byte column+value pair).
    pub edges_per_nnz_line: usize,
    /// Row-pointer entries per cache line (line bytes / 8-byte pointer).
    pub rows_per_ptr_line: usize,
}

impl Placement {
    /// Builds the placement for a machine with `slices` DRAM slices and the
    /// given cache-line size.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero or the line is smaller than 8 bytes.
    pub fn new(slices: usize, cache_line_bytes: usize) -> Self {
        assert!(slices > 0, "need at least one slice");
        assert!(cache_line_bytes >= 8, "cache line must hold one element");
        Placement {
            slices,
            edges_per_nnz_line: cache_line_bytes / 8,
            rows_per_ptr_line: cache_line_bytes / 8,
        }
    }

    /// Number of slices.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Slice holding the feature row of vertex `v`.
    pub fn feature_slice(&self, v: usize) -> usize {
        // Multiplicative scrambling avoids pathological stride alignment
        // between vertex ids and slice count.
        scramble(v) % self.slices
    }

    /// Slice holding the output row of vertex `u`.
    pub fn output_slice(&self, u: usize) -> usize {
        scramble(u.wrapping_add(0x9e37)) % self.slices
    }

    /// Slice holding the non-zero (column/value) line containing edge `e`.
    pub fn nnz_slice(&self, e: usize) -> usize {
        scramble(e / self.edges_per_nnz_line) % self.slices
    }

    /// Slice holding the row-pointer line containing row `r`.
    pub fn row_ptr_slice(&self, r: usize) -> usize {
        scramble(r / self.rows_per_ptr_line) % self.slices
    }
}

/// Cheap deterministic integer scrambler (splitmix-style avalanche).
fn scramble(x: usize) -> usize {
    let mut z = x.wrapping_mul(0x9E3779B97F4A7C15);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 27;
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_slices_are_reachable_and_balanced() {
        let p = Placement::new(8, 64);
        let mut counts = [0usize; 8];
        for v in 0..8000 {
            counts[p.feature_slice(v)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&c),
                "slice {s} got {c} of 8000 accesses"
            );
        }
    }

    #[test]
    fn single_slice_maps_everything_to_zero() {
        let p = Placement::new(1, 64);
        assert_eq!(p.feature_slice(123), 0);
        assert_eq!(p.nnz_slice(456), 0);
        assert_eq!(p.output_slice(7), 0);
        assert_eq!(p.row_ptr_slice(9), 0);
    }

    #[test]
    fn nnz_lines_group_adjacent_edges() {
        let p = Placement::new(4, 64);
        assert_eq!(p.edges_per_nnz_line, 8);
        // Edges in the same line map to the same slice.
        assert_eq!(p.nnz_slice(0), p.nnz_slice(7));
        // Mapping is deterministic.
        assert_eq!(p.nnz_slice(8), p.nnz_slice(8));
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn zero_slices_is_rejected() {
        Placement::new(0, 64);
    }
}
