//! Random walks on PIUMA — the latency-bound workload of Section VI.
//!
//! The paper's Discussion: neighbour-sampling GNNs (PinSAGE/GraphSAGE) rest
//! on random walks, "known to be latency bound, and PIUMA being latency
//! optimized has been shown to greatly accelerate random-walk over standard
//! CPUs". A walk step is two *dependent* memory accesses (row pointer, then
//! a random neighbour) with no spatial locality, so per-walk latency cannot
//! be hidden — only *throughput* across many concurrent walkers can, and
//! that is exactly what 16-thread MTPs provide.

use crate::placement::Placement;
use piuma_sim::program::{Op, OpTag, Program};
use piuma_sim::{MachineConfig, SimError, SimResult, Simulator, ThreadSpec};
use sparse::Csr;
use std::sync::Arc;

/// One walker: a chain of dependent row-pointer / neighbour loads.
struct WalkProgram {
    csr: Arc<Csr>,
    placement: Placement,
    current: usize,
    steps_left: usize,
    rng_state: u64,
    phase: WalkPhase,
}

enum WalkPhase {
    LoadRowPtr,
    LoadNeighbor,
}

impl WalkProgram {
    fn new(csr: Arc<Csr>, placement: Placement, start: usize, steps: usize, seed: u64) -> Self {
        WalkProgram {
            csr,
            placement,
            current: start,
            steps_left: steps,
            rng_state: seed | 1,
            phase: WalkPhase::LoadRowPtr,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — cheap, deterministic, good enough for load spreading.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl Program for WalkProgram {
    fn next_op(&mut self) -> Option<Op> {
        if self.steps_left == 0 {
            return None;
        }
        match self.phase {
            WalkPhase::LoadRowPtr => {
                self.phase = WalkPhase::LoadNeighbor;
                Some(Op::Load {
                    slice: self.placement.row_ptr_slice(self.current),
                    bytes: 16.0, // row_ptr[u] and row_ptr[u+1]
                    tag: OpTag::RowPtrRead,
                })
            }
            WalkPhase::LoadNeighbor => {
                self.phase = WalkPhase::LoadRowPtr;
                self.steps_left -= 1;
                let degree = self.csr.row_nnz(self.current);
                let pick = (self.next_u64() as usize) % degree.max(1);
                let slice = self
                    .placement
                    .nnz_slice(self.csr.row_ptr()[self.current] + pick);
                // Advance the walk (sinks restart at a random vertex, as
                // PageRank-style walkers do).
                let restart = (self.next_u64() as usize) % self.csr.nrows().max(1);
                self.current = if degree == 0 {
                    restart
                } else {
                    self.csr.row_cols(self.current)[pick] as usize
                };
                Some(Op::Load {
                    slice,
                    bytes: 4.0,
                    tag: OpTag::NnzRead,
                })
            }
        }
    }
}

/// Result of a random-walk simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkSimResult {
    /// Raw simulator output.
    pub sim: SimResult,
    /// Total steps taken across all walkers.
    pub total_steps: usize,
    /// Achieved throughput in million steps per second.
    pub msteps_per_second: f64,
}

/// Simulates `walkers` concurrent random walks of `steps` steps each.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn simulate_random_walks(
    config: &MachineConfig,
    a: &Csr,
    walkers: usize,
    steps: usize,
) -> Result<WalkSimResult, SimError> {
    config.assert_valid();
    let placement = Placement::new(config.total_slices(), config.cache_line_bytes);
    let csr = Arc::new(a.clone());
    let walkers = walkers.max(1);
    let specs: Vec<ThreadSpec> = (0..walkers)
        .map(|w| {
            let start = (w * 2654435761) % a.nrows().max(1);
            ThreadSpec::on_core(
                w % config.cores,
                Box::new(WalkProgram::new(
                    csr.clone(),
                    placement,
                    start,
                    steps,
                    w as u64 + 1,
                )),
            )
        })
        .collect();
    let sim = Simulator::new(config.clone()).run(specs)?;
    let total_steps = walkers * steps;
    let msteps = if sim.total_ns > 0.0 {
        total_steps as f64 / sim.total_ns * 1e3
    } else {
        0.0
    };
    Ok(WalkSimResult {
        sim,
        total_steps,
        msteps_per_second: msteps,
    })
}

/// A first-order CPU random-walk throughput model for comparison: each core
/// sustains `mlp` outstanding dependent chains... but a *single* walk chain
/// is strictly serial, so a core running `chains` independent walkers
/// interleaved in software sustains at most `mlp` in flight. Throughput =
/// `cores * mlp / latency` steps/ns, with two accesses per step.
pub fn cpu_walk_msteps_per_second(cores: usize, mlp: f64, dram_latency_ns: f64) -> f64 {
    (cores as f64 * mlp / (2.0 * dram_latency_ns)) * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Coo;

    fn twin(n: usize, deg: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = 0xABCDusize;
        for u in 0..n {
            for _ in 0..deg {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                coo.push(u, (state >> 33) % n, 1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn walks_are_latency_bound_not_bandwidth_bound() {
        let cfg = MachineConfig::node(4);
        let a = twin(1 << 12, 8);
        let r = simulate_random_walks(&cfg, &a, cfg.total_threads(), 64).unwrap();
        // 20 bytes per step: bandwidth is nowhere near the limit.
        assert!(
            r.sim.dram_utilization < 0.3,
            "dram {:.2}",
            r.sim.dram_utilization
        );
        assert!(r.msteps_per_second > 0.0);
    }

    #[test]
    fn more_walkers_hide_more_latency() {
        let cfg = MachineConfig::node(4);
        let a = twin(1 << 12, 8);
        let few = simulate_random_walks(&cfg, &a, 16, 64).unwrap();
        let many = simulate_random_walks(&cfg, &a, cfg.total_threads(), 64).unwrap();
        assert!(
            many.msteps_per_second > few.msteps_per_second * 4.0,
            "few {:.1} vs many {:.1} Msteps/s",
            few.msteps_per_second,
            many.msteps_per_second
        );
    }

    #[test]
    fn piuma_walk_throughput_beats_cpu_model() {
        // An 8-core PIUMA die with 512 hardware threads vs one 40-core
        // Xeon socket. Dependent random loads limit a CPU core to its
        // miss-buffer depth (~8 chains in practice once walker state
        // management is paid) at a loaded latency of ~120 ns; the die's
        // thread count wins despite its slower clock (paper: "greatly
        // accelerate random-walk over standard CPUs").
        let cfg = MachineConfig::node(8);
        let a = twin(1 << 13, 8);
        let piuma = simulate_random_walks(&cfg, &a, cfg.total_threads(), 64).unwrap();
        let cpu = cpu_walk_msteps_per_second(40, 8.0, 120.0);
        assert!(
            piuma.msteps_per_second > cpu,
            "piuma {:.1} vs cpu {:.1} Msteps/s",
            piuma.msteps_per_second,
            cpu
        );
    }

    #[test]
    fn per_walk_latency_is_not_hidden() {
        // A SINGLE walker's time is ~steps x 2 x latency regardless of the
        // machine: dependent chains do not parallelize.
        let cfg = MachineConfig::single_core();
        let a = twin(1 << 10, 8);
        let steps = 128;
        let r = simulate_random_walks(&cfg, &a, 1, steps).unwrap();
        let lower_bound = steps as f64 * 2.0 * cfg.dram_latency_ns;
        assert!(
            r.sim.total_ns >= lower_bound,
            "walk {} ns vs serial floor {} ns",
            r.sim.total_ns,
            lower_bound
        );
    }

    #[test]
    fn sinks_restart_instead_of_hanging() {
        // A graph with an absorbing vertex (no out-edges): walks must still
        // complete all steps.
        let mut coo = Coo::new(4, 4);
        coo.push(0, 3, 1.0); // 3 is a sink
        coo.push(1, 3, 1.0);
        coo.push(2, 3, 1.0);
        let a = Csr::from_coo(&coo);
        let cfg = MachineConfig::single_core();
        let r = simulate_random_walks(&cfg, &a, 4, 32).unwrap();
        assert_eq!(r.total_steps, 128);
        assert!(r.sim.total_ns > 0.0);
    }
}
