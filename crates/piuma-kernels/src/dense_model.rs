//! Dense MM on PIUMA — a calibrated throughput model.
//!
//! The paper does not simulate Dense MM on PIUMA; it uses the *observed peak
//! FLOPS* from prior work (Tithi et al., "SU3 Bench on PIUMA", ref. [21])
//! to price the GCN update phase (Section V-B). We do the same: a per-core
//! sustained GEMM rate, calibrated so that a full node's dense throughput
//! sits slightly below a dual-socket Xeon's — which is what produces the
//! paper's two headline observations:
//!
//! * Dense MM *dominates* PIUMA's GCN time at large embedding dimensions
//!   (Fig. 10: >75 % for arxiv/collab/mag/citation2/papers at K = 256), and
//! * PIUMA's *overall* GCN speedup over CPU shrinks as K grows but stays
//!   above 1 (Fig. 9), because the SpMM savings still outweigh the dense
//!   slowdown.
#![allow(clippy::doc_markdown)]

use piuma_sim::MachineConfig;
use serde::{Deserialize, Serialize};

/// Calibrated dense-GEMM throughput model for PIUMA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiumaDenseModel {
    /// Sustained GEMM GFLOP/s per PIUMA core. PIUMA pipelines are scalar
    /// (no SIMD unit — the dense weakness the paper's Discussion section
    /// proposes fixing with a heterogeneous SoC), but a core hosts many MTP
    /// threads each retiring a MAC per cycle in the best case:
    /// 4 MTPs x 16 threads... bounded in practice by issue slots. The
    /// default (140 GFLOP/s) makes a 32-core node ~0.76x a dual-socket
    /// Xeon 8380's sustained GEMM, consistent with [21]'s observation that
    /// PIUMA is roughly at parity per node on dense kernels.
    pub gflops_per_core: f64,
    /// Fraction of peak sustained on real GEMM shapes.
    pub efficiency: f64,
}

impl Default for PiumaDenseModel {
    fn default() -> Self {
        PiumaDenseModel {
            gflops_per_core: 110.0,
            efficiency: 0.85,
        }
    }
}

impl PiumaDenseModel {
    /// Sustained dense throughput of a whole machine, in FLOP/s.
    pub fn node_flops_per_second(&self, config: &MachineConfig) -> f64 {
        self.gflops_per_core * 1e9 * config.cores as f64 * self.efficiency
    }

    /// Time in nanoseconds to execute `flops` of dense work.
    ///
    /// # Panics
    ///
    /// Panics if the model rates are non-positive.
    pub fn time_ns(&self, config: &MachineConfig, flops: f64) -> f64 {
        let rate = self.node_flops_per_second(config);
        assert!(rate > 0.0, "dense model rate must be positive");
        flops / rate * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_rate_scales_with_cores() {
        let m = PiumaDenseModel::default();
        let one = m.node_flops_per_second(&MachineConfig::node(1));
        let eight = m.node_flops_per_second(&MachineConfig::node(8));
        assert!((eight / one - 8.0).abs() < 1e-9);
    }

    #[test]
    fn default_node_is_below_xeon_dense_peak() {
        // Dual-socket Xeon 8380 sustains ~4.7 TFLOP/s on large FP32 GEMM
        // (5.9 peak x ~0.8). A 32-core PIUMA node should land below that.
        let m = PiumaDenseModel::default();
        let node = m.node_flops_per_second(&MachineConfig::node(32));
        assert!(node < 4.7e12);
        assert!(node > 2.0e12, "node dense rate implausibly low: {node}");
    }

    #[test]
    fn time_is_linear_in_flops() {
        let m = PiumaDenseModel::default();
        let cfg = MachineConfig::node(4);
        let t1 = m.time_ns(&cfg, 1e9);
        let t2 = m.time_ns(&cfg, 2e9);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }
}
