//! Structural graph analysis: BFS, connected components, and degree
//! histograms — the characterization utilities behind dataset profiling.

use crate::graph_type::Graph;
use std::collections::VecDeque;

/// Breadth-first distances from `start` following out-edges; unreachable
/// vertices get `usize::MAX`.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_distances(graph: &Graph, start: usize) -> Vec<usize> {
    assert!(start < graph.vertices(), "start vertex out of range");
    let adj = graph.adjacency();
    let mut dist = vec![usize::MAX; graph.vertices()];
    let mut queue = VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &v in adj.row_cols(u) {
            let v = v as usize;
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Weakly connected components (edges treated as undirected): returns a
/// component id per vertex, ids dense from 0 in discovery order.
pub fn connected_components(graph: &Graph) -> Vec<usize> {
    let n = graph.vertices();
    let adj = graph.adjacency();
    let reverse = adj.transpose();
    let mut component = vec![usize::MAX; n];
    let mut next_id = 0usize;
    let mut queue = VecDeque::new();
    for root in 0..n {
        if component[root] != usize::MAX {
            continue;
        }
        component[root] = next_id;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in adj.row_cols(u).iter().chain(reverse.row_cols(u)) {
                let v = v as usize;
                if component[v] == usize::MAX {
                    component[v] = next_id;
                    queue.push_back(v);
                }
            }
        }
        next_id += 1;
    }
    component
}

/// Number of weakly connected components.
pub fn component_count(graph: &Graph) -> usize {
    connected_components(graph)
        .into_iter()
        .max()
        .map_or(0, |m| m + 1)
}

/// Out-degree histogram with power-of-two buckets:
/// `histogram[i]` counts vertices with degree in `[2^i, 2^(i+1))`,
/// except bucket 0 which counts degree 0 and 1.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let adj = graph.adjacency();
    let mut histogram: Vec<usize> = Vec::new();
    for u in 0..graph.vertices() {
        let d = adj.row_nnz(u);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize - 1
        };
        if histogram.len() <= bucket {
            histogram.resize(bucket + 1, 0);
        }
        histogram[bucket] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::RmatConfig;

    #[test]
    fn bfs_distances_on_a_path() {
        let g = Graph::from_directed_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![usize::MAX, usize::MAX, 0, 1]);
    }

    #[test]
    fn components_split_disconnected_pieces() {
        let g = Graph::from_undirected_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let c = connected_components(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[4], c[5]);
        assert_ne!(c[0], c[3]);
        assert_ne!(c[0], c[4]);
        assert_eq!(component_count(&g), 3);
    }

    #[test]
    fn directed_edges_count_as_weak_links() {
        let g = Graph::from_directed_edges(3, &[(0, 1), (2, 1)]);
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        // Degrees: 0, 1, 2, 3, 4, 8.
        let mut edges = Vec::new();
        for (u, d) in [(1usize, 1usize), (2, 2), (3, 3), (4, 4), (5, 8)] {
            for i in 0..d {
                edges.push((u, (u + i + 1) % 16));
            }
        }
        let g = Graph::from_directed_edges(16, &edges);
        let h = degree_histogram(&g);
        // bucket 0: deg<=1 -> vertices 0 and 1 plus the 10 untouched = 12.
        assert_eq!(h[0], 12);
        assert_eq!(h[1], 2); // degrees 2 and 3
        assert_eq!(h[2], 1); // degree 4
        assert_eq!(h[3], 1); // degree 8
        assert_eq!(h.iter().sum::<usize>(), 16);
    }

    #[test]
    fn power_law_graphs_have_long_histogram_tails() {
        let skew = degree_histogram(&Graph::rmat(&RmatConfig::power_law(10, 8), 1));
        let flat = degree_histogram(&Graph::rmat(&RmatConfig::uniform(10, 8), 1));
        assert!(
            skew.len() > flat.len(),
            "power-law tail {} vs uniform {}",
            skew.len(),
            flat.len()
        );
    }

    #[test]
    fn rmat_twins_are_mostly_connected() {
        let g = Graph::rmat(&RmatConfig::power_law(9, 8), 2);
        let components = connected_components(&g);
        let main_size = {
            let mut counts = vec![0usize; component_count(&g)];
            for &c in &components {
                counts[c] += 1;
            }
            counts.into_iter().max().unwrap_or(0)
        };
        assert!(
            main_size > g.vertices() / 2,
            "giant component holds {main_size} of {}",
            g.vertices()
        );
    }
}
