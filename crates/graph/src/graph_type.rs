//! The [`Graph`] type: adjacency CSR plus GCN conveniences.

use crate::rmat::RmatConfig;
use matrix::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::norm::{normalize, NormKind};
use sparse::{Coo, Csr, DegreeStats};

/// A directed graph stored as an adjacency matrix in CSR form.
///
/// Row `u` of the adjacency holds the out-neighbours of vertex `u`. For the
/// GCN aggregation `H_out[u] = sum_v A_hat[u,v] * H_in[v]`, the non-zeros of
/// row `u` are the *in-edges* contributing to `u`; for graphs built through
/// [`Graph::from_undirected_edges`] the distinction vanishes.
///
/// # Examples
///
/// ```
/// use graph::Graph;
///
/// let g = Graph::from_undirected_edges(3, &[(0, 1), (1, 2)]);
/// assert_eq!(g.vertices(), 3);
/// assert_eq!(g.edges(), 4); // each undirected edge stored twice
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    adjacency: Csr,
}

impl Graph {
    /// Wraps an existing square adjacency CSR.
    ///
    /// # Panics
    ///
    /// Panics if `adjacency` is not square.
    pub fn from_adjacency(adjacency: Csr) -> Self {
        assert_eq!(
            adjacency.nrows(),
            adjacency.ncols(),
            "adjacency matrix must be square"
        );
        Graph { adjacency }
    }

    /// Builds a graph from a directed edge list with unit weights.
    /// Duplicate edges are merged (weights summed, then clamped to 1).
    pub fn from_directed_edges(vertices: usize, edges: &[(usize, usize)]) -> Self {
        let mut coo = Coo::with_capacity(vertices, vertices, edges.len());
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
        }
        let mut csr = Csr::from_coo(&coo);
        csr = clamp_weights(csr);
        Graph { adjacency: csr }
    }

    /// Builds a graph from an undirected edge list: every `(u, v)` is stored
    /// in both directions with unit weight.
    pub fn from_undirected_edges(vertices: usize, edges: &[(usize, usize)]) -> Self {
        let mut coo = Coo::with_capacity(vertices, vertices, edges.len() * 2);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            if u != v {
                coo.push(v, u, 1.0);
            }
        }
        let csr = clamp_weights(Csr::from_coo(&coo));
        Graph { adjacency: csr }
    }

    /// Generates a graph with the R-MAT recursive generator.
    /// See [`RmatConfig`] for the knobs; `seed` makes the run reproducible.
    pub fn rmat(config: &RmatConfig, seed: u64) -> Self {
        crate::rmat::generate(config, seed)
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.adjacency.nrows()
    }

    /// Number of stored directed edges (adjacency non-zeros).
    pub fn edges(&self) -> usize {
        self.adjacency.nnz()
    }

    /// Adjacency density `|E| / |V|^2`.
    pub fn density(&self) -> f64 {
        self.adjacency.density()
    }

    /// Borrows the adjacency CSR.
    pub fn adjacency(&self) -> &Csr {
        &self.adjacency
    }

    /// Consumes the graph and returns the adjacency CSR.
    pub fn into_adjacency(self) -> Csr {
        self.adjacency
    }

    /// Out-degree statistics.
    pub fn degree_stats(&self) -> DegreeStats {
        DegreeStats::of(&self.adjacency)
    }

    /// The GCN-normalized adjacency `A_hat = D^-1/2 (A + I) D^-1/2`.
    ///
    /// # Errors
    ///
    /// Propagates [`sparse::SparseError`] (cannot occur for a `Graph`, whose
    /// adjacency is square by construction, but the signature mirrors
    /// [`sparse::norm::normalize`]).
    pub fn normalized_adjacency(&self) -> sparse::Result<Csr> {
        normalize(&self.adjacency, NormKind::Symmetric)
    }

    /// Generates a random `|V| x dim` feature matrix with entries in
    /// `[-1, 1)`, seeded for reproducibility.
    pub fn random_features(&self, dim: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.vertices();
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        DenseMatrix::from_vec(n, dim, data).expect("shape matches by construction")
    }
}

/// Clamps all edge weights to 1.0 (merged duplicates become simple edges).
fn clamp_weights(csr: Csr) -> Csr {
    let (nrows, ncols) = csr.shape();
    let row_ptr = csr.row_ptr().to_vec();
    let col_idx = csr.col_idx().to_vec();
    let values = vec![1.0f32; csr.nnz()];
    Csr::from_raw(nrows, ncols, row_ptr, col_idx, values)
        .expect("rebuilding validated CSR with same structure")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_edges_appear_both_ways() {
        let g = Graph::from_undirected_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(g.adjacency().get(0, 1), Some(1.0));
        assert_eq!(g.adjacency().get(1, 0), Some(1.0));
        assert_eq!(g.adjacency().get(3, 2), Some(1.0));
        assert_eq!(g.edges(), 4);
    }

    #[test]
    fn duplicate_edges_are_merged_with_unit_weight() {
        let g = Graph::from_directed_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.edges(), 1);
        assert_eq!(g.adjacency().get(0, 1), Some(1.0));
    }

    #[test]
    fn self_loop_in_undirected_list_stored_once() {
        let g = Graph::from_undirected_edges(2, &[(1, 1)]);
        assert_eq!(g.edges(), 1);
        assert_eq!(g.adjacency().get(1, 1), Some(1.0));
    }

    #[test]
    fn normalized_adjacency_has_self_loops() {
        let g = Graph::from_undirected_edges(3, &[(0, 1)]);
        let a_hat = g.normalized_adjacency().unwrap();
        for i in 0..3 {
            assert!(a_hat.get(i, i).is_some(), "missing self loop at {i}");
        }
    }

    #[test]
    fn random_features_are_reproducible_and_in_range() {
        let g = Graph::from_undirected_edges(5, &[(0, 1)]);
        let f1 = g.random_features(8, 99);
        let f2 = g.random_features(8, 99);
        assert_eq!(f1, f2);
        assert_eq!(f1.shape(), (5, 8));
        assert!(f1.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_adjacency_panics() {
        Graph::from_adjacency(Csr::empty(2, 3));
    }
}
