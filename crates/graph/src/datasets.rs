//! The Open Graph Benchmark dataset catalog (Table I of the paper).
//!
//! The paper evaluates nine OGB graphs spanning four orders of magnitude in
//! scale. We cannot redistribute the datasets, so this module provides:
//!
//! * the exact published `|V|` / `|E|` (plus standard feature/class
//!   dimensions) for the **analytical** paths — every timing model needs
//!   only these scalars, and
//! * [`OgbDataset::materialize_scaled`] — a *scaled synthetic twin* for the
//!   **functional** paths (host kernels, discrete-event simulation): an
//!   R-MAT graph with the same average degree and a skew class matching the
//!   dataset, capped at a vertex budget.
//!
//! The substitution is documented in `DESIGN.md`: timing models consume
//! `(|V|, |E|, K)` exactly as the paper's Eq. 1–5 do, and functional runs
//! only require a structurally similar graph.

use crate::graph_type::Graph;
use crate::rmat::RmatConfig;
use serde::{Deserialize, Serialize};

/// The nine OGB datasets of Table I plus the two synthetic RMAT graphs
/// (`power-16`, `power-22`) added in Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OgbDataset {
    /// ogbl-ddi — drug-drug interaction network (small, very dense).
    Ddi,
    /// ogbn-proteins — protein association network (dense).
    Proteins,
    /// ogbn-arxiv — citation network (sparse).
    Arxiv,
    /// ogbl-collab — author collaboration network (sparse).
    Collab,
    /// ogbl-ppa — protein association (large, dense).
    Ppa,
    /// ogbn-mag — heterogeneous academic graph (paper-cites subgraph).
    Mag,
    /// ogbn-products — Amazon co-purchase network (large, dense).
    Products,
    /// ogbl-citation2 — citation network (large).
    Citation2,
    /// ogbn-papers100M — 111M-vertex citation graph; exceeds GPU memory.
    Papers,
    /// Synthetic power-law RMAT, scale 16 (Figure 9's `power-16`).
    Power16,
    /// Synthetic power-law RMAT, scale 22 (Figure 9's `power-22`).
    Power22,
}

/// Published statistics and model dimensions for a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Display name as used in the paper's figures.
    pub name: &'static str,
    /// Vertex count `|V|` (Table I).
    pub vertices: usize,
    /// Edge count `|E|` (Table I).
    pub edges: usize,
    /// Input feature dimension used by the GCN's first layer.
    pub input_dim: usize,
    /// Output dimension (classes for node tasks, embedding width for link
    /// tasks).
    pub output_dim: usize,
    /// Whether the degree distribution is heavy-tailed (power-law-like).
    pub power_law: bool,
}

impl DatasetStats {
    /// Average degree `|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }

    /// Adjacency density `|E| / |V|^2` (the paper's `delta`).
    pub fn density(&self) -> f64 {
        self.edges as f64 / (self.vertices as f64 * self.vertices as f64)
    }
}

impl OgbDataset {
    /// All datasets in Table I order (smallest to largest |V|).
    pub const TABLE1: [OgbDataset; 9] = [
        OgbDataset::Ddi,
        OgbDataset::Proteins,
        OgbDataset::Arxiv,
        OgbDataset::Collab,
        OgbDataset::Ppa,
        OgbDataset::Mag,
        OgbDataset::Products,
        OgbDataset::Citation2,
        OgbDataset::Papers,
    ];

    /// The Figure 9 comparison set: Table I plus the two synthetic graphs.
    pub const FIGURE9: [OgbDataset; 11] = [
        OgbDataset::Ddi,
        OgbDataset::Proteins,
        OgbDataset::Arxiv,
        OgbDataset::Collab,
        OgbDataset::Ppa,
        OgbDataset::Mag,
        OgbDataset::Products,
        OgbDataset::Citation2,
        OgbDataset::Papers,
        OgbDataset::Power16,
        OgbDataset::Power22,
    ];

    /// Published statistics (Table I; feature/class dims from the OGB
    /// reference implementations — link datasets without node features use
    /// the customary 128-wide learned embedding as input).
    pub fn stats(self) -> DatasetStats {
        match self {
            OgbDataset::Ddi => DatasetStats {
                name: "ddi",
                vertices: 4_267,
                edges: 1_334_889,
                input_dim: 128,
                output_dim: 128,
                power_law: false,
            },
            OgbDataset::Proteins => DatasetStats {
                name: "proteins",
                vertices: 132_534,
                edges: 39_561_252,
                input_dim: 8,
                output_dim: 112,
                power_law: false,
            },
            OgbDataset::Arxiv => DatasetStats {
                name: "arxiv",
                vertices: 169_343,
                edges: 1_166_243,
                input_dim: 128,
                output_dim: 40,
                power_law: true,
            },
            OgbDataset::Collab => DatasetStats {
                name: "collab",
                vertices: 235_868,
                edges: 1_285_465,
                input_dim: 128,
                output_dim: 128,
                power_law: true,
            },
            OgbDataset::Ppa => DatasetStats {
                name: "ppa",
                vertices: 576_289,
                edges: 30_326_273,
                input_dim: 58,
                output_dim: 128,
                power_law: false,
            },
            OgbDataset::Mag => DatasetStats {
                name: "mag",
                vertices: 1_939_743,
                edges: 21_111_007,
                input_dim: 128,
                output_dim: 349,
                power_law: true,
            },
            OgbDataset::Products => DatasetStats {
                name: "products",
                vertices: 2_449_029,
                edges: 61_859_140,
                input_dim: 100,
                output_dim: 47,
                power_law: true,
            },
            OgbDataset::Citation2 => DatasetStats {
                name: "citation2",
                vertices: 2_927_963,
                edges: 30_561_187,
                input_dim: 128,
                output_dim: 128,
                power_law: true,
            },
            OgbDataset::Papers => DatasetStats {
                name: "papers",
                vertices: 111_059_956,
                edges: 1_615_685_872,
                input_dim: 128,
                output_dim: 172,
                power_law: true,
            },
            OgbDataset::Power16 => DatasetStats {
                name: "power-16",
                vertices: 1 << 16,
                edges: (1 << 16) * 16,
                input_dim: 128,
                output_dim: 128,
                power_law: true,
            },
            OgbDataset::Power22 => DatasetStats {
                name: "power-22",
                vertices: 1 << 22,
                edges: (1 << 22) * 16,
                input_dim: 128,
                output_dim: 128,
                power_law: true,
            },
        }
    }

    /// Looks a dataset up by its figure-label name.
    pub fn from_name(name: &str) -> Option<OgbDataset> {
        OgbDataset::FIGURE9
            .iter()
            .copied()
            .find(|d| d.stats().name == name)
    }

    /// Materializes a scaled synthetic twin of the dataset.
    ///
    /// The twin is an R-MAT graph with at most `max_vertices` vertices
    /// (rounded down to a power of two), the dataset's average degree, and a
    /// matching skew class (power-law vs uniform). Datasets that already fit
    /// under the cap are generated at (power-of-two-rounded) full scale.
    pub fn materialize_scaled(self, max_vertices: usize, seed: u64) -> Graph {
        let stats = self.stats();
        let cap = max_vertices.max(2);
        let target_v = stats.vertices.min(cap);
        let scale = (usize::BITS - 1 - target_v.leading_zeros()).max(1);
        // RMAT mirrors every placed edge, so halve the requested factor to
        // land near the dataset's stored-edge average degree.
        let edge_factor = ((stats.avg_degree() / 2.0).round() as usize).max(1);
        let config = if stats.power_law {
            RmatConfig::power_law(scale, edge_factor)
        } else {
            RmatConfig::uniform(scale, edge_factor)
        };
        Graph::rmat(&config, seed)
    }
}

impl std::fmt::Display for OgbDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.stats().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_published_counts() {
        let p = OgbDataset::Papers.stats();
        assert_eq!(p.vertices, 111_059_956);
        assert_eq!(p.edges, 1_615_685_872);
        let d = OgbDataset::Ddi.stats();
        assert_eq!(d.vertices, 4_267);
        assert_eq!(d.edges, 1_334_889);
    }

    #[test]
    fn table1_is_sorted_by_vertices() {
        let sizes: Vec<usize> = OgbDataset::TABLE1
            .iter()
            .map(|d| d.stats().vertices)
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn ddi_is_densest_table1_dataset() {
        let ddi = OgbDataset::Ddi.stats().density();
        for d in OgbDataset::TABLE1 {
            assert!(d.stats().density() <= ddi, "{} denser than ddi", d);
        }
    }

    #[test]
    fn from_name_round_trips() {
        for d in OgbDataset::FIGURE9 {
            assert_eq!(OgbDataset::from_name(d.stats().name), Some(d));
        }
        assert_eq!(OgbDataset::from_name("nope"), None);
    }

    #[test]
    fn scaled_twin_respects_cap_and_degree() {
        let g = OgbDataset::Products.materialize_scaled(1 << 12, 1);
        assert!(g.vertices() <= 1 << 12);
        let want = OgbDataset::Products.stats().avg_degree();
        let got = g.edges() as f64 / g.vertices() as f64;
        assert!(
            (got - want).abs() / want < 0.5,
            "avg degree {got} too far from {want}"
        );
    }

    #[test]
    fn small_dataset_materializes_near_full_scale() {
        let g = OgbDataset::Ddi.materialize_scaled(1 << 20, 2);
        // ddi has 4267 vertices; power-of-two rounding gives 4096.
        assert_eq!(g.vertices(), 4096);
    }

    #[test]
    fn display_uses_figure_labels() {
        assert_eq!(OgbDataset::Papers.to_string(), "papers");
        assert_eq!(OgbDataset::Power16.to_string(), "power-16");
    }

    #[test]
    fn power_law_flags_drive_generator_skew() {
        let skewed = OgbDataset::Arxiv
            .materialize_scaled(1 << 10, 3)
            .degree_stats();
        let uniform = OgbDataset::Proteins
            .materialize_scaled(1 << 10, 3)
            .degree_stats();
        assert!(skewed.cv > uniform.cv);
    }
}
